//! Integration tests for the testbed and CDN simulators: the headline
//! results of the paper must hold qualitatively on the synthetic substrate.

use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::StudyRegion;
use carbonedge_sim::cdn::{CdnConfig, CdnSimulator};
use carbonedge_sim::testbed::{run_testbed, TestbedConfig, TestbedWorkload};
use carbonedge_sim::TradeoffSweep;

#[test]
fn headline_testbed_savings_hold() {
    // Figure 10: CarbonEdge saves ~39% in Florida and ~79% in Central EU with
    // single-digit-to-low-teens millisecond latency increases.
    let florida = run_testbed(&TestbedConfig::new(
        StudyRegion::Florida,
        TestbedWorkload::SciCpu,
    ));
    let central_eu = run_testbed(&TestbedConfig::new(
        StudyRegion::CentralEu,
        TestbedWorkload::SciCpu,
    ));

    assert!(florida.savings.carbon_percent > 15.0);
    assert!(central_eu.savings.carbon_percent > 55.0);
    assert!(central_eu.savings.carbon_percent > florida.savings.carbon_percent);
    for result in [&florida, &central_eu] {
        assert!(result.savings.latency_increase_ms >= 0.0);
        assert!(result.savings.latency_increase_ms <= 20.0);
    }
}

#[test]
fn headline_cdn_savings_hold() {
    // Figure 11: large savings in both continents, larger in Europe, with the
    // latency increase bounded by the 20 ms round-trip limit.
    let us = CdnSimulator::new(CdnConfig::new(ZoneArea::UnitedStates).with_site_limit(60));
    let eu = CdnSimulator::new(CdnConfig::new(ZoneArea::Europe).with_site_limit(60));
    let (_, _, us_savings) = us.compare();
    let (_, _, eu_savings) = eu.compare();
    assert!(
        us_savings.carbon_percent > 20.0,
        "US {}",
        us_savings.carbon_percent
    );
    assert!(
        eu_savings.carbon_percent > 40.0,
        "EU {}",
        eu_savings.carbon_percent
    );
    assert!(eu_savings.carbon_percent > us_savings.carbon_percent);
    assert!(us_savings.latency_increase_ms <= 20.0);
    assert!(eu_savings.latency_increase_ms <= 20.0);
}

#[test]
fn latency_limit_sweep_is_monotone_in_savings() {
    // Figure 12: more latency tolerance can only help (savings are
    // non-decreasing in the limit, modulo small heuristic noise).
    let mut previous = -1.0;
    for limit in [5.0, 15.0, 30.0] {
        let sim = CdnSimulator::new(
            CdnConfig::new(ZoneArea::Europe)
                .with_site_limit(50)
                .with_latency_limit(limit),
        );
        let (_, _, savings) = sim.compare();
        assert!(
            savings.carbon_percent >= previous - 2.0,
            "savings dropped from {previous} to {} at limit {limit}",
            savings.carbon_percent
        );
        previous = savings.carbon_percent;
    }
}

#[test]
fn tradeoff_endpoints_match_the_dedicated_policies() {
    // Eq. 8: alpha = 0 is the carbon-optimal end, alpha = 1 the energy-optimal
    // end; carbon must be weakly increasing and energy weakly decreasing.
    let sweep = TradeoffSweep::run(false, &[0.0, 0.25, 0.5, 0.75, 1.0]);
    for pair in sweep.points.windows(2) {
        assert!(pair[1].outcome.carbon_g >= pair[0].outcome.carbon_g - 1e-6);
        assert!(pair[1].outcome.energy_j <= pair[0].outcome.energy_j + 1e-6);
    }
}

#[test]
fn cdn_simulation_is_deterministic() {
    let config = CdnConfig::new(ZoneArea::Europe).with_site_limit(40);
    let a = CdnSimulator::new(config.clone()).compare().2;
    let b = CdnSimulator::new(config).compare().2;
    assert_eq!(a.carbon_percent, b.carbon_percent);
    assert_eq!(a.latency_increase_ms, b.latency_increase_ms);
}
