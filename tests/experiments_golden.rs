//! Golden-output regression test for the `experiments --sweep --quick`
//! summary: the figure-generating sweep tables are snapshotted under
//! `tests/golden/` and compared token-by-token with numeric tolerances, so
//! a change anywhere in the stack (datasets, traces, solver, simulator,
//! aggregation, rendering) that silently shifts the reported numbers fails
//! this test instead of silently drifting the paper's figures.
//!
//! To intentionally refresh the snapshot after a reviewed change:
//! `UPDATE_GOLDEN=1 cargo test -q --test experiments_golden`.

use std::path::PathBuf;

/// Numbers within `abs` of each other, or within `rel` relatively, are
/// considered equal — generous enough for cross-platform libm drift in the
/// last printed decimal, tight enough to catch real regressions.
const ABS_TOL: f64 = 0.15;
const REL_TOL: f64 = 0.01;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/experiments_quick.txt")
}

fn forecast_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/forecast_quick.txt")
}

fn migration_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/migration_quick.txt")
}

fn serving_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden/serving_quick.txt")
}

fn numbers_close(actual: f64, expected: f64) -> bool {
    let diff = (actual - expected).abs();
    diff <= ABS_TOL || diff <= REL_TOL * expected.abs()
}

/// Tolerance-aware diff: lines must pair up, tokens must pair up within a
/// line, numeric tokens compare within tolerance, everything else exactly.
fn diff_with_tolerance(actual: &str, expected: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let actual_lines: Vec<&str> = actual.lines().collect();
    let expected_lines: Vec<&str> = expected.lines().collect();
    if actual_lines.len() != expected_lines.len() {
        problems.push(format!(
            "line count changed: {} vs golden {}",
            actual_lines.len(),
            expected_lines.len()
        ));
    }
    for (n, (a_line, e_line)) in actual_lines.iter().zip(expected_lines.iter()).enumerate() {
        let a_tokens: Vec<&str> = a_line.split_whitespace().collect();
        let e_tokens: Vec<&str> = e_line.split_whitespace().collect();
        if a_tokens.len() != e_tokens.len() {
            problems.push(format!(
                "line {}: token count {} vs golden {} (`{}` vs `{}`)",
                n + 1,
                a_tokens.len(),
                e_tokens.len(),
                a_line.trim(),
                e_line.trim()
            ));
            continue;
        }
        for (a, e) in a_tokens.iter().zip(e_tokens.iter()) {
            match (a.parse::<f64>(), e.parse::<f64>()) {
                (Ok(av), Ok(ev)) => {
                    if !numbers_close(av, ev) {
                        problems.push(format!(
                            "line {}: {} drifted from golden {} (abs tol {ABS_TOL}, rel tol {REL_TOL})",
                            n + 1,
                            av,
                            ev
                        ));
                    }
                }
                _ => {
                    if a != e {
                        problems.push(format!("line {}: `{a}` != golden `{e}`", n + 1));
                    }
                }
            }
        }
    }
    problems
}

/// Diffs `actual` against the snapshot at `path`, honoring `UPDATE_GOLDEN`.
fn assert_matches_golden(what: &str, actual: &str, path: &PathBuf) {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    if update {
        std::fs::write(path, actual).expect("write golden snapshot");
        eprintln!("golden snapshot updated at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    let problems = diff_with_tolerance(actual, &expected);
    assert!(
        problems.is_empty(),
        "{what} drifted from {} ({} problems):\n  {}\n\nfull output:\n{}",
        path.display(),
        problems.len(),
        problems.join("\n  "),
        actual
    );
}

#[test]
fn quick_sweep_summary_matches_golden_snapshot() {
    let actual = carbonedge_bench::summary::quick_summary(2);
    assert_matches_golden("quick sweep summary", &actual, &golden_path());
}

#[test]
fn quick_forecast_regret_matches_golden_snapshot() {
    let actual = carbonedge_bench::summary::forecast_summary(2);
    assert_matches_golden(
        "quick forecast regret table",
        &actual,
        &forecast_golden_path(),
    );
}

#[test]
fn quick_migration_churn_matches_golden_snapshot() {
    let actual = carbonedge_bench::summary::migration_summary(2);
    assert_matches_golden(
        "quick migration churn table",
        &actual,
        &migration_golden_path(),
    );
}

#[test]
fn quick_serving_table_matches_golden_snapshot() {
    let actual = carbonedge_bench::summary::serving_summary(2);
    assert_matches_golden("quick serving table", &actual, &serving_golden_path());
}

#[test]
fn tolerance_diff_flags_real_drift_only() {
    assert!(diff_with_tolerance("a 1.00 b", "a 1.01 b").is_empty());
    assert!(diff_with_tolerance("a 100.4 b", "a 100.0 b").is_empty());
    assert!(!diff_with_tolerance("a 2.00 b", "a 1.00 b").is_empty());
    assert!(!diff_with_tolerance("a 1.0 b", "c 1.0 b").is_empty());
    assert!(!diff_with_tolerance("a 1.0", "a 1.0 b").is_empty());
    assert!(!diff_with_tolerance("a 1.0 b\nextra", "a 1.0 b").is_empty());
}
