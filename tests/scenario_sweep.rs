//! Integration tests of the scenario-sweep engine: a multi-axis grid run in
//! parallel must be deterministic, internally consistent with standalone
//! `CdnSimulator` runs, and produce sensible savings aggregation.  The
//! `#[ignore]`d long-sweep smoke is run by CI's dedicated step
//! (`cargo test -q -- --ignored`).

use carbonedge_core::PlacementPolicy;
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_grid::{EpochSchedule, ForecasterKind};
use carbonedge_sim::cdn::{CdnScenario, CdnSimulator};
use carbonedge_sweep::{SweepAxis, SweepExecutor, SweepSpec, WorkloadSpec, BASELINE_POLICY};

/// A 3-axis grid (area × latency × policy) small enough for the default
/// test run.
fn three_axis_spec() -> SweepSpec {
    SweepSpec::new("three-axis")
        .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
        .with_latency_limits(vec![10.0, 25.0])
        .with_site_limit(Some(15))
}

#[test]
fn parallel_three_axis_grid_is_deterministic_and_seed_stable() {
    let spec = three_axis_spec();
    assert!(spec.axis_count() >= 3);
    let first = SweepExecutor::new().with_jobs(4).run(&spec).unwrap();
    let second = SweepExecutor::new().with_jobs(2).run(&spec).unwrap();
    assert_eq!(first.cells.len(), 8);
    assert_eq!(first.render(), second.render());
    for (a, b) in first.cells.iter().zip(second.cells.iter()) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.cell.cell_seed, b.cell.cell_seed);
    }
}

#[test]
fn sweep_cells_match_standalone_simulator_runs() {
    let spec = three_axis_spec();
    let report = SweepExecutor::new().with_jobs(3).run(&spec).unwrap();
    for cell in report.cells.iter().take(4) {
        let standalone = CdnSimulator::new(cell.cell.config()).run(cell.cell.policy);
        assert_eq!(cell.outcome, standalone.outcome, "cell {}", cell.cell.index);
    }
}

#[test]
fn savings_aggregation_pairs_policies_within_scenarios() {
    let report = SweepExecutor::new()
        .with_jobs(2)
        .run(&three_axis_spec())
        .unwrap();
    let rows = report.savings_rows();
    assert_eq!(rows.len(), 4); // one CarbonEdge row per scenario coordinate
    for row in &rows {
        assert!(row.savings.carbon_percent > 0.0, "{}", row.scenario);
        assert!(row.carbon_g < row.baseline_carbon_g);
    }
    let by_area = report.marginal_rows(SweepAxis::Area);
    let us = by_area.iter().find(|m| m.value == "US").unwrap();
    let eu = by_area.iter().find(|m| m.value == "EU").unwrap();
    assert!(
        eu.mean_saving_percent > us.mean_saving_percent,
        "Europe's greener mix should out-save the US: US {} EU {}",
        us.mean_saving_percent,
        eu.mean_saving_percent
    );
}

#[test]
fn additional_policies_ride_the_policy_axis() {
    let spec = three_axis_spec()
        .with_latency_limits(vec![20.0])
        .with_policies(vec![
            PlacementPolicy::LatencyAware,
            PlacementPolicy::CarbonAware,
            PlacementPolicy::IntensityAware,
        ]);
    let report = SweepExecutor::new().with_jobs(2).run(&spec).unwrap();
    let rows = report.savings_rows();
    // Two non-baseline policies per scenario coordinate, two areas.
    assert_eq!(rows.len(), 4);
    let policies: std::collections::HashSet<&str> =
        rows.iter().map(|r| r.policy.as_str()).collect();
    assert!(policies.contains("CarbonEdge") && policies.contains("Intensity-aware"));
    assert!(rows.iter().all(|r| r.policy != BASELINE_POLICY));
}

#[test]
fn forecaster_and_epoch_axes_are_parallel_deterministic() {
    let spec = SweepSpec::new("forecast-axes")
        .with_areas(vec![ZoneArea::UnitedStates])
        .with_site_limit(Some(12))
        .with_demand(4, 1)
        .with_forecasters(vec![ForecasterKind::Oracle, ForecasterKind::Persistence])
        .with_epochs(vec![EpochSchedule::Monthly, EpochSchedule::Weekly]);
    assert!(spec.axis_count() >= 3);
    let sequential = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
    let parallel = SweepExecutor::new().with_jobs(4).run(&spec).unwrap();
    for (a, b) in sequential.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(a.outcome, b.outcome, "cell {}", a.cell.index);
        assert_eq!(a.decision_carbon_g, b.decision_carbon_g);
    }
    assert_eq!(sequential.render(), parallel.render());
    assert_eq!(
        sequential.render_forecast_regret(),
        parallel.render_forecast_regret()
    );
    // Marginal aggregation picks the new axes up unchanged.
    let by_forecaster = sequential.marginal_rows(SweepAxis::Forecaster);
    assert!(by_forecaster.iter().any(|m| m.value == "oracle"));
    assert!(by_forecaster.iter().any(|m| m.value == "persistence"));
    let by_epoch = sequential.marginal_rows(SweepAxis::Epoch);
    assert!(by_epoch.iter().any(|m| m.value == "monthly"));
    assert!(by_epoch.iter().any(|m| m.value == "weekly"));
}

/// Long-sweep smoke (CI `--ignored` job): a five-axis grid with a seed
/// replication axis and a second workload, still gated to a small site cap.
#[test]
#[ignore = "long-sweep smoke, run via cargo test -- --ignored"]
fn long_sweep_smoke_five_axis_grid() {
    let spec = SweepSpec::new("long-smoke")
        .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
        .with_scenarios(vec![
            CdnScenario::Homogeneous,
            CdnScenario::PopulationDemand,
        ])
        .with_latency_limits(vec![10.0, 20.0, 30.0])
        .with_workloads(vec![
            WorkloadSpec::resnet50_on_a2(),
            WorkloadSpec::efficientnet_on_orin(),
        ])
        .with_seeds(vec![42, 1337])
        .with_site_limit(Some(30));
    assert!(spec.axis_count() >= 5);
    assert_eq!(spec.cell_count(), 96);
    let report = SweepExecutor::new().run(&spec).unwrap();
    assert_eq!(report.cells.len(), 96);
    // Every scenario coordinate produced a baseline pairing.
    assert_eq!(report.savings_rows().len(), 48);
    // Savings direction holds across every axis value, both seeds included.
    for row in report.marginal_rows(SweepAxis::Seed) {
        assert!(row.mean_saving_percent > 0.0, "seed {}", row.value);
        assert_eq!(row.comparisons, 24);
    }
    for row in report.marginal_rows(SweepAxis::Workload) {
        assert!(row.mean_saving_percent > 0.0, "workload {}", row.value);
    }
    // The report renders without panicking and mentions both seeds.
    let text = report.render();
    assert!(text.contains("seed 42") && text.contains("seed 1337"));
}
