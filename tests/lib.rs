//! Helper library target for the cross-crate integration-test package (intentionally empty).
