//! Cross-policy properties: the orderings the paper relies on must hold on
//! randomized scenarios, not just the hand-picked ones.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random mesoscale scenario: `n_sites` sites spread over a few
/// hundred kilometres with random carbon intensities, and `n_apps`
/// applications with random origins among the sites.
fn random_scenario(seed: u64, n_sites: usize, n_apps: usize) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Coordinates::new(46.0, 8.0);
    let servers: Vec<ServerSnapshot> = (0..n_sites)
        .map(|j| {
            let loc = Coordinates::new(
                base.lat + rng.gen_range(-1.5..1.5),
                base.lon + rng.gen_range(-2.0..2.0),
            );
            ServerSnapshot::new(j, j, ZoneId(j), DeviceKind::A2, loc)
                .with_carbon_intensity(rng.gen_range(30.0..700.0))
        })
        .collect();
    let apps: Vec<Application> = (0..n_apps)
        .map(|i| {
            let origin = servers[rng.gen_range(0..n_sites)].location;
            Application::new(
                AppId(i),
                ModelKind::ResNet50,
                rng.gen_range(5.0..20.0),
                30.0,
                origin,
                0,
            )
        })
        .collect();
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CarbonEdge never emits more than the Latency-aware baseline on the
    /// same scenario (it can always fall back to the same placement).
    #[test]
    fn carbon_aware_never_worse_than_latency_aware(seed in 0u64..1000) {
        let problem = random_scenario(seed, 6, 8);
        let carbon = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .heuristic_only()
            .place(&problem)
            .unwrap();
        let latency = IncrementalPlacer::new(PlacementPolicy::LatencyAware)
            .heuristic_only()
            .place(&problem)
            .unwrap();
        prop_assume!(carbon.unplaced.is_empty() && latency.unplaced.is_empty());
        prop_assert!(carbon.total_carbon_g <= latency.total_carbon_g * 1.001 + 1e-6);
    }

    /// Energy-aware placement never uses more energy than CarbonEdge.
    #[test]
    fn energy_aware_never_uses_more_energy(seed in 0u64..1000) {
        let problem = random_scenario(seed, 6, 8);
        let carbon = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .heuristic_only()
            .place(&problem)
            .unwrap();
        let energy = IncrementalPlacer::new(PlacementPolicy::EnergyAware)
            .heuristic_only()
            .place(&problem)
            .unwrap();
        prop_assume!(carbon.unplaced.is_empty() && energy.unplaced.is_empty());
        prop_assert!(energy.total_energy_j <= carbon.total_energy_j * 1.001 + 1e-6);
    }

    /// Every policy respects the latency SLO for every placed application.
    #[test]
    fn all_policies_respect_the_slo(seed in 0u64..1000) {
        let problem = random_scenario(seed, 5, 6);
        for policy in PlacementPolicy::BASELINE_SET {
            let decision = IncrementalPlacer::new(policy)
                .heuristic_only()
                .place(&problem)
                .unwrap();
            for (i, server) in decision.assignment.iter().enumerate() {
                if let Some(j) = server {
                    prop_assert!(
                        problem.latency_ms(i, *j) <= problem.apps[i].latency_slo_ms + 1e-9
                    );
                }
            }
        }
    }

    /// Server compute capacity is never exceeded by any policy's placement.
    #[test]
    fn capacity_is_never_violated(seed in 0u64..1000) {
        let problem = random_scenario(seed, 4, 12);
        for policy in PlacementPolicy::BASELINE_SET {
            let decision = IncrementalPlacer::new(policy)
                .heuristic_only()
                .place(&problem)
                .unwrap();
            let mut usage = vec![0.0f64; problem.servers.len()];
            for (i, server) in decision.assignment.iter().enumerate() {
                if let Some(j) = server {
                    usage[*j] += problem.demand(i, *j).unwrap().compute;
                }
            }
            for (j, u) in usage.iter().enumerate() {
                prop_assert!(*u <= problem.servers[j].available.compute + 1e-6, "server {j} over capacity: {u}");
            }
        }
    }
}

#[test]
fn intensity_aware_ranks_by_intensity_alone() {
    // Build a scenario where the lowest-intensity server is energy-inefficient:
    // Intensity-aware must still pick it, CarbonEdge weighs both.
    let servers = vec![
        ServerSnapshot::new(
            0,
            0,
            ZoneId(0),
            DeviceKind::OrinNano,
            Coordinates::new(46.0, 8.0),
        )
        .with_carbon_intensity(200.0),
        ServerSnapshot::new(
            1,
            1,
            ZoneId(1),
            DeviceKind::Gtx1080,
            Coordinates::new(46.1, 8.1),
        )
        .with_carbon_intensity(150.0),
    ];
    let app = Application::new(
        AppId(0),
        ModelKind::ResNet50,
        10.0,
        30.0,
        Coordinates::new(46.0, 8.0),
        0,
    );
    let problem = PlacementProblem::new(servers, vec![app], 1.0)
        .with_latency_model(LatencyModel::deterministic());
    let intensity = IncrementalPlacer::new(PlacementPolicy::IntensityAware)
        .place(&problem)
        .unwrap();
    assert_eq!(
        intensity.assignment,
        vec![Some(1)],
        "Intensity-aware picks the greener zone"
    );
    let carbon = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
        .place(&problem)
        .unwrap();
    // The Orin Nano is ~3x more energy efficient, which outweighs the 200 vs
    // 150 g/kWh difference, so CarbonEdge picks the efficient device instead.
    assert_eq!(
        carbon.assignment,
        vec![Some(0)],
        "CarbonEdge weighs energy and intensity"
    );
    assert!(carbon.total_carbon_g < intensity.total_carbon_g);
}
