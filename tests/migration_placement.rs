//! Integration tests of the stateful, migration-cost-aware re-placement
//! pipeline.
//!
//! The contracts that make the refactor safe to ship:
//!
//! 1. **Stateless equivalence at zero cost** — with the `Free` migration
//!    level (the default), the stateful engine's decisions, realized carbon
//!    and per-month aggregates reproduce a stateless replica of the PR 4
//!    epoch loop *bit for bit*, on heuristic and exact paths alike.  The
//!    state threading may only add churn *accounting*, never alter a
//!    decision.
//! 2. **Monotone realized carbon on the exact path** — with oracle
//!    forecasts and exact per-epoch solves, charging more for migration can
//!    never reduce total realized carbon, so the level ordering
//!    free ≤ paper ≤ heavy holds on a fixed grid.
//! 3. **The churn table's story** — on the `--migration` quick grid, moves
//!    and savings both shrink monotonically as the migration cost rises,
//!    and daily re-placement's extra savings are strictly eaten by the
//!    paper-calibrated cost.

use carbonedge_core::{IncrementalPlacer, MigrationCostLevel, PlacementPolicy, PlacementProblem};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, ZoneCatalog};
use carbonedge_grid::{CarbonIntensityService, EpochSchedule};
use carbonedge_net::LatencyModel;
use carbonedge_sim::cdn::{CdnConfig, CdnScenario, CdnSimulator};
use carbonedge_sim::metrics::PolicyOutcome;
use carbonedge_workload::{AppId, Application};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the stateless PR 4 epoch engine reported that the stateful
/// engine must reproduce at zero migration cost.
struct StatelessRun {
    outcome: PolicyOutcome,
    epoch_carbon: Vec<f64>,
    epoch_decision_carbon: Vec<f64>,
    assigned_intensity: Vec<f64>,
    assignments: Vec<Vec<Option<usize>>>,
}

/// A faithful replica of the pre-refactor (stateless) epoch loop built from
/// public APIs: every epoch solved from scratch with no incumbent, decided
/// against the forecast mean and accounted at the epoch's actual mean.
fn stateless_run(config: &CdnConfig, placer: &IncrementalPlacer) -> StatelessRun {
    let catalog = ZoneCatalog::worldwide();
    let site_catalog = EdgeSiteCatalog::akamai_like(&catalog);
    let traces = Arc::new(catalog.generate_traces(config.seed));
    let mut sites: Vec<_> = site_catalog
        .in_area(config.area)
        .iter()
        .map(|s| (s.location, s.zone, s.population_m))
        .collect();
    if let Some(limit) = config.site_limit {
        sites.truncate(limit);
    }
    let latency_model = LatencyModel::deterministic();
    let mean_population = sites.iter().map(|(_, _, p)| *p).sum::<f64>() / sites.len().max(1) as f64;
    let service = CarbonIntensityService::shared(Arc::clone(&traces))
        .with_forecaster(config.forecaster.build(), 1);

    let mut outcome = PolicyOutcome::default();
    let mut epoch_carbon = Vec::new();
    let mut epoch_decision_carbon = Vec::new();
    let mut assigned_intensity = Vec::new();
    let mut assignments = Vec::new();

    for epoch in config.epoch.epochs() {
        let mut servers = Vec::new();
        let mut actual_by_server = Vec::new();
        let mut zone_means: HashMap<carbonedge_grid::ZoneId, (f64, f64)> = HashMap::new();
        for (site_idx, (loc, zone, pop)) in sites.iter().enumerate() {
            let count = match config.scenario {
                CdnScenario::PopulationCapacity => ((pop / mean_population)
                    * config.servers_per_site as f64)
                    .round()
                    .max(1.0) as usize,
                _ => config.servers_per_site,
            };
            let (decided, actual) = *zone_means.entry(*zone).or_insert_with(|| {
                (
                    service.forecast_mean_over(*zone, epoch.start, epoch.hours),
                    traces[zone.index()]
                        .window_mean(epoch.start, epoch.hours)
                        .max(0.0),
                )
            });
            for _ in 0..count {
                servers.push(
                    carbonedge_core::ServerSnapshot::new(
                        servers.len(),
                        site_idx,
                        *zone,
                        config.device,
                        *loc,
                    )
                    .with_carbon_intensity(decided),
                );
                actual_by_server.push(actual);
            }
        }
        let mut apps = Vec::new();
        for (loc, _, pop) in &sites {
            let count = match config.scenario {
                CdnScenario::PopulationDemand => ((pop / mean_population)
                    * config.apps_per_site as f64)
                    .round()
                    .max(0.0) as usize,
                _ => config.apps_per_site,
            };
            for _ in 0..count {
                apps.push(Application::new(
                    AppId(apps.len()),
                    config.model,
                    config.request_rate_rps,
                    config.latency_limit_ms,
                    *loc,
                    0,
                ));
            }
        }
        if apps.is_empty() || servers.is_empty() {
            epoch_carbon.push(0.0);
            epoch_decision_carbon.push(0.0);
            assignments.push(Vec::new());
            continue;
        }
        let mut problem = PlacementProblem::new(servers, apps, epoch.hours as f64)
            .with_latency_model(latency_model.clone());
        let decision = placer.place(&problem).expect("stateless replica feasible");
        for (server, actual) in problem.servers.iter_mut().zip(&actual_by_server) {
            server.carbon_intensity = *actual;
        }
        let realized = problem
            .total_carbon_g(&decision.assignment)
            .expect("assignment stays feasible");
        let placed = decision.assignment.iter().flatten().count();
        outcome.accumulate(&PolicyOutcome {
            carbon_g: realized,
            energy_j: decision.total_energy_j,
            mean_latency_ms: decision.mean_latency_ms,
            placed_apps: placed,
        });
        epoch_carbon.push(realized);
        epoch_decision_carbon.push(decision.total_carbon_g);
        for assignment in decision.assignment.iter().flatten() {
            assigned_intensity.push(problem.servers[*assignment].carbon_intensity);
        }
        assignments.push(decision.assignment);
    }

    StatelessRun {
        outcome,
        epoch_carbon,
        epoch_decision_carbon,
        assigned_intensity,
        assignments,
    }
}

/// Bit-for-bit comparison of the stateful engine at the `Free` level
/// against the stateless replica.
fn assert_free_matches_stateless(config: CdnConfig, placer: &IncrementalPlacer) {
    assert_eq!(config.migration, MigrationCostLevel::Free);
    let stateless = stateless_run(&config, placer);
    let engine = CdnSimulator::new(config).run_with(placer);

    assert_eq!(engine.outcome, stateless.outcome);
    assert_eq!(engine.decision_carbon_g, {
        stateless.epoch_decision_carbon.iter().sum::<f64>()
    });
    assert_eq!(engine.assigned_intensity, stateless.assigned_intensity);
    assert_eq!(engine.epochs.len(), stateless.epoch_carbon.len());
    assert_eq!(engine.migration_carbon_g, 0.0);
    let mut moves_recounted = 0usize;
    for ((epoch, carbon), decision_carbon) in engine
        .epochs
        .iter()
        .zip(stateless.epoch_carbon.iter())
        .zip(stateless.epoch_decision_carbon.iter())
    {
        assert_eq!(epoch.carbon_g, *carbon, "epoch {}", epoch.index);
        assert_eq!(
            epoch.decision_carbon_g, *decision_carbon,
            "epoch {}",
            epoch.index
        );
        assert_eq!(epoch.migration_carbon_g, 0.0);
        moves_recounted += epoch.moves;
    }
    assert_eq!(engine.moves, moves_recounted);
    // The engine's churn accounting must agree with a direct diff of the
    // stateless replica's (identical) per-epoch assignments.
    let mut expected_moves = 0usize;
    for pair in stateless.assignments.windows(2) {
        expected_moves += carbonedge_core::AssignmentDiff::between(&pair[0], &pair[1]).moves();
    }
    assert_eq!(engine.moves, expected_moves);
}

#[test]
fn free_level_reproduces_the_stateless_engine_bit_for_bit() {
    // The heuristic CDN path, on a grid with real churn (60 EU sites at a
    // 30 ms limit re-placed weekly) and on a skewed-demand scenario.
    let churny = CdnConfig::new(ZoneArea::Europe)
        .with_site_limit(60)
        .with_latency_limit(30.0)
        .with_epoch(EpochSchedule::Weekly);
    assert_free_matches_stateless(
        churny,
        &IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only(),
    );
    assert_free_matches_stateless(
        CdnConfig::new(ZoneArea::UnitedStates)
            .with_site_limit(15)
            .with_scenario(CdnScenario::PopulationDemand),
        &IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only(),
    );
    assert_free_matches_stateless(
        CdnConfig::new(ZoneArea::Europe).with_site_limit(20),
        &IncrementalPlacer::new(PlacementPolicy::LatencyAware).heuristic_only(),
    );
}

/// A deployment small enough that every epoch decision goes through the
/// exact MILP path but utilized enough that decisions are not forced.
fn exact_path_config(area: ZoneArea, seed: u64, epoch: EpochSchedule) -> CdnConfig {
    let mut config = CdnConfig::new(area).with_site_limit(3).with_epoch(epoch);
    config.servers_per_site = 1;
    config.apps_per_site = 2;
    config.request_rate_rps = 25.0;
    config.seed = seed;
    config
}

fn exact_realized_total(config: CdnConfig, level: MigrationCostLevel) -> f64 {
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
    let result = CdnSimulator::new(config.with_migration(level)).run_with(&placer);
    assert_eq!(
        result.exact_decisions,
        result.epochs.len(),
        "every epoch must take the exact path"
    );
    result.outcome.carbon_g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Zero-migration-cost stateful placement equals the stateless path on
    /// every exact-path scenario (both continents, monthly and weekly).
    #[test]
    fn zero_cost_stateful_equals_stateless_on_exact_path(seed in 0u64..500) {
        let area = if seed % 2 == 0 { ZoneArea::Europe } else { ZoneArea::UnitedStates };
        let epoch = if seed % 4 < 2 { EpochSchedule::Monthly } else { EpochSchedule::Weekly };
        let config = exact_path_config(area, seed, epoch);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let stateless = stateless_run(&config, &placer);
        let engine = CdnSimulator::new(config).run_with(&placer);
        prop_assert_eq!(engine.outcome, stateless.outcome);
        prop_assert_eq!(engine.migration_carbon_g, 0.0);
        for (epoch_outcome, carbon) in engine.epochs.iter().zip(stateless.epoch_carbon.iter()) {
            prop_assert_eq!(epoch_outcome.carbon_g, *carbon);
        }
    }

    /// With oracle forecasts and exact per-epoch solves, total realized
    /// carbon is monotone non-decreasing in the migration-cost level.
    #[test]
    fn realized_carbon_is_monotone_in_migration_cost_on_exact_path(seed in 0u64..500) {
        let area = if seed % 2 == 0 { ZoneArea::Europe } else { ZoneArea::UnitedStates };
        let epoch = if seed % 4 < 2 { EpochSchedule::Monthly } else { EpochSchedule::Weekly };
        let config = exact_path_config(area, seed, epoch);
        let free = exact_realized_total(config.clone(), MigrationCostLevel::Free);
        let paper = exact_realized_total(config.clone(), MigrationCostLevel::Paper);
        let heavy = exact_realized_total(config, MigrationCostLevel::Heavy);
        prop_assert!(
            free <= paper * (1.0 + 1e-9) + 1e-9,
            "free {} beat by paper {} (seed {})", free, paper, seed
        );
        prop_assert!(
            paper <= heavy * (1.0 + 1e-9) + 1e-9,
            "paper {} beat by heavy {} (seed {})", paper, heavy, seed
        );
    }
}

#[test]
fn quick_migration_grid_savings_shrink_monotonically_with_migration_cost() {
    // The acceptance check behind `experiments --migration --quick`: within
    // every (policy, epoch) block of the churn table, both churn and
    // savings are monotone non-increasing as the migration cost rises, and
    // the daily block shows the paper-calibrated cost strictly eating the
    // free re-placement gains.
    let report = carbonedge_bench::summary::run_migration(true, 2);
    let rows = report.migration_churn_rows();
    assert!(!rows.is_empty());
    let levels = ["mig-free", "mig-paper", "mig-heavy"];
    /// Rows of one (policy, epoch) block: (level rank, moves, saving %).
    type Block = Vec<(usize, f64, f64)>;
    let mut blocks: HashMap<(String, String), Block> = HashMap::new();
    for row in &rows {
        let level_rank = levels
            .iter()
            .position(|l| *l == row.migration)
            .expect("known level");
        blocks
            .entry((row.policy.clone(), row.epoch.clone()))
            .or_default()
            .push((level_rank, row.mean_moves, row.mean_saving_percent));
    }
    for ((policy, epoch), mut block) in blocks {
        block.sort_by_key(|(rank, _, _)| *rank);
        assert_eq!(block.len(), 3, "{policy}/{epoch}");
        for pair in block.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-9,
                "{policy}/{epoch}: churn must not rise with migration cost"
            );
            assert!(
                pair[1].2 <= pair[0].2 + 1e-9,
                "{policy}/{epoch}: savings must not rise with migration cost \
                 ({} then {})",
                pair[0].2,
                pair[1].2
            );
        }
        if epoch == "daily" && policy == "CarbonEdge" {
            assert!(
                block[0].2 > block[1].2,
                "daily free savings {} must strictly exceed paper savings {}",
                block[0].2,
                block[1].2
            );
            assert!(block[0].1 > 0.0, "free daily re-placement must churn");
            assert_eq!(block[1].1, 0.0, "paper cost suppresses the daily churn");
        }
    }
}
