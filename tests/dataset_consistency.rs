//! Consistency checks across the dataset, grid and network substrates.

use carbonedge_analysis::mesoscale::{region_latency_table, standard_regions_and_traces};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, StudyRegion, ZoneCatalog};
use carbonedge_net::LatencyModel;

#[test]
fn catalog_counts_match_the_paper() {
    let zones = ZoneCatalog::worldwide();
    assert_eq!(zones.len(), 148);
    assert_eq!(zones.in_area(ZoneArea::UnitedStates).len(), 54);
    assert_eq!(zones.in_area(ZoneArea::Europe).len(), 45);
    let sites = EdgeSiteCatalog::akamai_like(&zones);
    assert_eq!(sites.len(), 496);
}

#[test]
fn every_edge_site_references_a_valid_zone_with_a_trace() {
    let zones = ZoneCatalog::worldwide();
    let sites = EdgeSiteCatalog::akamai_like(&zones);
    let traces = zones.generate_traces(7);
    for site in sites.sites() {
        assert!(site.zone.index() < zones.len(), "{}", site.name);
        let trace = &traces[site.zone.index()];
        assert!(trace.mean() > 5.0 && trace.mean() < 900.0, "{}", site.name);
        // The site must be geographically close to its zone's reference city.
        let zone = &zones.records()[site.zone.index()];
        assert!(site.location.distance_km(&zone.location) < 50.0);
    }
}

#[test]
fn study_regions_resolve_against_the_worldwide_catalog_and_traces() {
    let (catalog, regions, traces) = standard_regions_and_traces(42);
    assert_eq!(traces.len(), catalog.len());
    assert_eq!(regions.len(), 4);
    for region in &regions {
        for zone in &region.zones {
            assert!(zone.index() < traces.len());
        }
    }
}

#[test]
fn regional_latencies_stay_in_the_table1_envelope() {
    let (_, regions, _) = standard_regions_and_traces(42);
    let model = LatencyModel::deterministic();
    for region in &regions {
        let table = region_latency_table(region, &model);
        for i in 0..table.len() {
            for j in 0..table.len() {
                if i != j {
                    let l = table.one_way(i, j);
                    assert!(
                        l > 0.5 && l < 25.0,
                        "{} {}-{}: {}",
                        region.region.name(),
                        i,
                        j,
                        l
                    );
                }
            }
        }
    }
}

#[test]
fn mesoscale_regions_are_actually_mesoscale() {
    let (_, regions, _) = standard_regions_and_traces(42);
    for region in &regions {
        let diameter = region.as_geo_region().diameter_km();
        assert!(
            diameter > 100.0 && diameter < 1600.0,
            "{} diameter {diameter}",
            region.region.name()
        );
    }
}

#[test]
fn calibrated_spreads_for_figure3_regions() {
    let (catalog, regions, traces) = standard_regions_and_traces(42);
    let spread = |region: StudyRegion| {
        let r = regions.iter().find(|r| r.region == region).unwrap();
        let means: Vec<f64> = r.zones.iter().map(|z| traces[z.index()].mean()).collect();
        means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            / means.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(spread(StudyRegion::CentralEu) > spread(StudyRegion::WestUs));
    assert!(spread(StudyRegion::CentralEu) > 6.0);
    assert!(spread(StudyRegion::WestUs) > 1.8);
    // Sanity on the overall catalog: Europe is greener than the US on average.
    let mean_of = |area: ZoneArea| {
        let zones = catalog.in_area(area);
        zones
            .iter()
            .map(|z| traces[z.id.index()].mean())
            .sum::<f64>()
            / zones.len() as f64
    };
    assert!(mean_of(ZoneArea::Europe) < mean_of(ZoneArea::UnitedStates));
}
