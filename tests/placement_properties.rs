//! Property tests for placement invariants over randomly generated
//! `PlacementProblem`s: capacity is never exceeded in any resource
//! dimension, every application is either placed or explicitly reported
//! (in-band via `unplaced` or out-of-band via `PlacementError`), and
//! placement is deterministic under a fixed seed.

use carbonedge_core::{
    IncrementalPlacer, PlacementError, PlacementPolicy, PlacementProblem, ServerSnapshot,
};
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomized placement problem: mixed devices, some servers powered off,
/// varied SLOs and request rates, origins scattered around the sites.  Tight
/// SLOs and heavy rates are allowed on purpose so that both `Ok` decisions
/// with unplaced apps and `NoFeasibleServer` errors are exercised.
fn random_problem(seed: u64, n_servers: usize, n_apps: usize) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Coordinates::new(44.0, 7.0);
    let devices = [DeviceKind::OrinNano, DeviceKind::A2, DeviceKind::Gtx1080];
    let servers: Vec<ServerSnapshot> = (0..n_servers)
        .map(|j| {
            let loc = Coordinates::new(
                base.lat + rng.gen_range(-2.0..2.0),
                base.lon + rng.gen_range(-3.0..3.0),
            );
            ServerSnapshot::new(j, j, ZoneId(j), devices[j % devices.len()], loc)
                .with_carbon_intensity(rng.gen_range(20.0..800.0))
                .with_powered_on(rng.gen_bool(0.75))
        })
        .collect();
    let apps: Vec<Application> = (0..n_apps)
        .map(|i| {
            let origin = Coordinates::new(
                base.lat + rng.gen_range(-2.0..2.0),
                base.lon + rng.gen_range(-3.0..3.0),
            );
            apps_entry(i, &mut rng, origin)
        })
        .collect();
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

fn apps_entry(i: usize, rng: &mut StdRng, origin: Coordinates) -> Application {
    let models = ModelKind::GPU_MODELS;
    Application::new(
        AppId(i),
        models[rng.gen_range(0..models.len())],
        rng.gen_range(2.0..30.0),
        rng.gen_range(4.0..45.0),
        origin,
        0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No placement ever exceeds a server's capacity in any of the three
    /// resource dimensions (compute, memory, bandwidth).
    #[test]
    fn capacity_is_never_exceeded_in_any_dimension(seed in 0u64..10_000, servers in 2usize..7, apps in 1usize..12) {
        let problem = random_problem(seed, servers, apps);
        for policy in PlacementPolicy::BASELINE_SET {
            for placer in [
                IncrementalPlacer::new(policy),
                IncrementalPlacer::new(policy).heuristic_only(),
            ] {
                let Ok(decision) = placer.place(&problem) else { continue };
                let mut compute = vec![0.0f64; problem.servers.len()];
                let mut memory = vec![0.0f64; problem.servers.len()];
                let mut bandwidth = vec![0.0f64; problem.servers.len()];
                for (i, a) in decision.assignment.iter().enumerate() {
                    if let Some(j) = a {
                        let d = problem.demand(i, *j).expect("placed pair is compatible");
                        compute[*j] += d.compute;
                        memory[*j] += d.memory_mb;
                        bandwidth[*j] += d.bandwidth_mbps;
                    }
                }
                for (j, server) in problem.servers.iter().enumerate() {
                    prop_assert!(compute[j] <= server.available.compute + 1e-6,
                        "server {j} compute {} over {}", compute[j], server.available.compute);
                    prop_assert!(memory[j] <= server.available.memory_mb + 1e-6,
                        "server {j} memory {} over {}", memory[j], server.available.memory_mb);
                    prop_assert!(bandwidth[j] <= server.available.bandwidth_mbps + 1e-6,
                        "server {j} bandwidth {} over {}", bandwidth[j], server.available.bandwidth_mbps);
                }
            }
        }
    }

    /// Every application is accounted for: placed, listed in `unplaced`, or
    /// the whole batch fails with an explicit, truthful `PlacementError`.
    #[test]
    fn every_app_is_placed_or_explicitly_reported(seed in 0u64..10_000, servers in 2usize..7, apps in 1usize..12) {
        let problem = random_problem(seed, servers, apps);
        for policy in PlacementPolicy::BASELINE_SET {
            match IncrementalPlacer::new(policy).place(&problem) {
                Ok(decision) => {
                    prop_assert_eq!(decision.assignment.len(), problem.apps.len());
                    let nones: Vec<usize> = decision
                        .assignment
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    prop_assert_eq!(&nones, &decision.unplaced);
                    for (i, a) in decision.assignment.iter().enumerate() {
                        if let Some(j) = a {
                            prop_assert!(problem.is_feasible_pair(i, *j),
                                "app {i} placed on infeasible server {j}");
                        }
                    }
                }
                Err(PlacementError::NoFeasibleServer(stranded)) => {
                    prop_assert!(!stranded.is_empty());
                    for i in &stranded {
                        let feasible = (0..problem.servers.len())
                            .any(|j| problem.is_feasible_pair(*i, j));
                        prop_assert!(!feasible, "app {i} reported stranded but has a feasible server");
                    }
                }
                Err(other) => {
                    // Empty batches / server lists are not generated here.
                    prop_assert!(matches!(other, PlacementError::NoFeasibleServer(_)),
                        "unexpected error {other:?}");
                }
            }
        }
    }

    /// Placement is a pure function of the problem: the same seed produces
    /// the same problem, and solving it twice produces identical decisions.
    #[test]
    fn placement_is_deterministic_under_fixed_seed(seed in 0u64..10_000, servers in 2usize..6, apps in 1usize..10) {
        let problem_a = random_problem(seed, servers, apps);
        let problem_b = random_problem(seed, servers, apps);
        prop_assert_eq!(&problem_a.servers, &problem_b.servers);
        prop_assert_eq!(&problem_a.apps, &problem_b.apps);
        for policy in [PlacementPolicy::CarbonAware, PlacementPolicy::LatencyAware] {
            for placer in [
                IncrementalPlacer::new(policy),
                IncrementalPlacer::new(policy).heuristic_only(),
            ] {
                let first = placer.place(&problem_a);
                let second = placer.place(&problem_b);
                match (first, second) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a, b);
                    }
                    (Err(a), Err(b)) => {
                        prop_assert_eq!(a, b);
                    }
                    (a, b) => {
                        prop_assert!(false, "diverging outcomes: {a:?} vs {b:?}");
                    }
                }
            }
        }
    }

    /// Explicit errors for degenerate batches: no applications or no servers.
    #[test]
    fn degenerate_batches_fail_explicitly(seed in 0u64..10_000) {
        let problem = random_problem(seed, 3, 4);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let empty_apps = PlacementProblem::new(problem.servers.clone(), vec![], 1.0);
        prop_assert_eq!(placer.place(&empty_apps).unwrap_err(), PlacementError::EmptyBatch);
        let no_servers = PlacementProblem::new(vec![], problem.apps.clone(), 1.0);
        prop_assert_eq!(placer.place(&no_servers).unwrap_err(), PlacementError::NoServers);
    }
}
