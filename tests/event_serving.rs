//! Integration tests of the event-level serving engine refactor.
//!
//! The contracts that make the refactor safe to ship:
//!
//! 1. **Aggregate mode is the legacy engine, bit for bit** — with
//!    `ServingMode::Aggregate` (the default), the refactored simulator
//!    reproduces a faithful replica of the pre-refactor epoch loop exactly:
//!    same outcome, same per-epoch decision and realized carbon, same
//!    assigned intensities, and no serving metrics.  Materializing request
//!    streams is opt-in; the refactor may never perturb the aggregate
//!    accounting.
//! 2. **Conservation through the whole stack** — for any seed, rate and
//!    site cap, the event-level engine's request total equals the total the
//!    aggregate demand model implies (per-epoch apportionment is exact by
//!    construction), and every request is accounted as served or dropped.
//! 3. **Determinism under parallelism** — serving metrics on the sweep grid
//!    are bit-identical for any `--jobs` worker count.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, ZoneCatalog};
use carbonedge_grid::{CarbonIntensityService, EpochSchedule};
use carbonedge_net::LatencyModel;
use carbonedge_sim::cdn::{CdnConfig, CdnScenario, CdnSimulator};
use carbonedge_sim::metrics::PolicyOutcome;
use carbonedge_sim::ServingMode;
use carbonedge_sweep::{SweepExecutor, SweepSpec};
use carbonedge_workload::{AppId, Application};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the pre-refactor epoch engine reported that aggregate mode
/// must reproduce after the serving refactor.
struct LegacyRun {
    outcome: PolicyOutcome,
    epoch_carbon: Vec<f64>,
    epoch_decision_carbon: Vec<f64>,
    assigned_intensity: Vec<f64>,
}

/// A faithful replica of the pre-refactor epoch loop built from public
/// APIs: every epoch solved with no incumbent (the zero-migration default),
/// decided against the forecast mean and accounted at the epoch's actual
/// mean.  No request stream is ever materialized.
fn legacy_run(config: &CdnConfig, placer: &IncrementalPlacer) -> LegacyRun {
    let catalog = ZoneCatalog::worldwide();
    let site_catalog = EdgeSiteCatalog::akamai_like(&catalog);
    let traces = Arc::new(catalog.generate_traces(config.seed));
    let mut sites: Vec<_> = site_catalog
        .in_area(config.area)
        .iter()
        .map(|s| (s.location, s.zone, s.population_m))
        .collect();
    if let Some(limit) = config.site_limit {
        sites.truncate(limit);
    }
    let latency_model = LatencyModel::deterministic();
    let mean_population = sites.iter().map(|(_, _, p)| *p).sum::<f64>() / sites.len().max(1) as f64;
    let service = CarbonIntensityService::shared(Arc::clone(&traces))
        .with_forecaster(config.forecaster.build(), 1);

    let mut outcome = PolicyOutcome::default();
    let mut epoch_carbon = Vec::new();
    let mut epoch_decision_carbon = Vec::new();
    let mut assigned_intensity = Vec::new();

    for epoch in config.epoch.epochs() {
        let mut servers = Vec::new();
        let mut actual_by_server = Vec::new();
        let mut zone_means: HashMap<carbonedge_grid::ZoneId, (f64, f64)> = HashMap::new();
        for (site_idx, (loc, zone, pop)) in sites.iter().enumerate() {
            let count = match config.scenario {
                CdnScenario::PopulationCapacity => ((pop / mean_population)
                    * config.servers_per_site as f64)
                    .round()
                    .max(1.0) as usize,
                _ => config.servers_per_site,
            };
            let (decided, actual) = *zone_means.entry(*zone).or_insert_with(|| {
                (
                    service.forecast_mean_over(*zone, epoch.start, epoch.hours),
                    traces[zone.index()]
                        .window_mean(epoch.start, epoch.hours)
                        .max(0.0),
                )
            });
            for _ in 0..count {
                servers.push(
                    carbonedge_core::ServerSnapshot::new(
                        servers.len(),
                        site_idx,
                        *zone,
                        config.device,
                        *loc,
                    )
                    .with_carbon_intensity(decided),
                );
                actual_by_server.push(actual);
            }
        }
        let mut apps = Vec::new();
        for (loc, _, pop) in &sites {
            let count = match config.scenario {
                CdnScenario::PopulationDemand => ((pop / mean_population)
                    * config.apps_per_site as f64)
                    .round()
                    .max(0.0) as usize,
                _ => config.apps_per_site,
            };
            for _ in 0..count {
                apps.push(Application::new(
                    AppId(apps.len()),
                    config.model,
                    config.request_rate_rps,
                    config.latency_limit_ms,
                    *loc,
                    0,
                ));
            }
        }
        if apps.is_empty() || servers.is_empty() {
            epoch_carbon.push(0.0);
            epoch_decision_carbon.push(0.0);
            continue;
        }
        let mut problem = PlacementProblem::new(servers, apps, epoch.hours as f64)
            .with_latency_model(latency_model.clone());
        let decision = placer.place(&problem).expect("legacy replica feasible");
        for (server, actual) in problem.servers.iter_mut().zip(&actual_by_server) {
            server.carbon_intensity = *actual;
        }
        let realized = problem
            .total_carbon_g(&decision.assignment)
            .expect("assignment stays feasible");
        let placed = decision.assignment.iter().flatten().count();
        outcome.accumulate(&PolicyOutcome {
            carbon_g: realized,
            energy_j: decision.total_energy_j,
            mean_latency_ms: decision.mean_latency_ms,
            placed_apps: placed,
        });
        epoch_carbon.push(realized);
        epoch_decision_carbon.push(decision.total_carbon_g);
        for assignment in decision.assignment.iter().flatten() {
            assigned_intensity.push(problem.servers[*assignment].carbon_intensity);
        }
    }

    LegacyRun {
        outcome,
        epoch_carbon,
        epoch_decision_carbon,
        assigned_intensity,
    }
}

/// Bit-for-bit comparison of the refactored simulator in aggregate mode
/// against the legacy replica.
fn assert_aggregate_matches_legacy(config: CdnConfig, placer: &IncrementalPlacer) {
    assert_eq!(config.serving, ServingMode::Aggregate);
    let legacy = legacy_run(&config, placer);
    let result = CdnSimulator::new(config).run_with(placer);

    assert!(
        result.serving.is_none(),
        "aggregate mode must not record serving metrics"
    );
    assert_eq!(result.outcome, legacy.outcome);
    assert_eq!(
        result.decision_carbon_g,
        legacy.epoch_decision_carbon.iter().sum::<f64>()
    );
    assert_eq!(result.assigned_intensity, legacy.assigned_intensity);
    assert_eq!(result.epochs.len(), legacy.epoch_carbon.len());
    for ((epoch, carbon), decision_carbon) in result
        .epochs
        .iter()
        .zip(legacy.epoch_carbon.iter())
        .zip(legacy.epoch_decision_carbon.iter())
    {
        assert_eq!(epoch.carbon_g, *carbon, "epoch {}", epoch.index);
        assert_eq!(
            epoch.decision_carbon_g, *decision_carbon,
            "epoch {}",
            epoch.index
        );
    }
}

#[test]
fn aggregate_mode_reproduces_the_legacy_engine_bit_for_bit() {
    // The default configuration is aggregate mode — no opt-in required.
    assert_eq!(
        CdnConfig::new(ZoneArea::Europe).serving,
        ServingMode::Aggregate
    );
    // A churny grid (60 EU sites, 30 ms reach, weekly re-placement), a
    // skewed-demand US grid, and the latency-aware baseline.
    assert_aggregate_matches_legacy(
        CdnConfig::new(ZoneArea::Europe)
            .with_site_limit(60)
            .with_latency_limit(30.0)
            .with_epoch(EpochSchedule::Weekly),
        &IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only(),
    );
    assert_aggregate_matches_legacy(
        CdnConfig::new(ZoneArea::UnitedStates)
            .with_site_limit(15)
            .with_scenario(CdnScenario::PopulationDemand),
        &IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only(),
    );
    assert_aggregate_matches_legacy(
        CdnConfig::new(ZoneArea::Europe).with_site_limit(20),
        &IncrementalPlacer::new(PlacementPolicy::LatencyAware).heuristic_only(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seed, rate and site cap, the event-level request total is
    /// exactly what the aggregate demand model implies, and every request
    /// ends the year served or dropped.
    #[test]
    fn event_totals_match_the_aggregate_demand_model(
        seed in 0u64..1000,
        rate in 0.5f64..20.0,
        site_limit in 4usize..8,
    ) {
        let mut config = CdnConfig::new(ZoneArea::Europe)
            .with_site_limit(site_limit)
            .with_serving(ServingMode::EventLevel);
        config.seed = seed;
        config.request_rate_rps = rate;
        let epoch = config.epoch;
        let apps_per_site = config.apps_per_site;
        let simulator = CdnSimulator::new(config);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
        let result = simulator.run_with(&placer);
        let metrics = result.serving.expect("event-level runs record metrics");

        // Streams apportion `round(rate x 3600 x epoch_hours)` per epoch,
        // so the expected total follows from the epoch schedule alone.
        let streams = simulator.site_count() * apps_per_site;
        let per_stream: u64 = epoch
            .epochs()
            .into_iter()
            .map(|e| (rate * 3600.0 * e.hours as f64).round() as u64)
            .sum();
        prop_assert_eq!(metrics.requests_total, streams as u64 * per_stream);

        let accounted = metrics.served + metrics.dropped;
        let total = metrics.requests_total as f64;
        prop_assert!(
            (accounted - total).abs() <= 1e-6 * total.max(1.0),
            "served {} + dropped {} != total {}",
            metrics.served, metrics.dropped, total
        );
    }
}

#[test]
fn serving_results_are_bit_identical_for_any_worker_count() {
    let spec = SweepSpec::new("serving-jobs")
        .with_areas(vec![ZoneArea::Europe])
        .with_latency_limits(vec![30.0])
        .with_site_limit(Some(12))
        .with_demand(4, 1)
        .with_servings(ServingMode::ALL.to_vec());
    let sequential = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
    let parallel = SweepExecutor::new().with_jobs(4).run(&spec).unwrap();
    for (a, b) in sequential.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(a.serving, b.serving, "cell {}", a.cell.index);
        assert_eq!(a.outcome, b.outcome, "cell {}", a.cell.index);
    }
    assert_eq!(sequential.render_serving(), parallel.render_serving());
    // Event-level cells carry metrics; aggregate cells never do.
    for cell in &sequential.cells {
        assert_eq!(
            cell.serving.is_some(),
            cell.cell.serving.is_event_level(),
            "cell {}",
            cell.cell.index
        );
    }
}
