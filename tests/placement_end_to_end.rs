//! End-to-end integration: datasets → traces → placement problem →
//! incremental placer → orchestrator commit.

use carbonedge_cluster::{EdgeSite, Orchestrator, ServerId, SiteId};
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_grid::HourOfYear;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};

/// Builds the Central-EU regional scenario used across these tests.
fn regional_scenario() -> (Vec<ServerSnapshot>, Vec<Application>, Vec<EdgeSite>) {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
    let traces = catalog.generate_traces(42);
    let now = HourOfYear::new(4000);

    let mut snapshots = Vec::new();
    let mut sites = Vec::new();
    for (idx, (zone, (name, loc))) in region.zones.iter().zip(region.members.iter()).enumerate() {
        snapshots.push(
            ServerSnapshot::new(idx, idx, *zone, DeviceKind::A2, *loc)
                .with_carbon_intensity(traces[zone.index()].at(now)),
        );
        let mut site = EdgeSite::new(SiteId(idx), name.clone(), *loc, *zone);
        site.add_servers(DeviceKind::A2, 1, idx);
        sites.push(site);
    }
    let apps: Vec<Application> = region
        .members
        .iter()
        .enumerate()
        .map(|(i, (_, loc))| Application::new(AppId(i), ModelKind::ResNet50, 15.0, 20.0, *loc, i))
        .collect();
    (snapshots, apps, sites)
}

#[test]
fn carbon_aware_placement_commits_onto_the_cluster() {
    let (snapshots, apps, sites) = regional_scenario();
    let problem = PlacementProblem::new(snapshots, apps.clone(), 1.0)
        .with_latency_model(LatencyModel::deterministic());
    let decision = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
        .place(&problem)
        .expect("regional placement is feasible");
    assert!(decision.unplaced.is_empty());

    // Commit the decision through the orchestrator (the Sinfonia-equivalent).
    let mut orchestrator = Orchestrator::new(sites);
    for (app, server) in apps.iter().zip(decision.assignment.iter()) {
        let server = ServerId(server.expect("placed"));
        let outcome = orchestrator.deploy(app, server).expect("deploy succeeds");
        assert_eq!(outcome.app, app.id);
    }
    assert_eq!(orchestrator.deployed_count(), apps.len());
    // The cluster state reflects the placement decision.
    for (app, server) in apps.iter().zip(decision.assignment.iter()) {
        assert_eq!(
            orchestrator.placement_of(app.id),
            Some(ServerId(server.unwrap()))
        );
    }
}

#[test]
fn carbon_aware_beats_latency_aware_on_carbon_but_not_latency() {
    let (snapshots, apps, _) = regional_scenario();
    let problem = PlacementProblem::new(snapshots, apps, 1.0)
        .with_latency_model(LatencyModel::deterministic());
    let carbon = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
        .place(&problem)
        .unwrap();
    let latency = IncrementalPlacer::new(PlacementPolicy::LatencyAware)
        .place(&problem)
        .unwrap();
    assert!(carbon.total_carbon_g < latency.total_carbon_g);
    assert!(carbon.mean_latency_ms >= latency.mean_latency_ms);
    // The latency SLO is still respected by every placed application.
    for (i, server) in carbon.assignment.iter().enumerate() {
        let j = server.unwrap();
        assert!(problem.latency_ms(i, j) <= problem.apps[i].latency_slo_ms + 1e-9);
    }
}

#[test]
fn all_four_policies_produce_feasible_placements() {
    let (snapshots, apps, _) = regional_scenario();
    let problem = PlacementProblem::new(snapshots, apps, 1.0)
        .with_latency_model(LatencyModel::deterministic());
    for policy in PlacementPolicy::BASELINE_SET {
        let decision = IncrementalPlacer::new(policy).place(&problem).unwrap();
        assert!(
            decision.unplaced.is_empty(),
            "{policy:?} left apps unplaced"
        );
        assert!(decision.total_carbon_g > 0.0);
        assert!(decision.total_energy_j > 0.0);
    }
}

#[test]
fn exact_and_heuristic_solvers_agree_on_the_regional_scenario() {
    let (snapshots, apps, _) = regional_scenario();
    let problem = PlacementProblem::new(snapshots, apps, 1.0)
        .with_latency_model(LatencyModel::deterministic());
    let exact = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
        .with_exact_size_limit(10_000)
        .place(&problem)
        .unwrap();
    let heuristic = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
        .heuristic_only()
        .place(&problem)
        .unwrap();
    assert!(exact.exact);
    assert!(!heuristic.exact);
    // The heuristic can only be worse (or equal), and on this small regional
    // instance it should be within a few percent of the MILP optimum.
    assert!(heuristic.total_carbon_g >= exact.total_carbon_g - 1e-6);
    assert!(heuristic.total_carbon_g <= exact.total_carbon_g * 1.05 + 1e-6);
}
