//! Differential solver/placement tests: on every scenario small enough for
//! the exact path (`apps * servers <= exact_size_limit`), the heuristic must
//! never beat the exact optimum, the LP relaxation must lower-bound the
//! MILP, and when the relaxation is already integral, simplex and
//! branch-and-bound must agree on the optimum within tolerance.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_solver::{BranchBoundSolver, LpOutcome, SimplexSolver, VarKind};
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-6;

/// A randomized mesoscale scenario sized for the exact path.
fn random_scenario(seed: u64, n_servers: usize, n_apps: usize) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Coordinates::new(46.0, 8.0);
    let devices = [DeviceKind::OrinNano, DeviceKind::A2, DeviceKind::Gtx1080];
    let servers: Vec<ServerSnapshot> = (0..n_servers)
        .map(|j| {
            let loc = Coordinates::new(
                base.lat + rng.gen_range(-1.5..1.5),
                base.lon + rng.gen_range(-2.0..2.0),
            );
            ServerSnapshot::new(j, j, ZoneId(j), devices[j % devices.len()], loc)
                .with_carbon_intensity(rng.gen_range(30.0..700.0))
                .with_powered_on(rng.gen_bool(0.8))
        })
        .collect();
    let apps: Vec<Application> = (0..n_apps)
        .map(|i| {
            let origin = servers[rng.gen_range(0..n_servers)].location;
            Application::new(
                AppId(i),
                ModelKind::ResNet50,
                rng.gen_range(5.0..20.0),
                40.0,
                origin,
                0,
            )
        })
        .collect();
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// The two-site tier-1 scenario used across the core test-suite: a local
/// dirty zone and a remote green zone.
fn green_and_dirty(slo_ms: f64, green_powered_on: bool) -> PlacementProblem {
    let servers = vec![
        ServerSnapshot::new(
            0,
            0,
            ZoneId(0),
            DeviceKind::A2,
            Coordinates::new(48.14, 11.58),
        )
        .with_carbon_intensity(550.0),
        ServerSnapshot::new(
            1,
            1,
            ZoneId(1),
            DeviceKind::A2,
            Coordinates::new(46.95, 7.45),
        )
        .with_carbon_intensity(45.0)
        .with_powered_on(green_powered_on),
    ];
    let apps = vec![
        Application::new(
            AppId(0),
            ModelKind::ResNet50,
            20.0,
            slo_ms,
            Coordinates::new(48.14, 11.58),
            0,
        ),
        Application::new(
            AppId(1),
            ModelKind::ResNet50,
            12.0,
            slo_ms,
            Coordinates::new(46.95, 7.45),
            0,
        ),
    ];
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// Every tier-1-sized scenario the differential suite sweeps: the hand-built
/// two-site scenarios plus randomized instances kept under the placer's
/// `exact_size_limit`.
fn exact_path_scenarios() -> Vec<PlacementProblem> {
    let mut scenarios = vec![
        green_and_dirty(30.0, true),
        green_and_dirty(30.0, false),
        green_and_dirty(8.0, true),
    ];
    for (seed, servers, apps) in [
        (1, 3, 2),
        (2, 4, 3),
        (3, 5, 4),
        (4, 8, 5),
        (5, 6, 6),
        (6, 8, 4),
        (7, 4, 4),
        (8, 5, 8),
    ] {
        scenarios.push(random_scenario(seed, servers, apps));
    }
    scenarios
}

fn policies() -> Vec<PlacementPolicy> {
    let mut policies = PlacementPolicy::BASELINE_SET.to_vec();
    policies.push(PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.3 });
    policies
}

#[test]
fn scenarios_fit_the_exact_path() {
    let limit = IncrementalPlacer::new(PlacementPolicy::CarbonAware).exact_size_limit;
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        let (apps, servers) = problem.size();
        assert!(
            apps * servers <= limit,
            "scenario {k} ({apps} apps x {servers} servers) exceeds exact_size_limit {limit}"
        );
    }
}

/// The heuristic's objective is never better than the exact optimum on the
/// same scenario and policy (it minimizes the same cost function).
#[test]
fn heuristic_cost_never_beats_exact_cost() {
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let exact_placer = IncrementalPlacer::new(policy);
            let Ok(exact) = exact_placer.place(problem) else {
                continue; // stranded-app scenarios are covered elsewhere
            };
            let heuristic = IncrementalPlacer::new(policy)
                .heuristic_only()
                .place(problem)
                .expect("feasible for exact implies feasible for heuristic");
            assert!(!heuristic.exact);
            if !exact.unplaced.is_empty() || !heuristic.unplaced.is_empty() {
                continue; // objectives are not comparable with unplaced apps
            }
            let exact_obj = exact_placer
                .objective_of(problem, &exact.assignment)
                .expect("exact assignment is feasible");
            let heuristic_obj = exact_placer
                .objective_of(problem, &heuristic.assignment)
                .expect("heuristic assignment is feasible");
            assert!(
                heuristic_obj >= exact_obj - TOL,
                "scenario {k}, policy {}: heuristic {heuristic_obj} beats exact {exact_obj}",
                policy.name()
            );
        }
    }
}

/// Branch-and-bound's optimum matches the objective of the assignment the
/// exact placement path commits.
#[test]
fn exact_decision_matches_branch_and_bound_objective() {
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let placer = IncrementalPlacer::new(policy);
            let Ok(decision) = placer.place(problem) else {
                continue;
            };
            if !decision.exact || !decision.unplaced.is_empty() {
                continue;
            }
            let placement_model = placer.build_model(problem);
            let milp = placer.milp_solver.solve(&placement_model.model);
            assert!(milp.has_solution(), "scenario {k}: MILP should be solvable");
            let committed = placer
                .objective_of(problem, &decision.assignment)
                .expect("committed assignment feasible");
            assert!(
                (committed - milp.objective).abs() <= TOL * committed.abs().max(1.0),
                "scenario {k}, policy {}: committed {committed} vs MILP {}",
                policy.name(),
                milp.objective
            );
        }
    }
}

/// The simplex LP relaxation lower-bounds branch-and-bound, and when the
/// relaxation is already integral the two solvers agree on the optimum.
#[test]
fn simplex_and_branch_and_bound_agree_on_integral_optima() {
    let simplex = SimplexSolver::new();
    let bb = BranchBoundSolver::new();
    let mut integral_agreements = 0usize;
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let placer = IncrementalPlacer::new(policy);
            let placement_model = placer.build_model(problem);
            let model = &placement_model.model;
            let lp = simplex.solve(model);
            if lp.outcome != LpOutcome::Optimal {
                continue;
            }
            let milp = bb.solve(model);
            if !milp.has_solution() {
                continue;
            }
            // The relaxation is a lower bound on any integer solution.
            assert!(
                lp.objective <= milp.objective + TOL * milp.objective.abs().max(1.0),
                "scenario {k}, policy {}: LP bound {} above MILP {}",
                policy.name(),
                lp.objective,
                milp.objective
            );
            let integral = model
                .vars()
                .iter()
                .enumerate()
                .filter(|(_, kind)| matches!(kind, VarKind::Binary))
                .all(|(i, _)| (lp.values[i] - lp.values[i].round()).abs() <= TOL);
            if integral {
                integral_agreements += 1;
                assert!(
                    (lp.objective - milp.objective).abs() <= TOL * milp.objective.abs().max(1.0),
                    "scenario {k}, policy {}: integral LP {} disagrees with B&B {}",
                    policy.name(),
                    lp.objective,
                    milp.objective
                );
                // The integral relaxation decodes to a feasible assignment
                // with the same objective under the policy's cost function.
                let assignment = placement_model.decode(&lp.values);
                if assignment.iter().all(|a| a.is_some()) {
                    let decoded = placer
                        .objective_of(problem, &assignment)
                        .expect("integral LP assignment is feasible");
                    assert!((decoded - milp.objective).abs() <= TOL * decoded.abs().max(1.0));
                }
            }
        }
    }
    assert!(
        integral_agreements >= 10,
        "expected many integral relaxations across the scenario set, got {integral_agreements}"
    );
}
