//! Differential solver/placement tests: on every scenario small enough for
//! the exact path (`apps * servers <= exact_size_limit`), the heuristic must
//! never beat the exact optimum, the LP relaxation must lower-bound the
//! MILP, and when the relaxation is already integral, simplex and
//! branch-and-bound must agree on the optimum within tolerance.
//!
//! The suite also differentials the **bounded-variable revised simplex**
//! and the **warm-started best-first branch-and-bound** against the
//! retained dense Big-M oracles (`carbonedge_solver::reference`) on
//! randomized models, and checks that warm restarts (dirty reused
//! workspaces) reproduce cold-start results exactly on every exact-path
//! scenario.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_solver::{
    presolve, BlockStructure, BranchBoundSolver, Comparison, DenseSimplexSolver, LinearExpr,
    LpOutcome, Model, PresolveOutcome, ReferenceBranchBound, SimplexSolver, VarKind,
};
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-6;

/// A randomized mesoscale scenario sized for the exact path.
fn random_scenario(seed: u64, n_servers: usize, n_apps: usize) -> PlacementProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = Coordinates::new(46.0, 8.0);
    let devices = [DeviceKind::OrinNano, DeviceKind::A2, DeviceKind::Gtx1080];
    let servers: Vec<ServerSnapshot> = (0..n_servers)
        .map(|j| {
            let loc = Coordinates::new(
                base.lat + rng.gen_range(-1.5..1.5),
                base.lon + rng.gen_range(-2.0..2.0),
            );
            ServerSnapshot::new(j, j, ZoneId(j), devices[j % devices.len()], loc)
                .with_carbon_intensity(rng.gen_range(30.0..700.0))
                .with_powered_on(rng.gen_bool(0.8))
        })
        .collect();
    let apps: Vec<Application> = (0..n_apps)
        .map(|i| {
            let origin = servers[rng.gen_range(0..n_servers)].location;
            Application::new(
                AppId(i),
                ModelKind::ResNet50,
                rng.gen_range(5.0..20.0),
                40.0,
                origin,
                0,
            )
        })
        .collect();
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// The two-site tier-1 scenario used across the core test-suite: a local
/// dirty zone and a remote green zone.
fn green_and_dirty(slo_ms: f64, green_powered_on: bool) -> PlacementProblem {
    let servers = vec![
        ServerSnapshot::new(
            0,
            0,
            ZoneId(0),
            DeviceKind::A2,
            Coordinates::new(48.14, 11.58),
        )
        .with_carbon_intensity(550.0),
        ServerSnapshot::new(
            1,
            1,
            ZoneId(1),
            DeviceKind::A2,
            Coordinates::new(46.95, 7.45),
        )
        .with_carbon_intensity(45.0)
        .with_powered_on(green_powered_on),
    ];
    let apps = vec![
        Application::new(
            AppId(0),
            ModelKind::ResNet50,
            20.0,
            slo_ms,
            Coordinates::new(48.14, 11.58),
            0,
        ),
        Application::new(
            AppId(1),
            ModelKind::ResNet50,
            12.0,
            slo_ms,
            Coordinates::new(46.95, 7.45),
            0,
        ),
    ];
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// Every tier-1-sized scenario the differential suite sweeps: the hand-built
/// two-site scenarios plus randomized instances kept under the placer's
/// `exact_size_limit`.
fn exact_path_scenarios() -> Vec<PlacementProblem> {
    let mut scenarios = vec![
        green_and_dirty(30.0, true),
        green_and_dirty(30.0, false),
        green_and_dirty(8.0, true),
    ];
    for (seed, servers, apps) in [
        (1, 3, 2),
        (2, 4, 3),
        (3, 5, 4),
        (4, 8, 5),
        (5, 6, 6),
        (6, 8, 4),
        (7, 4, 4),
        (8, 5, 8),
    ] {
        scenarios.push(random_scenario(seed, servers, apps));
    }
    scenarios
}

fn policies() -> Vec<PlacementPolicy> {
    let mut policies = PlacementPolicy::BASELINE_SET.to_vec();
    policies.push(PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.3 });
    policies
}

#[test]
fn scenarios_fit_the_exact_path() {
    let limit = IncrementalPlacer::new(PlacementPolicy::CarbonAware).exact_size_limit;
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        let (apps, servers) = problem.size();
        assert!(
            apps * servers <= limit,
            "scenario {k} ({apps} apps x {servers} servers) exceeds exact_size_limit {limit}"
        );
    }
}

/// The heuristic's objective is never better than the exact optimum on the
/// same scenario and policy (it minimizes the same cost function).
#[test]
fn heuristic_cost_never_beats_exact_cost() {
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let exact_placer = IncrementalPlacer::new(policy);
            let Ok(exact) = exact_placer.place(problem) else {
                continue; // stranded-app scenarios are covered elsewhere
            };
            let heuristic = IncrementalPlacer::new(policy)
                .heuristic_only()
                .place(problem)
                .expect("feasible for exact implies feasible for heuristic");
            assert!(!heuristic.exact);
            if !exact.unplaced.is_empty() || !heuristic.unplaced.is_empty() {
                continue; // objectives are not comparable with unplaced apps
            }
            let exact_obj = exact_placer
                .objective_of(problem, &exact.assignment)
                .expect("exact assignment is feasible");
            let heuristic_obj = exact_placer
                .objective_of(problem, &heuristic.assignment)
                .expect("heuristic assignment is feasible");
            assert!(
                heuristic_obj >= exact_obj - TOL,
                "scenario {k}, policy {}: heuristic {heuristic_obj} beats exact {exact_obj}",
                policy.name()
            );
        }
    }
}

/// Branch-and-bound's optimum matches the objective of the assignment the
/// exact placement path commits.
#[test]
fn exact_decision_matches_branch_and_bound_objective() {
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let placer = IncrementalPlacer::new(policy);
            let Ok(decision) = placer.place(problem) else {
                continue;
            };
            if !decision.exact || !decision.unplaced.is_empty() {
                continue;
            }
            let placement_model = placer.build_model(problem);
            let milp = placer.milp_solver.solve(&placement_model.model);
            assert!(milp.has_solution(), "scenario {k}: MILP should be solvable");
            let committed = placer
                .objective_of(problem, &decision.assignment)
                .expect("committed assignment feasible");
            assert!(
                (committed - milp.objective).abs() <= TOL * committed.abs().max(1.0),
                "scenario {k}, policy {}: committed {committed} vs MILP {}",
                policy.name(),
                milp.objective
            );
        }
    }
}

/// The simplex LP relaxation lower-bounds branch-and-bound, and when the
/// relaxation is already integral the two solvers agree on the optimum.
#[test]
fn simplex_and_branch_and_bound_agree_on_integral_optima() {
    let simplex = SimplexSolver::new();
    let bb = BranchBoundSolver::new();
    let mut integral_agreements = 0usize;
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let placer = IncrementalPlacer::new(policy);
            let placement_model = placer.build_model(problem);
            let model = &placement_model.model;
            let lp = simplex.solve(model);
            if lp.outcome != LpOutcome::Optimal {
                continue;
            }
            let milp = bb.solve(model);
            if !milp.has_solution() {
                continue;
            }
            // The relaxation is a lower bound on any integer solution.
            assert!(
                lp.objective <= milp.objective + TOL * milp.objective.abs().max(1.0),
                "scenario {k}, policy {}: LP bound {} above MILP {}",
                policy.name(),
                lp.objective,
                milp.objective
            );
            let integral = model
                .vars()
                .iter()
                .enumerate()
                .filter(|(_, kind)| matches!(kind, VarKind::Binary))
                .all(|(i, _)| (lp.values[i] - lp.values[i].round()).abs() <= TOL);
            if integral {
                integral_agreements += 1;
                assert!(
                    (lp.objective - milp.objective).abs() <= TOL * milp.objective.abs().max(1.0),
                    "scenario {k}, policy {}: integral LP {} disagrees with B&B {}",
                    policy.name(),
                    lp.objective,
                    milp.objective
                );
                // The integral relaxation decodes to a feasible assignment
                // with the same objective under the policy's cost function.
                let assignment = placement_model.decode(&lp.values);
                if assignment.iter().all(|a| a.is_some()) {
                    let decoded = placer
                        .objective_of(problem, &assignment)
                        .expect("integral LP assignment is feasible");
                    assert!((decoded - milp.objective).abs() <= TOL * decoded.abs().max(1.0));
                }
            }
        }
    }
    assert!(
        integral_agreements >= 10,
        "expected many integral relaxations across the scenario set, got {integral_agreements}"
    );
}

/// Generates a random bounded LP/MILP in the shape family the placement
/// models live in (nonnegative finite bounds, mixed senses, a handful of
/// rows), plus occasional negative costs and loose bounds to stress the
/// dual-infeasible cold-start fallback.
fn random_model(rng: &mut StdRng) -> Model {
    let mut m = Model::new();
    let n_vars = rng.gen_range(1..8);
    let vars: Vec<_> = (0..n_vars)
        .map(|_| {
            if rng.gen_bool(0.5) {
                m.add_binary()
            } else {
                // Mix finite and upper-unbounded continuous variables so the
                // dual-infeasible cold-start fallback and the unbounded-
                // detection paths get differential coverage.  Lower bounds
                // stay finite: the dense oracle shifts by the lower bound
                // and is undefined on `lower = -inf` (free/one-sided-below
                // variables are covered by the revised solver's own
                // regression tests instead).
                let lo = if rng.gen_bool(0.25) {
                    rng.gen_range(-3.0..0.0)
                } else {
                    0.0
                };
                let hi = if rng.gen_bool(0.15) {
                    f64::INFINITY
                } else {
                    lo + rng.gen_range(0.5..8.0)
                };
                m.add_continuous(lo, hi)
            }
        })
        .collect();
    for &v in &vars {
        if rng.gen_bool(0.8) {
            m.set_objective_term(v, rng.gen_range(-10.0..10.0));
        }
    }
    let rows = rng.gen_range(0..6);
    for r in 0..rows {
        let mut expr = LinearExpr::new();
        for &v in &vars {
            if rng.gen_bool(0.6) {
                expr.add(v, rng.gen_range(-5.0..5.0));
            }
        }
        if expr.terms.is_empty() {
            continue;
        }
        let cmp = match rng.gen_range(0..3) {
            0 => Comparison::LessEq,
            1 => Comparison::GreaterEq,
            _ => Comparison::Equal,
        };
        // Bias right-hand sides toward feasible magnitudes.
        let rhs = rng.gen_range(-4.0..8.0);
        m.add_constraint(expr, cmp, rhs, format!("r{r}"));
    }
    m
}

/// Property test: the revised simplex agrees with the dense Big-M oracle on
/// outcome and objective across randomized LP relaxations.
#[test]
fn revised_simplex_matches_dense_oracle_on_random_models() {
    let revised = SimplexSolver::new();
    let oracle = DenseSimplexSolver::new();
    let mut rng = StdRng::seed_from_u64(2024);
    let mut optimal_cases = 0usize;
    for case in 0..300 {
        let model = random_model(&mut rng);
        let a = revised.solve(&model);
        let b = oracle.solve(&model);
        // Known Big-M limitation (one-directional): on a problem that is
        // infeasible but whose M-relaxation has an unbounded ray, the
        // oracle reports Unbounded while the phase-1-based revised solver
        // correctly proves Infeasible.  The reverse disagreement would be a
        // real bug and still fails.
        let bigm_conflation =
            a.outcome == LpOutcome::Infeasible && b.outcome == LpOutcome::Unbounded;
        assert!(
            a.outcome == b.outcome || bigm_conflation,
            "case {case}: revised {:?} vs oracle {:?}",
            a.outcome,
            b.outcome
        );
        if a.outcome == LpOutcome::Optimal {
            optimal_cases += 1;
            let scale = b.objective.abs().max(1.0);
            assert!(
                (a.objective - b.objective).abs() <= 1e-5 * scale,
                "case {case}: revised {} vs oracle {}",
                a.objective,
                b.objective
            );
            // The revised LP point must respect the relaxation: every
            // constraint satisfied and every value inside its (relaxed)
            // bounds.  Binaries may be fractional here, so `is_feasible`
            // (which checks integrality) is deliberately not used.
            for c in model.constraints() {
                assert!(
                    c.is_satisfied(&a.values, 1e-5),
                    "case {case}: constraint `{}` violated by the revised LP point",
                    c.name
                );
            }
            for (i, kind) in model.vars().iter().enumerate() {
                let (lo, hi) = kind.bounds();
                assert!(
                    a.values[i] >= lo - 1e-6 && a.values[i] <= hi + 1e-6,
                    "case {case}: value {} of var {i} outside [{lo}, {hi}]",
                    a.values[i]
                );
            }
        }
    }
    assert!(
        optimal_cases >= 100,
        "generator should produce many solvable LPs, got {optimal_cases}"
    );
}

/// Property test: the warm-started best-first branch-and-bound agrees with
/// the cold-start reference branch-and-bound on outcome and objective, with
/// one shared (increasingly dirty) workspace across all cases.
#[test]
fn branch_and_bound_matches_reference_oracle_on_random_models() {
    let revised = BranchBoundSolver::new();
    let oracle = ReferenceBranchBound::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut solved = 0usize;
    for case in 0..150 {
        let model = random_model(&mut rng);
        let a = revised.solve(&model);
        let b = oracle.solve(&model);
        assert_eq!(
            a.outcome, b.outcome,
            "case {case}: revised {:?} vs oracle {:?}",
            a.outcome, b.outcome
        );
        if a.has_solution() {
            solved += 1;
            let scale = b.objective.abs().max(1.0);
            assert!(
                (a.objective - b.objective).abs() <= 1e-5 * scale,
                "case {case}: revised {} vs oracle {}",
                a.objective,
                b.objective
            );
            assert!(
                model.is_feasible(&a.values, 1e-5),
                "case {case}: revised incumbent infeasible"
            );
        }
    }
    assert!(
        solved >= 50,
        "generator should produce many solvable MILPs, got {solved}"
    );
}

/// Generates a *sparse* random model in the shape family the sparse-LU
/// basis is built for: more variables and rows than [`random_model`], low
/// per-row density, small-integer coefficients (so ratio-test ties and
/// degenerate optima are common), and variables drawing their column
/// pattern from a pool smaller than the variable count — guaranteeing
/// duplicate columns, the structurally singular bases the factorization's
/// rejection path and the eta-update stability guard must survive.
fn sparse_random_model(rng: &mut StdRng) -> Model {
    let n_vars = rng.gen_range(8..36);
    let n_rows = rng.gen_range(3..18);
    let pool_size = (n_vars / 2).max(2);
    let coeffs = [-2.0, -1.0, 1.0, 2.0, 3.0];
    // Column pattern pool: sparse rows hit with small integer coefficients.
    let pool: Vec<Vec<(usize, f64)>> = (0..pool_size)
        .map(|_| {
            let mut pattern = Vec::new();
            for r in 0..n_rows {
                if rng.gen_bool(0.25) {
                    pattern.push((r, coeffs[rng.gen_range(0..coeffs.len())]));
                }
            }
            pattern
        })
        .collect();
    let mut m = Model::new();
    let mut row_exprs: Vec<LinearExpr> = vec![LinearExpr::new(); n_rows];
    for _ in 0..n_vars {
        let v = if rng.gen_bool(0.5) {
            m.add_binary()
        } else {
            m.add_continuous(0.0, rng.gen_range(1..6) as f64)
        };
        if rng.gen_bool(0.8) {
            m.set_objective_term(v, rng.gen_range(-8..9) as f64);
        }
        for &(r, a) in &pool[rng.gen_range(0..pool_size)] {
            row_exprs[r].add(v, a);
        }
    }
    for (r, expr) in row_exprs.into_iter().enumerate() {
        if expr.terms.is_empty() {
            continue;
        }
        let cmp = match rng.gen_range(0..4) {
            0 => Comparison::GreaterEq,
            1 => Comparison::Equal,
            _ => Comparison::LessEq,
        };
        // Integer right-hand sides keep degenerate ties frequent.
        m.add_constraint(expr, cmp, rng.gen_range(-2..8) as f64, format!("r{r}"));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property test: the sparse-LU revised simplex agrees with the dense
    /// Big-M oracle on outcome and objective across the sparse model
    /// family (duplicate columns, degenerate ties and all).
    #[test]
    fn sparse_lu_simplex_matches_dense_oracle(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let revised = SimplexSolver::new();
        let oracle = DenseSimplexSolver::new();
        for _ in 0..4 {
            let model = sparse_random_model(&mut rng);
            let a = revised.solve(&model);
            let b = oracle.solve(&model);
            // Same one-directional Big-M conflation as the dense-family
            // differential: the oracle can mistake infeasible for
            // unbounded, never the reverse.
            let bigm_conflation =
                a.outcome == LpOutcome::Infeasible && b.outcome == LpOutcome::Unbounded;
            prop_assert!(
                a.outcome == b.outcome || bigm_conflation,
                "seed {}: revised {:?} vs oracle {:?}",
                seed, a.outcome, b.outcome
            );
            if a.outcome == LpOutcome::Optimal {
                let scale = b.objective.abs().max(1.0);
                prop_assert!(
                    (a.objective - b.objective).abs() <= 1e-5 * scale,
                    "seed {}: revised {} vs oracle {}",
                    seed, a.objective, b.objective
                );
                for c in model.constraints() {
                    prop_assert!(
                        c.is_satisfied(&a.values, 1e-5),
                        "seed {}: constraint `{}` violated",
                        seed, c.name
                    );
                }
            }
        }
    }

    /// Property test: branch-and-bound **with the presolve pass forced on**
    /// agrees with the cold reference oracle, and its postsolved incumbent
    /// is feasible for the *original* model — exercising fixed-variable
    /// substitution, bound tightening, dominated-column elimination and
    /// the postsolve mapping on every case.
    #[test]
    fn presolved_branch_bound_matches_reference_oracle(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut presolved = BranchBoundSolver::new();
        presolved.presolve_min_vars = 0;
        let oracle = ReferenceBranchBound::new();
        for _ in 0..2 {
            let model = sparse_random_model(&mut rng);
            let a = presolved.solve(&model);
            let b = oracle.solve(&model);
            prop_assert_eq!(a.outcome, b.outcome);
            if a.has_solution() {
                let scale = b.objective.abs().max(1.0);
                prop_assert!(
                    (a.objective - b.objective).abs() <= 1e-5 * scale,
                    "seed {}: presolved {} vs oracle {}",
                    seed, a.objective, b.objective
                );
                prop_assert!(
                    model.is_feasible(&a.values, 1e-5),
                    "seed {}: postsolved incumbent infeasible on the original model",
                    seed
                );
            }
        }
    }

    /// Property test: when presolve proves a model infeasible or reduces
    /// it, the reduction itself is sound — solving the reduced model and
    /// postsolving reproduces the reference optimum exactly.
    #[test]
    fn presolve_reductions_are_lossless(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = sparse_random_model(&mut rng);
        let oracle = ReferenceBranchBound::new().solve(&model);
        match presolve(&model) {
            PresolveOutcome::Infeasible => {
                prop_assert!(
                    !oracle.has_solution(),
                    "seed {}: presolve claimed infeasible but oracle found {}",
                    seed, oracle.objective
                );
            }
            PresolveOutcome::Reduced(pm) => {
                let sub = BranchBoundSolver::new().solve(&pm.model);
                prop_assert_eq!(sub.has_solution(), oracle.has_solution());
                if sub.has_solution() {
                    let obj = pm.full_objective(sub.objective);
                    let scale = oracle.objective.abs().max(1.0);
                    prop_assert!(
                        (obj - oracle.objective).abs() <= 1e-5 * scale,
                        "seed {}: postsolved {} vs oracle {}",
                        seed, obj, oracle.objective
                    );
                    let full = pm.postsolve(&sub.values);
                    prop_assert!(model.is_feasible(&full, 1e-5), "seed {}", seed);
                }
            }
        }
    }
}

/// Generates a randomized assignment-shaped placement MILP in exactly the
/// block structure the Dantzig–Wolfe path targets: per-app assignment rows,
/// per-server capacity rows with an activation variable, `x ≤ y` linking
/// rows, and optional `y = 1` pins.  Costs draw from a small integer pool
/// (degenerate ties are common) and one server is frequently an exact clone
/// of another (duplicate columns), so the decomposition's deterministic
/// tie-breaking gets differential coverage, not just its happy path.
fn block_structured_model(rng: &mut StdRng) -> Model {
    let servers = rng.gen_range(2..5usize);
    let apps = rng.gen_range(2..7usize);
    let cost_pool = [1.0, 1.0, 2.0, 3.0, 5.0];
    let activation_pool = [0.0, 1.0, 1.0, 2.0];

    // Per-server capacity / per-app demand in small integers.
    let mut capacity: Vec<f64> = (0..servers).map(|_| rng.gen_range(2..7) as f64).collect();
    let demand: Vec<f64> = (0..apps).map(|_| rng.gen_range(1..3) as f64).collect();
    let mut feasible: Vec<Vec<bool>> = (0..apps)
        .map(|_| (0..servers).map(|_| rng.gen_bool(0.8)).collect())
        .collect();
    let mut costs: Vec<Vec<f64>> = (0..apps)
        .map(|_| {
            (0..servers)
                .map(|_| cost_pool[rng.gen_range(0..cost_pool.len())])
                .collect()
        })
        .collect();
    let mut activation: Vec<f64> = (0..servers)
        .map(|_| activation_pool[rng.gen_range(0..activation_pool.len())])
        .collect();
    // Clone server 0 into server 1 often: exact duplicate columns.
    if rng.gen_bool(0.4) {
        capacity[1] = capacity[0];
        activation[1] = activation[0];
        for i in 0..apps {
            feasible[i][1] = feasible[i][0];
            costs[i][1] = costs[i][0];
        }
    }
    // Every app needs at least one candidate server.
    for row in feasible.iter_mut() {
        if !row.iter().any(|&f| f) {
            let j = rng.gen_range(0..servers);
            row[j] = true;
        }
    }

    let mut m = Model::new();
    let mut x = vec![vec![None; servers]; apps];
    for i in 0..apps {
        for j in 0..servers {
            if feasible[i][j] {
                let v = m.add_binary();
                m.set_objective_term(v, costs[i][j]);
                x[i][j] = Some(v);
            }
        }
    }
    let y: Vec<_> = (0..servers)
        .map(|j| {
            let v = m.add_binary();
            m.set_objective_term(v, activation[j]);
            v
        })
        .collect();
    for (j, &yv) in y.iter().enumerate() {
        if rng.gen_bool(0.3) {
            m.add_constraint(
                LinearExpr::new().with(yv, 1.0),
                Comparison::Equal,
                1.0,
                format!("pin{j}"),
            );
        }
    }
    for (i, row) in x.iter().enumerate() {
        let mut expr = LinearExpr::new();
        for v in row.iter().flatten() {
            expr.add(*v, 1.0);
        }
        m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
    }
    for (j, &yv) in y.iter().enumerate() {
        let mut expr = LinearExpr::new();
        for (i, row) in x.iter().enumerate() {
            if let Some(v) = row[j] {
                expr.add(v, demand[i]);
            }
        }
        if expr.terms.is_empty() {
            continue;
        }
        expr.add(yv, -capacity[j]);
        m.add_constraint(expr, Comparison::LessEq, 0.0, format!("cap{j}"));
    }
    for (i, row) in x.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if let Some(v) = v {
                m.add_constraint(
                    LinearExpr::new().with(*v, 1.0).with(y[j], -1.0),
                    Comparison::LessEq,
                    0.0,
                    format!("link{i}_{j}"),
                );
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property test: on randomized block-structured placement models (with
    /// frequent degenerate ties and duplicate columns), the Dantzig–Wolfe
    /// decomposition, the monolithic branch-and-bound and the dense
    /// reference oracle agree on outcome and objective within 1e-6, the
    /// decomposition's incumbent is feasible for the *original* model
    /// (linking rows included), and repeated decomposition solves are
    /// bit-identical.
    #[test]
    fn decomposition_matches_monolithic_and_reference_on_block_models(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut decomp = BranchBoundSolver::new();
        decomp.decomp_min_vars = 0;
        let mut monolithic = BranchBoundSolver::new();
        monolithic.decomp_min_vars = usize::MAX;
        let oracle = ReferenceBranchBound::new();
        for _ in 0..3 {
            let model = block_structured_model(&mut rng);
            prop_assert!(
                BlockStructure::detect(&model).is_some(),
                "seed {}: generator left the detectable shape",
                seed
            );
            let d = decomp.solve(&model);
            let m = monolithic.solve(&model);
            let r = oracle.solve(&model);
            prop_assert!(
                d.decomp.is_some(),
                "seed {}: decomposition path did not run",
                seed
            );
            prop_assert_eq!(d.has_solution(), m.has_solution());
            prop_assert_eq!(d.has_solution(), r.has_solution());
            if d.has_solution() {
                let scale = r.objective.abs().max(1.0);
                prop_assert!(
                    (d.objective - m.objective).abs() <= 1e-6 * scale,
                    "seed {}: decomposition {} vs monolithic {}",
                    seed, d.objective, m.objective
                );
                prop_assert!(
                    (d.objective - r.objective).abs() <= 1e-6 * scale,
                    "seed {}: decomposition {} vs reference {}",
                    seed, d.objective, r.objective
                );
                prop_assert!(
                    model.is_feasible(&d.values, 1e-5),
                    "seed {}: decomposition incumbent violates the full model",
                    seed
                );
                // Determinism: a fresh decomposition solver reproduces the
                // incumbent bit-for-bit.
                let mut fresh = BranchBoundSolver::new();
                fresh.decomp_min_vars = 0;
                let again = fresh.solve(&model);
                prop_assert_eq!(again.objective, d.objective);
                prop_assert_eq!(again.values, d.values);
            }
        }
    }

    /// Property test: a *warm* decomposition solver fed a stream of
    /// cost-shifted variants of one block structure (the epoch re-solve
    /// pattern) agrees with a cold solver on every step.
    #[test]
    fn warm_decomposition_stream_matches_cold_solves(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = block_structured_model(&mut rng);
        prop_assume!(BlockStructure::detect(&base).is_some());
        let mut warm = BranchBoundSolver::new();
        warm.decomp_min_vars = 0;
        for step in 0..4 {
            let mut shifted = base.clone();
            let terms: Vec<_> = shifted.objective().terms.clone();
            for (k, (v, c)) in terms.into_iter().enumerate() {
                let bump = ((k + step) % 5) as f64 * 0.25;
                shifted.set_objective_term(v, c + bump);
            }
            let mut cold = BranchBoundSolver::new();
            cold.decomp_min_vars = 0;
            let w = warm.solve(&shifted);
            let c = cold.solve(&shifted);
            prop_assert_eq!(w.has_solution(), c.has_solution());
            if w.has_solution() {
                let scale = c.objective.abs().max(1.0);
                prop_assert!(
                    (w.objective - c.objective).abs() <= 1e-6 * scale,
                    "seed {} step {}: warm {} vs cold {}",
                    seed, step, w.objective, c.objective
                );
                prop_assert!(shifted.is_feasible(&w.values, 1e-5));
            }
        }
    }
}

/// Composition of the large-model gates: at ≥256 variables the default
/// solver auto-routes block-structured models to the decomposition path,
/// while a solver with presolve forced and decomposition disabled runs the
/// presolve+monolithic pipeline — both must produce feasible full-space
/// solutions with the same objective.
#[test]
fn decomposition_and_presolve_paths_agree_on_a_large_placement() {
    // 32 apps x 10 servers, all pairs feasible: 330 binaries, above both
    // the presolve (256) and decomposition (256) gates.
    let apps = 32usize;
    let servers = 10usize;
    let mut m = Model::new();
    let mut x = vec![vec![None; servers]; apps];
    for (i, row) in x.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let v = m.add_binary();
            // Deterministic varied costs with frequent ties.
            m.set_objective_term(v, 1.0 + ((i * 7 + j * 13) % 9) as f64);
            *cell = Some(v);
        }
    }
    let y: Vec<_> = (0..servers)
        .map(|j| {
            let v = m.add_binary();
            m.set_objective_term(v, ((j % 3) + 1) as f64);
            v
        })
        .collect();
    for (i, row) in x.iter().enumerate() {
        let mut expr = LinearExpr::new();
        for v in row.iter().flatten() {
            expr.add(*v, 1.0);
        }
        m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
    }
    for (j, &yv) in y.iter().enumerate() {
        let mut expr = LinearExpr::new();
        for row in &x {
            if let Some(v) = row[j] {
                expr.add(v, 1.0);
            }
        }
        expr.add(yv, -4.0);
        m.add_constraint(expr, Comparison::LessEq, 0.0, format!("cap{j}"));
    }
    for (i, row) in x.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if let Some(v) = v {
                m.add_constraint(
                    LinearExpr::new().with(*v, 1.0).with(y[j], -1.0),
                    Comparison::LessEq,
                    0.0,
                    format!("link{i}_{j}"),
                );
            }
        }
    }
    assert!(
        m.num_vars() >= 256,
        "model must clear the large-model gates"
    );
    assert!(BlockStructure::detect(&m).is_some());

    // Default solver: decomposition auto-routes (≥ DECOMP_MIN_VARS).
    let auto = BranchBoundSolver::new().solve(&m);
    assert!(auto.has_solution(), "large placement must be solvable");
    assert!(
        auto.decomp.is_some(),
        "≥256-var block-structured model must take the decomposition path"
    );
    assert!(m.is_feasible(&auto.values, 1e-5));

    // Presolve + monolithic pipeline on the same model.
    let mut mono = BranchBoundSolver::new();
    mono.decomp_min_vars = usize::MAX;
    mono.presolve_min_vars = 0;
    let pre = mono.solve(&m);
    assert!(pre.has_solution());
    assert_eq!(pre.decomp, None);
    assert!(
        m.is_feasible(&pre.values, 1e-5),
        "postsolved incumbent must be feasible on the full model"
    );
    let scale = pre.objective.abs().max(1.0);
    assert!(
        (auto.objective - pre.objective).abs() <= 1e-6 * scale,
        "decomposition {} vs presolve+monolithic {}",
        auto.objective,
        pre.objective
    );
}

/// Hand-built singular-basis and degenerate-optimum cases: exact duplicate
/// columns (a structurally singular basis candidate the factorization must
/// reject) and fully degenerate ratio-test ties, checked against the dense
/// oracle.
#[test]
fn duplicate_columns_and_degenerate_ties_match_the_oracle() {
    let revised = SimplexSolver::new();
    let oracle = DenseSimplexSolver::new();

    // Two identical columns competing for the basis.
    let mut twins = Model::new();
    let x1 = twins.add_continuous(0.0, 5.0);
    let x2 = twins.add_continuous(0.0, 5.0);
    let x3 = twins.add_continuous(0.0, 5.0);
    twins.set_objective_term(x1, -1.0);
    twins.set_objective_term(x2, -1.0);
    twins.set_objective_term(x3, -2.0);
    twins.add_constraint(
        LinearExpr::new().with(x1, 1.0).with(x2, 1.0).with(x3, 1.0),
        Comparison::LessEq,
        4.0,
        "capA",
    );
    twins.add_constraint(
        LinearExpr::new().with(x1, 2.0).with(x2, 2.0).with(x3, 1.0),
        Comparison::LessEq,
        6.0,
        "capB",
    );

    // A fully degenerate vertex: every ratio ties at zero.
    let mut degen = Model::new();
    let y1 = degen.add_continuous(0.0, 10.0);
    let y2 = degen.add_continuous(0.0, 10.0);
    degen.set_objective_term(y1, -1.0);
    degen.set_objective_term(y2, -1.0);
    for (i, coef) in [(0usize, 1.0), (1, 2.0), (2, 3.0)] {
        degen.add_constraint(
            LinearExpr::new().with(y1, coef).with(y2, -1.0),
            Comparison::LessEq,
            0.0,
            format!("tie{i}"),
        );
    }
    degen.add_constraint(
        LinearExpr::new().with(y1, 1.0).with(y2, 1.0),
        Comparison::LessEq,
        3.0,
        "cap",
    );

    for (name, model) in [("twins", twins), ("degenerate", degen)] {
        let a = revised.solve(&model);
        let b = oracle.solve(&model);
        assert_eq!(a.outcome, b.outcome, "{name}");
        assert_eq!(a.outcome, LpOutcome::Optimal, "{name}");
        assert!(
            (a.objective - b.objective).abs() <= 1e-6 * b.objective.abs().max(1.0),
            "{name}: revised {} vs oracle {}",
            a.objective,
            b.objective
        );
    }
}

/// Warm-start-equals-cold-start: a single placer (whose solver workspace
/// stays warm across calls) must commit exactly the decision a fresh placer
/// commits, on every exact-path scenario and policy.
#[test]
fn warm_started_placer_matches_cold_started_placer_on_every_scenario() {
    for policy in policies() {
        // One shared placer; its milp workspace carries over between
        // scenarios and between repeated calls.
        let warm_placer = IncrementalPlacer::new(policy);
        for (k, problem) in exact_path_scenarios().iter().enumerate() {
            let cold_placer = IncrementalPlacer::new(policy);
            let cold = cold_placer.place(problem);
            let warm = warm_placer.place(problem);
            match (cold, warm) {
                (Ok(cold), Ok(warm)) => {
                    assert_eq!(
                        cold.assignment,
                        warm.assignment,
                        "scenario {k}, policy {}: warm and cold assignments differ",
                        policy.name()
                    );
                    assert_eq!(cold.exact, warm.exact);
                    // Re-solving the identical problem on the warm workspace
                    // must also be a fixed point.
                    let again = warm_placer.place(problem).expect("re-solve succeeds");
                    assert_eq!(warm.assignment, again.assignment);
                    assert!((warm.total_carbon_g - again.total_carbon_g).abs() < 1e-9);
                }
                (Err(cold_err), Err(warm_err)) => assert_eq!(cold_err, warm_err),
                (cold, warm) => panic!(
                    "scenario {k}, policy {}: cold {cold:?} vs warm {warm:?} diverge",
                    policy.name()
                ),
            }
        }
    }
}

/// Warm-start-equals-cold-start at the MILP layer: solving every scenario's
/// model twice through one solver (second solve warm) matches a fresh
/// solver's answer bit-for-bit in outcome and assignment decode.
#[test]
fn warm_milp_resolve_is_a_fixed_point_on_every_scenario() {
    let shared = BranchBoundSolver::new();
    for (k, problem) in exact_path_scenarios().iter().enumerate() {
        for policy in policies() {
            let placer = IncrementalPlacer::new(policy);
            let placement_model = placer.build_model(problem);
            let fresh = BranchBoundSolver::new().solve(&placement_model.model);
            let first = shared.solve(&placement_model.model);
            let second = shared.solve(&placement_model.model);
            assert_eq!(
                fresh.outcome,
                first.outcome,
                "scenario {k}, policy {}",
                policy.name()
            );
            assert_eq!(first.outcome, second.outcome);
            if fresh.has_solution() {
                let scale = fresh.objective.abs().max(1.0);
                assert!((first.objective - fresh.objective).abs() <= TOL * scale);
                assert!(
                    (second.objective - first.objective).abs() <= TOL * scale,
                    "scenario {k}, policy {}: warm re-solve drifted ({} vs {})",
                    policy.name(),
                    second.objective,
                    first.objective
                );
                assert_eq!(
                    placement_model.decode(&first.values),
                    placement_model.decode(&second.values),
                    "scenario {k}, policy {}: warm re-solve changed the assignment",
                    policy.name()
                );
                // When the search is a single (integral-root) node, the warm
                // re-solve restarts from the resident optimal basis and must
                // need no pivots at all.  (With branching, the different
                // starting bases can reshape the tree, so total pivots are
                // not comparable.)
                if first.nodes == 1 && second.nodes == 1 {
                    assert_eq!(
                        second.pivots,
                        0,
                        "scenario {k}, policy {}: warm single-node re-solve pivoted",
                        policy.name()
                    );
                }
            }
        }
    }
}
