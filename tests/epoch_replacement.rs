//! Integration tests of the epoch re-placement engine.
//!
//! The two contracts that make the engine safe to ship:
//!
//! 1. **Legacy equivalence** — the monthly-epoch + oracle-forecaster
//!    configuration (the default) reproduces the pre-engine monthly
//!    simulation *bit for bit*.  The test re-implements the legacy loop
//!    (per-month placement against the month's true mean intensity) from
//!    the public APIs and compares every output field exactly.
//! 2. **Oracle dominance on the exact path** — when every epoch decision is
//!    solved to optimality, the oracle forecaster's realized carbon is a
//!    true minimum, so no other forecaster can realize less.  This is the
//!    property the forecast-regret table rests on.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, ZoneCatalog};
use carbonedge_grid::{EpochSchedule, ForecasterKind};
use carbonedge_net::LatencyModel;
use carbonedge_sim::cdn::{CdnConfig, CdnScenario, CdnSimulator, MonthlyOutcome};
use carbonedge_sim::metrics::PolicyOutcome;
use carbonedge_workload::{AppId, Application};
use proptest::prelude::*;

/// Everything the pre-engine monthly simulation reported.
struct LegacyRun {
    outcome: PolicyOutcome,
    monthly: Vec<MonthlyOutcome>,
    placements_per_site: Vec<Vec<usize>>,
    assigned_intensity: Vec<f64>,
}

/// A faithful re-implementation of the pre-engine `CdnSimulator::run_with`
/// loop: one placement per calendar month, decided *and* accounted against
/// the month's true mean intensity.
fn legacy_run(config: &CdnConfig, placer: &IncrementalPlacer) -> LegacyRun {
    let catalog = ZoneCatalog::worldwide();
    let site_catalog = EdgeSiteCatalog::akamai_like(&catalog);
    let traces = catalog.generate_traces(config.seed);
    let mut sites: Vec<_> = site_catalog
        .in_area(config.area)
        .iter()
        .map(|s| (s.name.clone(), s.location, s.zone, s.population_m))
        .collect();
    if let Some(limit) = config.site_limit {
        sites.truncate(limit);
    }
    let latency_model = LatencyModel::deterministic();
    let mean_population =
        sites.iter().map(|(_, _, _, p)| *p).sum::<f64>() / sites.len().max(1) as f64;

    let mut outcome = PolicyOutcome::default();
    let mut monthly = Vec::with_capacity(12);
    let mut placements_per_site = Vec::with_capacity(12);
    let mut assigned_intensity = Vec::new();

    for month in 0..12 {
        let hours_in_month = carbonedge_grid::time::DAYS_PER_MONTH[month] as f64 * 24.0;
        let mut servers = Vec::new();
        let mut server_site = Vec::new();
        for (site_idx, (_, loc, zone, pop)) in sites.iter().enumerate() {
            let count = match config.scenario {
                CdnScenario::PopulationCapacity => ((pop / mean_population)
                    * config.servers_per_site as f64)
                    .round()
                    .max(1.0) as usize,
                _ => config.servers_per_site,
            };
            let intensity = traces[zone.index()].monthly_mean(month);
            for _ in 0..count {
                servers.push(
                    ServerSnapshot::new(servers.len(), site_idx, *zone, config.device, *loc)
                        .with_carbon_intensity(intensity),
                );
                server_site.push(site_idx);
            }
        }
        let mut apps = Vec::new();
        for (_, loc, _, pop) in &sites {
            let count = match config.scenario {
                CdnScenario::PopulationDemand => ((pop / mean_population)
                    * config.apps_per_site as f64)
                    .round()
                    .max(0.0) as usize,
                _ => config.apps_per_site,
            };
            for _ in 0..count {
                apps.push(Application::new(
                    AppId(apps.len()),
                    config.model,
                    config.request_rate_rps,
                    config.latency_limit_ms,
                    *loc,
                    0,
                ));
            }
        }
        if apps.is_empty() || servers.is_empty() {
            monthly.push(MonthlyOutcome::default());
            placements_per_site.push(vec![0; sites.len()]);
            continue;
        }
        let problem = PlacementProblem::new(servers, apps, hours_in_month)
            .with_latency_model(latency_model.clone());
        let decision = placer.place(&problem).expect("legacy placement feasible");
        let placed = decision.assignment.iter().flatten().count();
        outcome.accumulate(&PolicyOutcome {
            carbon_g: decision.total_carbon_g,
            energy_j: decision.total_energy_j,
            mean_latency_ms: decision.mean_latency_ms,
            placed_apps: placed,
        });
        monthly.push(MonthlyOutcome {
            carbon_g: decision.total_carbon_g,
            energy_j: decision.total_energy_j,
            mean_latency_ms: decision.mean_latency_ms,
        });
        let mut site_counts = vec![0usize; sites.len()];
        for assignment in decision.assignment.iter().flatten() {
            site_counts[server_site[*assignment]] += 1;
            assigned_intensity.push(problem.servers[*assignment].carbon_intensity);
        }
        placements_per_site.push(site_counts);
    }

    LegacyRun {
        outcome,
        monthly,
        placements_per_site,
        assigned_intensity,
    }
}

/// Bit-for-bit comparison of a legacy replica against the epoch engine.
fn assert_matches_legacy(config: CdnConfig, policy: PlacementPolicy) {
    assert_eq!(config.epoch, EpochSchedule::Monthly);
    assert_eq!(config.forecaster, ForecasterKind::Oracle);
    let placer = IncrementalPlacer::new(policy).heuristic_only();
    let legacy = legacy_run(&config, &placer);
    let engine = CdnSimulator::new(config).run_with(&placer);

    // Exact equality everywhere — the legacy path *is* this configuration.
    assert_eq!(engine.outcome, legacy.outcome);
    assert_eq!(engine.monthly, legacy.monthly);
    assert_eq!(engine.placements_per_site, legacy.placements_per_site);
    assert_eq!(engine.assigned_intensity, legacy.assigned_intensity);
    // And the engine's extras stay consistent with the legacy view.
    assert_eq!(engine.epochs.len(), 12);
    assert_eq!(engine.decision_carbon_g, engine.outcome.carbon_g);
}

#[test]
fn monthly_oracle_reproduces_legacy_simulation_bit_for_bit() {
    assert_matches_legacy(
        CdnConfig::new(ZoneArea::Europe).with_site_limit(20),
        PlacementPolicy::CarbonAware,
    );
    assert_matches_legacy(
        CdnConfig::new(ZoneArea::UnitedStates).with_site_limit(15),
        PlacementPolicy::LatencyAware,
    );
    assert_matches_legacy(
        CdnConfig::new(ZoneArea::Europe)
            .with_site_limit(15)
            .with_scenario(CdnScenario::PopulationDemand),
        PlacementPolicy::CarbonAware,
    );
    assert_matches_legacy(
        CdnConfig::new(ZoneArea::UnitedStates)
            .with_site_limit(15)
            .with_scenario(CdnScenario::PopulationCapacity)
            .with_latency_limit(10.0),
        PlacementPolicy::CarbonAware,
    );
}

/// A deployment small enough that every epoch decision goes through the
/// exact MILP path (apps × servers ≤ the placer's exact-size limit) but
/// utilized enough that forecast error can flip placements.
fn exact_path_config(area: ZoneArea, seed: u64, epoch: EpochSchedule) -> CdnConfig {
    let mut config = CdnConfig::new(area).with_site_limit(3).with_epoch(epoch);
    config.servers_per_site = 1;
    config.apps_per_site = 2;
    config.request_rate_rps = 25.0;
    config.seed = seed;
    config
}

fn realized_carbon(config: CdnConfig, forecaster: ForecasterKind) -> Vec<f64> {
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
    let result = CdnSimulator::new(config.with_forecaster(forecaster)).run_with(&placer);
    assert_eq!(
        result.exact_decisions,
        result.epochs.len(),
        "every epoch must take the exact path"
    );
    result.epochs.iter().map(|e| e.carbon_g).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With exact epoch decisions, the oracle minimizes realized carbon per
    /// epoch, so no real forecaster can beat it — epoch by epoch, on either
    /// continent, at monthly and weekly cadence.
    #[test]
    fn oracle_realized_carbon_never_exceeds_any_forecaster(seed in 0u64..500) {
        let area = if seed % 2 == 0 { ZoneArea::Europe } else { ZoneArea::UnitedStates };
        let epoch = if seed % 4 < 2 { EpochSchedule::Monthly } else { EpochSchedule::Weekly };
        let config = exact_path_config(area, seed, epoch);
        let oracle = realized_carbon(config.clone(), ForecasterKind::Oracle);
        for forecaster in [ForecasterKind::Persistence, ForecasterKind::moving_average_24h()] {
            let other = realized_carbon(config.clone(), forecaster);
            prop_assert_eq!(oracle.len(), other.len());
            for (k, (o, p)) in oracle.iter().zip(other.iter()).enumerate() {
                prop_assert!(
                    *o <= p * (1.0 + 1e-9) + 1e-9,
                    "epoch {}: oracle {} beat by {:?} {} (seed {})",
                    k, o, forecaster, p, seed
                );
            }
        }
    }
}

#[test]
fn forecast_regret_is_visible_and_correctly_signed_on_the_quick_grid() {
    // The acceptance check behind `experiments --forecast --quick`: on the
    // saturated quick grid the oracle realizes no more carbon than
    // persistence for every (policy, epoch) pair, and persistence pays a
    // strictly positive regret somewhere (forecast error has a real cost).
    let report = carbonedge_bench::summary::run_forecast(true, 2);
    let rows = report.forecast_regret_rows();
    assert!(!rows.is_empty());
    let mut persistence_regret = 0.0f64;
    for row in &rows {
        if row.forecaster == "oracle" {
            assert_eq!(row.mean_regret_percent, 0.0);
        }
        if row.forecaster == "persistence" {
            assert!(
                row.mean_carbon_g >= row.mean_oracle_carbon_g - 1e-9,
                "{}/{}: persistence {} under oracle {}",
                row.policy,
                row.epoch,
                row.mean_carbon_g,
                row.mean_oracle_carbon_g
            );
            persistence_regret = persistence_regret.max(row.mean_regret_percent);
        }
    }
    assert!(
        persistence_regret > 0.0,
        "the saturated quick grid must show persistence paying real regret"
    );
}
