//! The prep-cache differential: sweep reports produced through the shared
//! [`CdnShared`] scenario preparation and the executor's group warm starts
//! must be **bit-identical** to the cold oracle — a fresh standalone
//! simulator and a fresh placer per cell, re-deriving every epoch's inputs
//! from scratch — for any job count.
//!
//! This is the contract that keeps the delta-evaluation machinery honest:
//! every cached value (epoch intensity means, the pair-latency matrix, a
//! neighbor cell's warm-start basis) must be produced by the same float
//! expressions the cold path evaluates, so caching is purely a performance
//! change, never a numerical one.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_grid::{EpochSchedule, ForecasterKind};
use carbonedge_sim::cdn::{CdnShared, CdnSimulator};
use carbonedge_sim::ServingMode;
use carbonedge_sweep::executor::SweepExecutor;
use carbonedge_sweep::report::SweepReport;
use carbonedge_sweep::spec::SweepSpec;

/// Runs every cell of `spec` on the cold path: a fresh shared environment's
/// standalone (prep-free) simulator and a basis-free placer per cell, so no
/// state of any kind crosses cell boundaries.
fn cold_oracle(spec: &SweepSpec, template: &IncrementalPlacer) -> Vec<carbonedge_sim::CdnResult> {
    let shared = CdnShared::new();
    spec.cells()
        .iter()
        .map(|cell| {
            let simulator = shared.cold_simulator(cell.config());
            let mut placer = template.clone();
            placer.policy = cell.policy;
            placer.milp_solver.discard_warm_start();
            simulator.run_with(&placer)
        })
        .collect()
}

/// Asserts the executor's report matches the cold oracle bit for bit on
/// every field a report aggregates.
fn assert_matches_oracle(report: &SweepReport, oracle: &[carbonedge_sim::CdnResult]) {
    assert_eq!(report.cells.len(), oracle.len());
    for (cell, cold) in report.cells.iter().zip(oracle) {
        let label = cell.cell.label();
        assert_eq!(cell.outcome, cold.outcome, "outcome diverged in {label}");
        assert_eq!(
            cell.decision_carbon_g, cold.decision_carbon_g,
            "decision carbon diverged in {label}"
        );
        let cold_monthly: Vec<f64> = cold.monthly.iter().map(|m| m.carbon_g).collect();
        assert_eq!(
            cell.monthly_carbon_g, cold_monthly,
            "monthly carbon diverged in {label}"
        );
        assert_eq!(cell.moves, cold.moves, "moves diverged in {label}");
        assert_eq!(
            cell.migration_carbon_g, cold.migration_carbon_g,
            "migration carbon diverged in {label}"
        );
        assert_eq!(cell.serving, cold.serving, "serving diverged in {label}");
        let cold_mean = if cold.assigned_intensity.is_empty() {
            0.0
        } else {
            cold.assigned_intensity.iter().sum::<f64>() / cold.assigned_intensity.len() as f64
        };
        assert_eq!(
            cell.mean_assigned_intensity, cold_mean,
            "assigned intensity diverged in {label}"
        );
    }
}

/// A small multi-axis grid: two latency limits × two forecasters × two
/// policies, so scenario groups (cells sharing everything but policy) are
/// non-trivial and the prep cache is exercised across forecaster variants.
fn heuristic_spec() -> SweepSpec {
    SweepSpec::new("delta-heuristic")
        .with_areas(vec![ZoneArea::Europe])
        .with_latency_limits(vec![10.0, 20.0])
        .with_forecasters(vec![
            ForecasterKind::Oracle,
            ForecasterKind::MovingAverage { window_hours: 24 },
        ])
        .with_policies(vec![
            PlacementPolicy::LatencyAware,
            PlacementPolicy::CarbonAware,
        ])
        .with_site_limit(Some(8))
}

#[test]
fn prepped_sweep_matches_cold_oracle_for_any_job_count() {
    let spec = heuristic_spec();
    let template = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
    let oracle = cold_oracle(&spec, &template);

    for jobs in [1usize, 4] {
        let report = SweepExecutor::new()
            .with_jobs(jobs)
            .with_placer_template(template.clone())
            .run(&spec)
            .unwrap();
        assert_matches_oracle(&report, &oracle);
    }
}

#[test]
fn exact_path_group_warm_starts_match_cold_oracle() {
    // A grid small enough for the exact MILP path, so each cell chains
    // warm-restarted epoch re-solves internally, and two policies per
    // scenario group.  This is the regression pin for the executor's
    // warm-start hygiene: carrying a basis across the policy change is a
    // cost-only restart, but a degenerate optimum lets the simplex settle
    // on a different equally-optimal vertex (same carbon, different
    // latency), so the executor must discard the basis at every cell
    // boundary to stay bit-identical with the cold oracle.
    let spec = SweepSpec::new("delta-exact")
        .with_areas(vec![ZoneArea::Europe])
        .with_latency_limits(vec![20.0])
        .with_epochs(vec![EpochSchedule::Monthly])
        .with_policies(vec![
            PlacementPolicy::LatencyAware,
            PlacementPolicy::CarbonAware,
        ])
        .with_site_limit(Some(3))
        .with_demand(1, 2);
    let template = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
    let oracle = cold_oracle(&spec, &template);
    assert!(
        oracle.iter().all(|r| r.exact_decisions > 0),
        "the exact spec must actually take the MILP path"
    );

    for jobs in [1usize, 3] {
        let report = SweepExecutor::new()
            .with_jobs(jobs)
            .with_placer_template(template.clone())
            .run(&spec)
            .unwrap();
        assert_matches_oracle(&report, &oracle);
    }
}

#[test]
fn online_serving_cells_match_cold_oracle() {
    // OnlineReplace exercises run_online, where only the epoch-invariant
    // parts of the prep (mean population, pair latencies) apply.
    let spec = SweepSpec::new("delta-online")
        .with_areas(vec![ZoneArea::Europe])
        .with_latency_limits(vec![20.0])
        .with_servings(vec![ServingMode::EventLevel, ServingMode::OnlineReplace])
        .with_policies(vec![
            PlacementPolicy::LatencyAware,
            PlacementPolicy::CarbonAware,
        ])
        .with_site_limit(Some(6))
        .with_seeds(vec![7])
        .with_base_seed(7)
        .with_epochs(vec![EpochSchedule::Monthly]);
    let template = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
    let oracle = cold_oracle(&spec, &template);
    let report = SweepExecutor::new()
        .with_jobs(2)
        .with_placer_template(template.clone())
        .run(&spec)
        .unwrap();
    assert_matches_oracle(&report, &oracle);
}

#[test]
fn shared_environment_caches_one_prep_per_scenario() {
    let shared = CdnShared::new();
    let spec = heuristic_spec();
    assert_eq!(shared.cached_prep_count(), 0);
    for cell in &spec.cells() {
        let _ = shared.simulator(cell.config());
    }
    // 4 scenarios (2 latency limits × 2 forecasters) — the policy axis
    // shares preps, so there are half as many preps as cells.
    assert_eq!(shared.cached_prep_count(), 4);
    // A cold simulator neither consumes nor populates the prep cache.
    let cold = shared.cold_simulator(spec.cells()[0].config());
    let _ = cold;
    assert_eq!(shared.cached_prep_count(), 4);
}

#[test]
fn standalone_simulator_is_the_cold_path() {
    // `CdnSimulator::new` must stay prep-free: it is the documented oracle
    // constructor, and its results are what every prepped run is held to.
    let config = spec_config();
    let standalone = CdnSimulator::new(config.clone());
    let shared = CdnShared::new();
    let prepped = shared.simulator(config);
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
    let a = standalone.run_with(&placer);
    let b = prepped.run_with(&placer);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.decision_carbon_g, b.decision_carbon_g);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.assigned_intensity, b.assigned_intensity);
}

fn spec_config() -> carbonedge_sim::CdnConfig {
    carbonedge_sim::CdnConfig::new(ZoneArea::Europe)
        .with_site_limit(10)
        .with_forecaster(ForecasterKind::MovingAverage { window_hours: 48 })
        .with_epoch(EpochSchedule::Weekly)
}
