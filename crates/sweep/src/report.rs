//! Aggregated results of a sweep: per-cell metrics, per-scenario savings
//! against the Latency-aware baseline, and marginal savings tables per axis.

use crate::spec::{area_name, ScenarioKey, SweepAxis, SweepCell, SweepSpec};
use carbonedge_grid::ForecasterKind;
use carbonedge_sim::metrics::{PolicyOutcome, Savings};
use carbonedge_sim::ServingMetrics;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The display name of the baseline policy savings are computed against.
pub const BASELINE_POLICY: &str = "Latency-aware";

/// The outcome of one sweep cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell coordinate.
    pub cell: SweepCell,
    /// Year-aggregated *realized* policy outcome.
    pub outcome: PolicyOutcome,
    /// Carbon the placer expected under its forecasts; the gap to
    /// `outcome.carbon_g` is the cell's aggregate forecast pricing error.
    pub decision_carbon_g: f64,
    /// Per-month carbon (12 entries), for seasonality views.
    pub monthly_carbon_g: Vec<f64>,
    /// Mean carbon intensity of the zones applications were assigned to.
    pub mean_assigned_intensity: f64,
    /// Number of edge sites simulated in this cell.
    pub site_count: usize,
    /// Applications moved between servers across epoch boundaries (the
    /// run's churn).
    pub moves: usize,
    /// Migration carbon charged for those moves, grams (included in
    /// `outcome.carbon_g`).
    pub migration_carbon_g: f64,
    /// Event-level serving metrics (tail latency, drops, utilization);
    /// `None` for aggregate-mode cells, which never materialize requests.
    pub serving: Option<ServingMetrics>,
}

/// One row of the per-scenario savings table: a non-baseline policy compared
/// with the Latency-aware run of the same scenario coordinate.
#[derive(Debug, Clone)]
pub struct SavingsRow {
    /// Index of the policy cell in the report's cell list.
    pub cell_index: usize,
    /// Scenario label (all coordinates except the policy).
    pub scenario: String,
    /// Policy display name.
    pub policy: String,
    /// The policy's year carbon, grams.
    pub carbon_g: f64,
    /// The baseline's year carbon, grams.
    pub baseline_carbon_g: f64,
    /// Savings versus the baseline.
    pub savings: Savings,
}

/// One row of the forecast-regret table: a (policy, forecaster, epoch)
/// triple compared with the **oracle** forecaster runs of the otherwise
/// identical scenario coordinates — the realized cost of forecast error.
#[derive(Debug, Clone)]
pub struct RegretRow {
    /// Policy display name.
    pub policy: String,
    /// Forecaster display label.
    pub forecaster: String,
    /// Epoch-schedule display name.
    pub epoch: String,
    /// Number of (cell, oracle-partner) comparisons averaged.
    pub comparisons: usize,
    /// Mean realized carbon of the triple's cells, grams.
    pub mean_carbon_g: f64,
    /// Mean realized carbon of the oracle partners, grams.
    pub mean_oracle_carbon_g: f64,
    /// Mean regret versus the oracle partner, percent (0 for oracle rows;
    /// positive means forecast error cost real carbon).
    pub mean_regret_percent: f64,
    /// Mean forecast pricing error, percent: how far the carbon the placer
    /// *expected* under its forecasts sat from the realized carbon.  Large
    /// pricing error with small regret means the placement was robust to
    /// the mis-forecast (the rankings survived); with capacity pressure the
    /// error starts flipping placements and becomes regret.
    pub mean_decision_error_percent: f64,
}

/// One row of the churn-vs-savings table: a (policy, epoch, migration
/// level) triple, averaged over every scenario coordinate that pairs with a
/// Latency-aware baseline — what re-placement cadence actually buys once
/// moving a service has a price.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Policy display name.
    pub policy: String,
    /// Epoch-schedule display name.
    pub epoch: String,
    /// Migration-cost level display label.
    pub migration: String,
    /// Number of (cell, baseline) comparisons averaged.
    pub comparisons: usize,
    /// Mean applications moved over the year (churn).
    pub mean_moves: f64,
    /// Mean migration carbon charged, grams.
    pub mean_migration_carbon_g: f64,
    /// Mean realized carbon (migration included), grams.
    pub mean_carbon_g: f64,
    /// Mean carbon savings versus the Latency-aware baseline, percent.
    pub mean_saving_percent: f64,
}

/// One row of the serving table: a (policy, serving mode) pair averaged
/// over every event-level cell — what carbon-aware placement costs in tail
/// latency and drops once requests are actually materialized and queued.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Policy display name.
    pub policy: String,
    /// Serving-mode display label.
    pub serving: String,
    /// Number of event-level cells averaged.
    pub cells: usize,
    /// Mean median request latency, ms.
    pub mean_p50_ms: f64,
    /// Mean 95th-percentile request latency, ms.
    pub mean_p95_ms: f64,
    /// Mean 99th-percentile request latency, ms.
    pub mean_p99_ms: f64,
    /// Mean dropped-request share, percent of arrivals.
    pub mean_drop_percent: f64,
    /// Mean fleet utilization (0..1).
    pub mean_utilization: f64,
    /// Mean drift-triggered online re-placements over the year.
    pub mean_replacements: f64,
    /// Mean realized carbon, grams.
    pub mean_carbon_g: f64,
    /// Mean carbon savings versus the Latency-aware baseline of the same
    /// scenario coordinate, percent (0 for baseline rows and for cells
    /// without a baseline partner).
    pub mean_saving_percent: f64,
}

/// One row of a marginal savings table: the mean effect of one axis value,
/// averaged over every other coordinate.
#[derive(Debug, Clone)]
pub struct MarginalRow {
    /// The axis value's display form.
    pub value: String,
    /// Policy display name.
    pub policy: String,
    /// Number of (scenario, policy) comparisons averaged.
    pub comparisons: usize,
    /// Mean carbon savings, percent.
    pub mean_saving_percent: f64,
    /// Mean latency increase, ms.
    pub mean_latency_increase_ms: f64,
}

/// The aggregated result of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The spec that produced this report.
    pub spec: SweepSpec,
    /// Per-cell results in the spec's canonical cell order.
    pub cells: Vec<CellResult>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock seconds of the run.  The executor never reads the clock —
    /// decision logic stays timing-independent — so this is `0.0` until a
    /// measuring caller (`bench::summary`) stamps it after the run.  It is
    /// not part of the deterministic rendering; only [`Self::footer`] shows
    /// it.
    pub wall_seconds: f64,
}

impl SweepReport {
    /// Assembles a report (used by the executor).  `wall_seconds` starts at
    /// zero; callers that time the run stamp it afterwards.
    pub fn new(spec: SweepSpec, cells: Vec<CellResult>, jobs: usize) -> Self {
        Self {
            spec,
            cells,
            jobs,
            wall_seconds: 0.0,
        }
    }

    /// Looks up the result of the first cell matching a scenario key and
    /// policy name.
    pub fn find(&self, key: &ScenarioKey, policy: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.cell.policy.name() == policy && &c.cell.scenario_key() == key)
    }

    /// Per-scenario savings of every non-baseline policy versus the
    /// Latency-aware cell of the same scenario coordinate, in cell order.
    /// Scenarios without a Latency-aware cell produce no rows.
    pub fn savings_rows(&self) -> Vec<SavingsRow> {
        let mut baseline_by_key: HashMap<ScenarioKey, &CellResult> = HashMap::new();
        for cell in &self.cells {
            if cell.cell.policy.name() == BASELINE_POLICY {
                baseline_by_key
                    .entry(cell.cell.scenario_key())
                    .or_insert(cell);
            }
        }
        let mut rows = Vec::new();
        for (index, cell) in self.cells.iter().enumerate() {
            if cell.cell.policy.name() == BASELINE_POLICY {
                continue;
            }
            let Some(baseline) = baseline_by_key.get(&cell.cell.scenario_key()) else {
                continue;
            };
            rows.push(SavingsRow {
                cell_index: index,
                scenario: cell.cell.label(),
                policy: cell.cell.policy.name(),
                carbon_g: cell.outcome.carbon_g,
                baseline_carbon_g: baseline.outcome.carbon_g,
                savings: Savings::versus(&cell.outcome, &baseline.outcome),
            });
        }
        rows
    }

    /// The display value of `axis` for a cell.  Grouping uses the lossless
    /// [`Self::axis_key`] instead, so a future display form that rounds can
    /// never merge distinct axis values.
    pub fn axis_value(cell: &SweepCell, axis: SweepAxis) -> String {
        match axis {
            SweepAxis::Policy => cell.policy.name(),
            SweepAxis::Area => area_name(cell.area).to_string(),
            SweepAxis::Scenario => cell.scenario.name().to_string(),
            SweepAxis::LatencyLimit => format!("{} ms", cell.latency_limit_ms),
            SweepAxis::SiteLimit => match cell.site_limit {
                Some(n) => format!("{n} sites"),
                None => "all sites".to_string(),
            },
            SweepAxis::Workload => cell.workload.name.clone(),
            SweepAxis::Seed => format!("seed {}", cell.seed),
            SweepAxis::Forecaster => cell.forecaster.label(),
            SweepAxis::Epoch => cell.epoch.name().to_string(),
            SweepAxis::Migration => cell.migration.label().to_string(),
            SweepAxis::Serving => cell.serving.label().to_string(),
        }
    }

    /// A lossless grouping key for `axis` on a cell: distinct axis values
    /// always map to distinct keys regardless of how their display forms are
    /// formatted (latency limits key on raw bits, workloads on their full
    /// identity rather than the display name).
    pub fn axis_key(cell: &SweepCell, axis: SweepAxis) -> String {
        match axis {
            SweepAxis::LatencyLimit => format!("{:016x}", cell.latency_limit_ms.to_bits()),
            SweepAxis::Workload => format!("{:?}", cell.workload.key()),
            _ => Self::axis_value(cell, axis),
        }
    }

    /// Whether an axis has more than one value in this sweep.
    pub fn axis_is_widened(&self, axis: SweepAxis) -> bool {
        let len = match axis {
            SweepAxis::Policy => self.spec.policies.len(),
            SweepAxis::Area => self.spec.areas.len(),
            SweepAxis::Scenario => self.spec.scenarios.len(),
            SweepAxis::LatencyLimit => self.spec.latency_limits_ms.len(),
            SweepAxis::SiteLimit => self.spec.site_limits.len(),
            SweepAxis::Workload => self.spec.workloads.len(),
            SweepAxis::Seed => self.spec.seeds.len(),
            SweepAxis::Forecaster => self.spec.forecasters.len(),
            SweepAxis::Epoch => self.spec.epochs.len(),
            SweepAxis::Migration => self.spec.migrations.len(),
            SweepAxis::Serving => self.spec.servings.len(),
        };
        len > 1
    }

    /// Marginal savings per value of one axis: for each (axis value, policy)
    /// pair, the mean savings over every comparison sharing that value.
    /// Rows appear in first-occurrence (spec enumeration) order.
    pub fn marginal_rows(&self, axis: SweepAxis) -> Vec<MarginalRow> {
        self.marginal_rows_from(&self.savings_rows(), axis)
    }

    /// Marginal aggregation over precomputed savings rows, so callers that
    /// need several axes (like [`Self::render`]) pair baselines only once.
    fn marginal_rows_from(&self, rows: &[SavingsRow], axis: SweepAxis) -> Vec<MarginalRow> {
        let mut order: Vec<(String, String)> = Vec::new();
        let mut display: HashMap<(String, String), String> = HashMap::new();
        let mut sums: HashMap<(String, String), (usize, f64, f64)> = HashMap::new();
        for row in rows {
            let cell = &self.cells[row.cell_index].cell;
            let key = (Self::axis_key(cell, axis), row.policy.clone());
            let entry = sums.entry(key.clone()).or_insert_with(|| {
                display.insert(key.clone(), Self::axis_value(cell, axis));
                order.push(key);
                (0, 0.0, 0.0)
            });
            entry.0 += 1;
            entry.1 += row.savings.carbon_percent;
            entry.2 += row.savings.latency_increase_ms;
        }
        order
            .into_iter()
            .map(|key| {
                let (n, saving, latency) = sums[&key];
                MarginalRow {
                    value: display[&key].clone(),
                    policy: key.1,
                    comparisons: n,
                    mean_saving_percent: saving / n as f64,
                    mean_latency_increase_ms: latency / n as f64,
                }
            })
            .collect()
    }

    /// Forecast-regret aggregation: every cell paired with the **oracle**
    /// cell of the same policy and scenario coordinate, grouped by (policy,
    /// forecaster, epoch) in first-occurrence order.  Cells whose oracle
    /// partner is absent from the sweep produce no rows; a sweep without an
    /// oracle forecaster therefore yields an empty table.
    pub fn forecast_regret_rows(&self) -> Vec<RegretRow> {
        let mut oracle_by_key: HashMap<(ScenarioKey, String), f64> = HashMap::new();
        for cell in &self.cells {
            if cell.cell.forecaster == ForecasterKind::Oracle {
                oracle_by_key
                    .entry((cell.cell.scenario_key(), cell.cell.policy.name()))
                    .or_insert(cell.outcome.carbon_g);
            }
        }
        type Triple = (String, String, String);
        let mut order: Vec<Triple> = Vec::new();
        let mut sums: HashMap<Triple, (usize, f64, f64, f64, f64)> = HashMap::new();
        for cell in &self.cells {
            let mut oracle_key = cell.cell.scenario_key();
            oracle_key.forecaster = ForecasterKind::Oracle;
            let Some(oracle_carbon) = oracle_by_key.get(&(oracle_key, cell.cell.policy.name()))
            else {
                continue;
            };
            let key = (
                cell.cell.policy.name(),
                cell.cell.forecaster.label(),
                cell.cell.epoch.name().to_string(),
            );
            let entry = sums.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (0, 0.0, 0.0, 0.0, 0.0)
            });
            entry.0 += 1;
            entry.1 += cell.outcome.carbon_g;
            entry.2 += oracle_carbon;
            entry.3 += if *oracle_carbon > 0.0 {
                (cell.outcome.carbon_g / oracle_carbon - 1.0) * 100.0
            } else {
                0.0
            };
            entry.4 += if cell.outcome.carbon_g > 0.0 {
                (cell.decision_carbon_g / cell.outcome.carbon_g - 1.0) * 100.0
            } else {
                0.0
            };
        }
        order
            .into_iter()
            .map(|key| {
                let (n, carbon, oracle, regret, decision_error) = sums[&key];
                RegretRow {
                    policy: key.0,
                    forecaster: key.1,
                    epoch: key.2,
                    comparisons: n,
                    mean_carbon_g: carbon / n as f64,
                    mean_oracle_carbon_g: oracle / n as f64,
                    mean_regret_percent: regret / n as f64,
                    mean_decision_error_percent: decision_error / n as f64,
                }
            })
            .collect()
    }

    /// Churn-vs-savings aggregation: every non-baseline cell paired with
    /// the Latency-aware cell of the same scenario coordinate (exactly like
    /// [`Self::savings_rows`]), grouped by (policy, epoch, migration level)
    /// in first-occurrence order.  Reading down a fixed (policy, epoch)
    /// block shows savings shrinking as the migration cost rises; reading
    /// down a fixed migration level shows what finer re-placement cadence
    /// buys net of churn.
    pub fn migration_churn_rows(&self) -> Vec<ChurnRow> {
        type Triple = (String, String, String);
        let mut order: Vec<Triple> = Vec::new();
        let mut sums: HashMap<Triple, (usize, f64, f64, f64, f64)> = HashMap::new();
        for row in self.savings_rows() {
            let cell = &self.cells[row.cell_index];
            let key = (
                row.policy.clone(),
                cell.cell.epoch.name().to_string(),
                cell.cell.migration.label().to_string(),
            );
            let entry = sums.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (0, 0.0, 0.0, 0.0, 0.0)
            });
            entry.0 += 1;
            entry.1 += cell.moves as f64;
            entry.2 += cell.migration_carbon_g;
            entry.3 += cell.outcome.carbon_g;
            entry.4 += row.savings.carbon_percent;
        }
        order
            .into_iter()
            .map(|key| {
                let (n, moves, migration, carbon, saving) = sums[&key];
                ChurnRow {
                    policy: key.0,
                    epoch: key.1,
                    migration: key.2,
                    comparisons: n,
                    mean_moves: moves / n as f64,
                    mean_migration_carbon_g: migration / n as f64,
                    mean_carbon_g: carbon / n as f64,
                    mean_saving_percent: saving / n as f64,
                }
            })
            .collect()
    }

    /// Renders the churn-vs-savings table (moves, migration carbon and
    /// realized savings per policy × epoch × migration level).  Savings are
    /// printed with three decimals — re-placement gains are fractions of a
    /// percent on top of the mesoscale headline, and the point of the table
    /// is how the migration cost eats them.  Deterministic like
    /// [`Self::render`], so it is golden-testable.
    pub fn render_migration(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "migration churn `{}`: re-placement savings vs migration cost",
            self.spec.name,
        );
        let rows = self.migration_churn_rows();
        if rows.is_empty() {
            let _ = writeln!(
                out,
                "\n(no churn rows: the policy axis needs `{BASELINE_POLICY}` plus at \
                 least one other policy to pair against it)"
            );
            return out;
        }
        let _ = writeln!(
            out,
            "\n{:<18} {:<10} {:<11} {:>8} {:>10} {:>14} {:>12} {:>10}",
            "policy",
            "epoch",
            "migration",
            "cells",
            "moves",
            "migration kg",
            "realized kg",
            "saving %"
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<18} {:<10} {:<11} {:>8} {:>10.1} {:>14.3} {:>12.2} {:>10.3}",
                row.policy,
                row.epoch,
                row.migration,
                row.comparisons,
                row.mean_moves,
                row.mean_migration_carbon_g / 1000.0,
                row.mean_carbon_g / 1000.0,
                row.mean_saving_percent,
            );
        }
        out
    }

    /// Serving aggregation: every cell that materialized requests (serving
    /// mode `events` or `events-online`), grouped by (policy, serving mode)
    /// in first-occurrence order.  Reading across a policy's rows shows what
    /// the online drift trigger buys over fixed epoch boundaries; reading
    /// down a serving mode shows the tail-latency and drop price of
    /// carbon-aware placement next to its carbon savings.
    pub fn serving_rows(&self) -> Vec<ServingRow> {
        let mut baseline_by_key: HashMap<ScenarioKey, f64> = HashMap::new();
        for cell in &self.cells {
            if cell.cell.policy.name() == BASELINE_POLICY {
                baseline_by_key
                    .entry(cell.cell.scenario_key())
                    .or_insert(cell.outcome.carbon_g);
            }
        }
        type Pair = (String, String);
        type Sums = (usize, [f64; 6], f64, (usize, f64));
        let mut order: Vec<Pair> = Vec::new();
        let mut sums: HashMap<Pair, Sums> = HashMap::new();
        for cell in &self.cells {
            let Some(metrics) = &cell.serving else {
                continue;
            };
            let key = (
                cell.cell.policy.name(),
                cell.cell.serving.label().to_string(),
            );
            let entry = sums.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (0, [0.0; 6], 0.0, (0, 0.0))
            });
            entry.0 += 1;
            entry.1[0] += metrics.p50_ms;
            entry.1[1] += metrics.p95_ms;
            entry.1[2] += metrics.p99_ms;
            entry.1[3] += metrics.drop_percent();
            entry.1[4] += metrics.mean_utilization;
            entry.1[5] += metrics.online_replacements as f64;
            entry.2 += cell.outcome.carbon_g;
            if cell.cell.policy.name() != BASELINE_POLICY {
                if let Some(baseline) = baseline_by_key.get(&cell.cell.scenario_key()) {
                    if *baseline > 0.0 {
                        entry.3 .0 += 1;
                        entry.3 .1 += (1.0 - cell.outcome.carbon_g / baseline) * 100.0;
                    }
                }
            }
        }
        order
            .into_iter()
            .map(|key| {
                let (n, metrics, carbon, (pairs, saving)) = sums[&key];
                ServingRow {
                    policy: key.0,
                    serving: key.1,
                    cells: n,
                    mean_p50_ms: metrics[0] / n as f64,
                    mean_p95_ms: metrics[1] / n as f64,
                    mean_p99_ms: metrics[2] / n as f64,
                    mean_drop_percent: metrics[3] / n as f64,
                    mean_utilization: metrics[4] / n as f64,
                    mean_replacements: metrics[5] / n as f64,
                    mean_carbon_g: carbon / n as f64,
                    mean_saving_percent: if pairs > 0 {
                        saving / pairs as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// Renders the serving table (tail latency, drop rate and utilization
    /// next to carbon savings per policy × serving mode).  Deterministic
    /// like [`Self::render`], so it is golden-testable.
    pub fn render_serving(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serving `{}`: tail latency and drops vs carbon savings",
            self.spec.name,
        );
        let rows = self.serving_rows();
        if rows.is_empty() {
            let _ = writeln!(
                out,
                "\n(no serving rows: add `events` or `events-online` to the serving \
                 axis so cells materialize request streams)"
            );
            return out;
        }
        let _ = writeln!(
            out,
            "\n{:<18} {:<14} {:>7} {:>9} {:>9} {:>9} {:>8} {:>7} {:>8} {:>9}",
            "policy",
            "serving",
            "cells",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "drop %",
            "util %",
            "replans",
            "saving %"
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<18} {:<14} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>8.3} {:>7.1} {:>8.1} {:>9.3}",
                row.policy,
                row.serving,
                row.cells,
                row.mean_p50_ms,
                row.mean_p95_ms,
                row.mean_p99_ms,
                row.mean_drop_percent,
                row.mean_utilization * 100.0,
                row.mean_replacements,
                row.mean_saving_percent,
            );
        }
        out
    }

    /// Renders the forecast-regret table (realized carbon versus the oracle
    /// replay per policy × forecaster × epoch).  Deterministic like
    /// [`Self::render`], so it is golden-testable.
    pub fn render_forecast_regret(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "forecast regret `{}`: realized carbon vs oracle replay",
            self.spec.name,
        );
        let rows = self.forecast_regret_rows();
        if rows.is_empty() {
            let _ = writeln!(
                out,
                "\n(no regret rows: add the oracle forecaster to the forecaster axis \
                 so each cell has a zero-error partner)"
            );
            return out;
        }
        let _ = writeln!(
            out,
            "\n{:<18} {:<14} {:<10} {:>8} {:>14} {:>12} {:>10} {:>12}",
            "policy",
            "forecaster",
            "epoch",
            "cells",
            "realized kg",
            "oracle kg",
            "regret %",
            "fcst err %"
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<18} {:<14} {:<10} {:>8} {:>14.2} {:>12.2} {:>10.2} {:>12.2}",
                row.policy,
                row.forecaster,
                row.epoch,
                row.comparisons,
                row.mean_carbon_g / 1000.0,
                row.mean_oracle_carbon_g / 1000.0,
                row.mean_regret_percent,
                row.mean_decision_error_percent,
            );
        }
        out
    }

    /// One-line run summary for binaries to print on stderr.  Unlike
    /// [`Self::render`] this includes wall-clock time, so it is *not* part
    /// of the deterministic output.
    pub fn footer(&self) -> String {
        format!(
            "[{} cells on {} worker(s) in {:.1} s]",
            self.cells.len(),
            self.jobs,
            self.wall_seconds
        )
    }

    /// Renders the report as aligned text tables.  The output depends only
    /// on the spec and the simulated outcomes — never on timing, worker
    /// count or scheduling — so it is stable across runs and suitable for
    /// golden-output comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep `{}`: {} cells over {} widened axes (baseline: {})",
            self.spec.name,
            self.cells.len(),
            self.spec.axis_count(),
            BASELINE_POLICY,
        );
        let savings_rows = self.savings_rows();
        if savings_rows.is_empty() {
            let _ = writeln!(
                out,
                "\n(no savings rows: the policy axis needs `{BASELINE_POLICY}` plus at \
                 least one other policy to pair against it)"
            );
            return out;
        }
        let _ = writeln!(out, "\nper-scenario savings:");
        let _ = writeln!(
            out,
            "{:<60} {:<18} {:>12} {:>12} {:>10} {:>12} {:>16}",
            "scenario",
            "policy",
            "carbon kg",
            "baseline kg",
            "saving %",
            "latency +ms",
            "assigned g/kWh"
        );
        for row in &savings_rows {
            let assigned = self.cells[row.cell_index].mean_assigned_intensity;
            let _ = writeln!(
                out,
                "{:<60} {:<18} {:>12.2} {:>12.2} {:>10.1} {:>12.1} {:>16.1}",
                row.scenario,
                row.policy,
                row.carbon_g / 1000.0,
                row.baseline_carbon_g / 1000.0,
                row.savings.carbon_percent,
                row.savings.latency_increase_ms,
                assigned,
            );
        }
        for axis in SweepAxis::ALL {
            if axis == SweepAxis::Policy || !self.axis_is_widened(axis) {
                continue;
            }
            let _ = writeln!(out, "\nmarginal savings by {}:", axis.name());
            let _ = writeln!(
                out,
                "{:<18} {:<18} {:>8} {:>16} {:>20}",
                "value", "policy", "cells", "mean saving %", "mean latency +ms"
            );
            for row in self.marginal_rows_from(&savings_rows, axis) {
                let _ = writeln!(
                    out,
                    "{:<18} {:<18} {:>8} {:>16.1} {:>20.1}",
                    row.value,
                    row.policy,
                    row.comparisons,
                    row.mean_saving_percent,
                    row.mean_latency_increase_ms,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SweepExecutor;
    use crate::spec::SweepSpec;
    use carbonedge_datasets::zones::ZoneArea;
    use carbonedge_sim::cdn::CdnScenario;

    fn small_report() -> SweepReport {
        let spec = SweepSpec::new("report-test")
            .with_areas(vec![ZoneArea::Europe])
            .with_scenarios(vec![
                CdnScenario::Homogeneous,
                CdnScenario::PopulationDemand,
            ])
            .with_latency_limits(vec![10.0, 20.0])
            .with_site_limit(Some(12));
        SweepExecutor::new().with_jobs(2).run(&spec).unwrap()
    }

    #[test]
    fn savings_rows_pair_each_policy_with_its_baseline() {
        let report = small_report();
        let rows = report.savings_rows();
        // 2 scenarios x 2 latency limits, one non-baseline policy each.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.policy, "CarbonEdge");
            assert!(row.baseline_carbon_g > 0.0);
            assert!(
                row.carbon_g <= row.baseline_carbon_g + 1e-6,
                "CarbonEdge should not emit more than the baseline"
            );
            assert!(row.savings.carbon_percent >= 0.0);
        }
    }

    #[test]
    fn looser_latency_limits_save_more_in_the_marginals() {
        let report = small_report();
        let marginals = report.marginal_rows(SweepAxis::LatencyLimit);
        assert_eq!(marginals.len(), 2);
        let tight = marginals.iter().find(|m| m.value == "10 ms").unwrap();
        let loose = marginals.iter().find(|m| m.value == "20 ms").unwrap();
        assert_eq!(tight.comparisons, 2);
        assert!(
            loose.mean_saving_percent > tight.mean_saving_percent,
            "loose {} vs tight {}",
            loose.mean_saving_percent,
            tight.mean_saving_percent
        );
    }

    #[test]
    fn missing_baseline_renders_an_explicit_note_instead_of_empty_tables() {
        use carbonedge_core::PlacementPolicy;
        let spec = SweepSpec::new("no-baseline")
            .with_areas(vec![ZoneArea::Europe])
            .with_site_limit(Some(8))
            .with_policies(vec![
                PlacementPolicy::CarbonAware,
                PlacementPolicy::IntensityAware,
            ]);
        let report = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
        assert!(report.savings_rows().is_empty());
        let text = report.render();
        assert!(text.contains("no savings rows"), "got:\n{text}");
        assert!(text.contains(super::BASELINE_POLICY));
    }

    #[test]
    fn distinct_latency_limits_never_share_a_label() {
        let spec = SweepSpec::new("close-limits")
            .with_areas(vec![ZoneArea::Europe])
            .with_latency_limits(vec![10.0, 10.4])
            .with_site_limit(Some(8));
        let report = SweepExecutor::new().with_jobs(2).run(&spec).unwrap();
        // Labels exclude the policy axis, so the four cells (2 limits x 2
        // policies) must produce exactly one label per latency limit.
        let labels: std::collections::BTreeSet<String> =
            report.cells.iter().map(|c| c.cell.label()).collect();
        assert_eq!(labels.len(), 2, "labels collapsed or split: {labels:?}");
        assert!(labels.iter().any(|l| l.contains("/10ms/")));
        assert!(labels.iter().any(|l| l.contains("/10.4ms/")));
        let marginals = report.marginal_rows(SweepAxis::LatencyLimit);
        assert_eq!(marginals.len(), 2);
        assert!(marginals.iter().any(|m| m.value == "10 ms"));
        assert!(marginals.iter().any(|m| m.value == "10.4 ms"));
    }

    #[test]
    fn forecast_regret_pairs_every_cell_with_its_oracle_partner() {
        use carbonedge_grid::EpochSchedule;
        let spec = SweepSpec::new("regret-test")
            .with_areas(vec![ZoneArea::Europe])
            .with_site_limit(Some(10))
            .with_forecasters(vec![ForecasterKind::Oracle, ForecasterKind::Persistence])
            .with_epochs(vec![EpochSchedule::Monthly]);
        let report = SweepExecutor::new().with_jobs(2).run(&spec).unwrap();
        let rows = report.forecast_regret_rows();
        // 2 policies x 2 forecasters x 1 epoch.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.comparisons, 1);
            if row.forecaster == "oracle" {
                assert_eq!(row.mean_regret_percent, 0.0, "{}", row.policy);
                assert_eq!(row.mean_carbon_g, row.mean_oracle_carbon_g);
            }
        }
        // The latency-aware baseline ignores carbon, so its placements (and
        // realized carbon) are forecast-independent: zero regret everywhere.
        let baseline_rows: Vec<_> = rows
            .iter()
            .filter(|r| r.policy == BASELINE_POLICY)
            .collect();
        assert_eq!(baseline_rows.len(), 2);
        for row in baseline_rows {
            assert!(
                row.mean_regret_percent.abs() < 1e-9,
                "baseline regret {}",
                row.mean_regret_percent
            );
        }
        let text = report.render_forecast_regret();
        assert_eq!(text, report.render_forecast_regret());
        assert!(text.contains("persistence") && text.contains("oracle"));
        assert!(text.contains("regret %"));
    }

    #[test]
    fn churn_table_groups_by_policy_epoch_and_migration() {
        use carbonedge_core::MigrationCostLevel;
        use carbonedge_grid::EpochSchedule;
        let spec = SweepSpec::new("churn-test")
            .with_areas(vec![ZoneArea::Europe])
            .with_latency_limits(vec![30.0])
            .with_site_limit(Some(40))
            .with_epochs(vec![EpochSchedule::Monthly, EpochSchedule::Weekly])
            .with_migrations(vec![MigrationCostLevel::Free, MigrationCostLevel::Paper]);
        let report = SweepExecutor::new().with_jobs(2).run(&spec).unwrap();
        let rows = report.migration_churn_rows();
        // 1 non-baseline policy x 2 epochs x 2 migration levels.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.policy, "CarbonEdge");
            assert_eq!(row.comparisons, 1);
            assert!(row.mean_carbon_g > 0.0);
            if row.migration == "mig-free" {
                assert_eq!(row.mean_migration_carbon_g, 0.0);
            }
        }
        // Paper migration suppresses churn relative to free at the same
        // epoch cadence.
        for epoch in ["monthly", "weekly"] {
            let free = rows
                .iter()
                .find(|r| r.epoch == epoch && r.migration == "mig-free")
                .unwrap();
            let paper = rows
                .iter()
                .find(|r| r.epoch == epoch && r.migration == "mig-paper")
                .unwrap();
            assert!(
                paper.mean_moves <= free.mean_moves,
                "{epoch}: paper churn {} vs free {}",
                paper.mean_moves,
                free.mean_moves
            );
        }
        let text = report.render_migration();
        assert_eq!(text, report.render_migration());
        assert!(text.contains("mig-free") && text.contains("mig-paper"));
        assert!(text.contains("saving %"));
    }

    #[test]
    fn serving_table_groups_by_policy_and_mode() {
        use carbonedge_sim::ServingMode;
        let spec = SweepSpec::new("serving-test")
            .with_areas(vec![ZoneArea::Europe])
            .with_latency_limits(vec![30.0])
            .with_site_limit(Some(20))
            .with_demand(4, 1)
            .with_servings(vec![ServingMode::Aggregate, ServingMode::EventLevel]);
        let report = SweepExecutor::new().with_jobs(2).run(&spec).unwrap();
        let rows = report.serving_rows();
        // Aggregate cells carry no serving metrics, so only the EventLevel
        // mode produces rows: 2 policies x 1 event-level mode.
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.serving, "events");
            assert_eq!(row.cells, 1);
            assert!(row.mean_p50_ms > 0.0);
            assert!(row.mean_p99_ms >= row.mean_p50_ms);
            assert!(row.mean_utilization > 0.0);
            assert_eq!(row.mean_replacements, 0.0);
        }
        let baseline = rows.iter().find(|r| r.policy == BASELINE_POLICY).unwrap();
        let carbon = rows.iter().find(|r| r.policy == "CarbonEdge").unwrap();
        assert_eq!(baseline.mean_saving_percent, 0.0);
        assert!(carbon.mean_saving_percent > 0.0);
        let text = report.render_serving();
        assert_eq!(text, report.render_serving());
        assert!(text.contains("events") && text.contains("saving %"));
    }

    #[test]
    fn serving_table_without_event_cells_renders_an_explicit_note() {
        let spec = SweepSpec::new("agg-only")
            .with_areas(vec![ZoneArea::Europe])
            .with_site_limit(Some(8));
        let report = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
        assert!(report.serving_rows().is_empty());
        assert!(report.render_serving().contains("no serving rows"));
    }

    #[test]
    fn churn_table_without_baseline_renders_an_explicit_note() {
        use carbonedge_core::PlacementPolicy;
        let spec = SweepSpec::new("no-baseline")
            .with_areas(vec![ZoneArea::Europe])
            .with_site_limit(Some(8))
            .with_policies(vec![PlacementPolicy::CarbonAware]);
        let report = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
        assert!(report.migration_churn_rows().is_empty());
        assert!(report.render_migration().contains("no churn rows"));
    }

    #[test]
    fn regret_table_without_oracle_renders_an_explicit_note() {
        let spec = SweepSpec::new("no-oracle")
            .with_areas(vec![ZoneArea::Europe])
            .with_site_limit(Some(8))
            .with_forecasters(vec![ForecasterKind::Persistence]);
        let report = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
        assert!(report.forecast_regret_rows().is_empty());
        assert!(report.render_forecast_regret().contains("no regret rows"));
    }

    #[test]
    fn find_locates_cells_by_scenario_and_policy() {
        let report = small_report();
        let key = report.cells[0].cell.scenario_key();
        let baseline = report.find(&key, BASELINE_POLICY).unwrap();
        let carbon = report.find(&key, "CarbonEdge").unwrap();
        assert_eq!(baseline.cell.scenario_key(), carbon.cell.scenario_key());
        assert!(report.find(&key, "No-such-policy").is_none());
    }

    #[test]
    fn render_is_stable_and_mentions_every_scenario() {
        let report = small_report();
        let text = report.render();
        assert_eq!(text, report.render());
        assert!(text.contains("per-scenario savings"));
        assert!(text.contains("marginal savings by scenario"));
        assert!(text.contains("marginal savings by latency limit"));
        // Non-widened axes get no marginal table.
        assert!(!text.contains("marginal savings by area"));
        for cell in &report.cells {
            if cell.cell.policy.name() != BASELINE_POLICY {
                assert!(
                    text.contains(&cell.cell.label()),
                    "missing {}",
                    cell.cell.label()
                );
            }
        }
    }
}
