//! Declarative description of a scenario sweep: the axes, their values, and
//! the enumeration of the resulting (policy × scenario × region × …) grid.

use carbonedge_core::{MigrationCostLevel, PlacementPolicy};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_grid::{EpochSchedule, ForecasterKind};
use carbonedge_sim::cdn::{CdnConfig, CdnScenario};
use carbonedge_sim::ServingMode;
use carbonedge_workload::{DeviceKind, ModelKind};

/// One workload point on the workload axis: the served model, the device the
/// CDN installs, and the per-application request rate.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Short display name used in reports (e.g. `resnet50@a2`).
    pub name: String,
    /// Model served by the arriving applications.
    pub model: ModelKind,
    /// Device installed in the CDN servers.
    pub device: DeviceKind,
    /// Per-application request rate (requests/second).
    pub request_rate_rps: f64,
}

/// The lossless identity of a workload point: every field that changes the
/// simulation, with the request rate as raw bits so it is hashable.  Used
/// for scenario pairing and marginal grouping instead of the display name,
/// which rounds the rate and could collide for distinct workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// Served model.
    pub model: ModelKind,
    /// Installed device.
    pub device: DeviceKind,
    /// Request rate as raw bits (exact float identity).
    pub rate_bits: u64,
}

impl WorkloadSpec {
    /// A named workload point.
    pub fn new(model: ModelKind, device: DeviceKind, request_rate_rps: f64) -> Self {
        Self {
            name: format!(
                "{}@{}r{:.0}",
                model.name().to_lowercase().replace(' ', ""),
                device.name().to_lowercase().replace(' ', ""),
                request_rate_rps
            ),
            model,
            device,
            request_rate_rps,
        }
    }

    /// The paper's default CDN workload: ResNet50 on NVIDIA A2 at 15 rps.
    pub fn resnet50_on_a2() -> Self {
        Self::new(ModelKind::ResNet50, DeviceKind::A2, 15.0)
    }

    /// A light workload: EfficientNetB0 on Jetson Orin Nano.
    pub fn efficientnet_on_orin() -> Self {
        Self::new(ModelKind::EfficientNetB0, DeviceKind::OrinNano, 15.0)
    }

    /// A heavy workload: YOLOv4 on GTX 1080.
    pub fn yolo_on_gtx1080() -> Self {
        Self::new(ModelKind::YoloV4, DeviceKind::Gtx1080, 10.0)
    }

    /// The workload's lossless identity.
    pub fn key(&self) -> WorkloadKey {
        WorkloadKey {
            model: self.model,
            device: self.device,
            rate_bits: self.request_rate_rps.to_bits(),
        }
    }
}

/// The axes of a sweep (used for marginal aggregation in reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepAxis {
    /// Placement policy.
    Policy,
    /// Continent / `ZoneArea`.
    Area,
    /// Demand/capacity scenario.
    Scenario,
    /// Round-trip latency limit.
    LatencyLimit,
    /// Edge-site count cap.
    SiteLimit,
    /// Workload point.
    Workload,
    /// Trace seed (replication axis).
    Seed,
    /// Forecaster serving the decision intensity.
    Forecaster,
    /// Re-placement epoch schedule.
    Epoch,
    /// Per-move migration-cost calibration.
    Migration,
    /// Serving engine mode (aggregate vs event-level vs online re-place).
    Serving,
}

impl SweepAxis {
    /// All axes in the canonical enumeration order.
    pub const ALL: [SweepAxis; 11] = [
        SweepAxis::Area,
        SweepAxis::Scenario,
        SweepAxis::LatencyLimit,
        SweepAxis::SiteLimit,
        SweepAxis::Workload,
        SweepAxis::Seed,
        SweepAxis::Forecaster,
        SweepAxis::Epoch,
        SweepAxis::Migration,
        SweepAxis::Serving,
        SweepAxis::Policy,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepAxis::Policy => "policy",
            SweepAxis::Area => "area",
            SweepAxis::Scenario => "scenario",
            SweepAxis::LatencyLimit => "latency limit",
            SweepAxis::SiteLimit => "site limit",
            SweepAxis::Workload => "workload",
            SweepAxis::Seed => "seed",
            SweepAxis::Forecaster => "forecaster",
            SweepAxis::Epoch => "epoch",
            SweepAxis::Migration => "migration cost",
            SweepAxis::Serving => "serving mode",
        }
    }
}

/// `splitmix64` — the standard 64-bit mixing function, used to derive
/// deterministic, well-separated per-cell seeds from the spec's base seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// One cell of the sweep grid: a fully resolved scenario coordinate.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the spec's canonical enumeration order.
    pub index: usize,
    /// Placement policy evaluated in this cell.
    pub policy: PlacementPolicy,
    /// Continent simulated.
    pub area: ZoneArea,
    /// Demand/capacity scenario.
    pub scenario: CdnScenario,
    /// Round-trip latency limit in ms.
    pub latency_limit_ms: f64,
    /// Cap on the number of edge sites (`None` = full catalog).
    pub site_limit: Option<usize>,
    /// Workload point.
    pub workload: WorkloadSpec,
    /// Trace seed (shared by every cell on the same seed-axis value, so the
    /// executor can cache generated traces).
    pub seed: u64,
    /// Forecaster serving the decision intensity at each epoch boundary.
    pub forecaster: ForecasterKind,
    /// Re-placement epoch schedule.
    pub epoch: EpochSchedule,
    /// Per-move migration-cost calibration.
    pub migration: MigrationCostLevel,
    /// Serving engine mode.
    pub serving: ServingMode,
    /// Applications per site per epoch (spec-wide deployment shape, not an
    /// axis — constant across cells, so it is excluded from `ScenarioKey`).
    pub apps_per_site: usize,
    /// Servers per site (spec-wide deployment shape, like `apps_per_site`).
    pub servers_per_site: usize,
    /// A unique per-cell seed derived deterministically from the spec's base
    /// seed and the cell coordinate — available for any per-cell randomness
    /// a backend needs without correlating cells.
    pub cell_seed: u64,
}

/// The scenario coordinate of a cell with the policy axis removed.  Cells
/// sharing a `ScenarioKey` differ only in policy, which is how reports pair
/// each policy's outcome with the Latency-aware baseline of the same
/// scenario.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    /// Continent.
    pub area: ZoneArea,
    /// Demand/capacity scenario.
    pub scenario: CdnScenario,
    /// Latency limit as raw bits (exact float identity, hashable).
    pub latency_bits: u64,
    /// Site cap.
    pub site_limit: Option<usize>,
    /// Workload identity.
    pub workload: WorkloadKey,
    /// Trace seed.
    pub seed: u64,
    /// Forecaster serving the decision intensity.
    pub forecaster: ForecasterKind,
    /// Re-placement epoch schedule.
    pub epoch: EpochSchedule,
    /// Per-move migration-cost calibration.
    pub migration: MigrationCostLevel,
    /// Serving engine mode.
    pub serving: ServingMode,
}

impl SweepCell {
    /// The CDN configuration this cell simulates.
    pub fn config(&self) -> CdnConfig {
        let mut config = CdnConfig::new(self.area)
            .with_latency_limit(self.latency_limit_ms)
            .with_scenario(self.scenario);
        if let Some(limit) = self.site_limit {
            config = config.with_site_limit(limit);
        }
        config.model = self.workload.model;
        config.device = self.workload.device;
        config.request_rate_rps = self.workload.request_rate_rps;
        config.seed = self.seed;
        config.forecaster = self.forecaster;
        config.epoch = self.epoch;
        config.migration = self.migration;
        config.serving = self.serving;
        config.apps_per_site = self.apps_per_site;
        config.servers_per_site = self.servers_per_site;
        config
    }

    /// The cell's scenario coordinate without the policy axis.
    pub fn scenario_key(&self) -> ScenarioKey {
        ScenarioKey {
            area: self.area,
            scenario: self.scenario,
            latency_bits: self.latency_limit_ms.to_bits(),
            site_limit: self.site_limit,
            workload: self.workload.key(),
            seed: self.seed,
            forecaster: self.forecaster,
            epoch: self.epoch,
            migration: self.migration,
            serving: self.serving,
        }
    }

    /// A compact human-readable label, used in report rows.  The latency
    /// limit uses `f64`'s shortest-roundtrip display, so distinct limits
    /// (e.g. 10.0 and 10.4) never collapse to the same label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}ms/{}/{}/s{}/{}/{}/{}/{}",
            area_name(self.area),
            self.scenario.name(),
            self.latency_limit_ms,
            match self.site_limit {
                Some(n) => format!("{n}sites"),
                None => "all-sites".to_string(),
            },
            self.workload.name,
            self.seed,
            self.forecaster.label(),
            self.epoch.name(),
            self.migration.label(),
            self.serving.label(),
        )
    }
}

/// Short display name for a `ZoneArea`.
pub fn area_name(area: ZoneArea) -> &'static str {
    match area {
        ZoneArea::UnitedStates => "US",
        ZoneArea::Europe => "EU",
        ZoneArea::RestOfWorld => "RoW",
    }
}

/// A declarative scenario matrix: the cartesian product of the configured
/// axis values, evaluated cell-by-cell by
/// [`SweepExecutor`](crate::SweepExecutor).
///
/// # Examples
///
/// Build a 3-axis grid (area × latency limit × policy) and enumerate it:
///
/// ```
/// use carbonedge_core::PlacementPolicy;
/// use carbonedge_datasets::zones::ZoneArea;
/// use carbonedge_sweep::SweepSpec;
///
/// let spec = SweepSpec::new("latency-tolerance")
///     .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
///     .with_latency_limits(vec![10.0, 20.0, 30.0])
///     .with_policies(vec![
///         PlacementPolicy::LatencyAware,
///         PlacementPolicy::CarbonAware,
///     ])
///     .with_site_limit(Some(40));
/// assert_eq!(spec.cell_count(), 2 * 3 * 2);
///
/// // Cells come out in a deterministic order with stable per-cell seeds.
/// let cells = spec.cells();
/// assert_eq!(cells.len(), 12);
/// assert_eq!(cells[0].index, 0);
/// assert_eq!(spec.cells()[5].cell_seed, cells[5].cell_seed);
/// ```
///
/// Adding a new axis value is purely declarative — no per-experiment loop to
/// rewrite:
///
/// ```
/// use carbonedge_sim::cdn::CdnScenario;
/// use carbonedge_sweep::SweepSpec;
///
/// let spec = SweepSpec::quick_default().with_scenarios(vec![
///     CdnScenario::Homogeneous,
///     CdnScenario::PopulationDemand,
///     CdnScenario::PopulationCapacity,
/// ]);
/// assert_eq!(spec.cell_count() % 3, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (reported in headers).
    pub name: String,
    /// Base seed mixed into every cell's `cell_seed`.
    pub base_seed: u64,
    /// Policy axis.
    pub policies: Vec<PlacementPolicy>,
    /// Continent axis.
    pub areas: Vec<ZoneArea>,
    /// Demand/capacity scenario axis.
    pub scenarios: Vec<CdnScenario>,
    /// Latency-limit axis (ms, round-trip).
    pub latency_limits_ms: Vec<f64>,
    /// Site-count axis (`None` = full catalog).
    pub site_limits: Vec<Option<usize>>,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Trace-seed axis (replications).
    pub seeds: Vec<u64>,
    /// Forecaster axis (decision-intensity source).
    pub forecasters: Vec<ForecasterKind>,
    /// Epoch-schedule axis (re-placement granularity).
    pub epochs: Vec<EpochSchedule>,
    /// Migration-cost axis (per-move churn penalty calibration).
    pub migrations: Vec<MigrationCostLevel>,
    /// Serving-mode axis (aggregate pricing vs event-level serving vs the
    /// online drift-triggered re-placement engine).
    pub servings: Vec<ServingMode>,
    /// Applications arriving per site per epoch — a scalar deployment shape
    /// shared by every cell, not an axis.  Together with
    /// `servers_per_site` it sets the utilization pressure of the grid;
    /// saturated deployments are where forecast error actually flips
    /// placements.
    pub apps_per_site: usize,
    /// Servers per edge site (scalar deployment shape, like
    /// `apps_per_site`).
    pub servers_per_site: usize,
}

impl SweepSpec {
    /// A single-cell spec with the paper's default CDN setup, ready to be
    /// widened axis by axis.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            base_seed: 42,
            policies: vec![PlacementPolicy::LatencyAware, PlacementPolicy::CarbonAware],
            areas: vec![ZoneArea::UnitedStates],
            scenarios: vec![CdnScenario::Homogeneous],
            latency_limits_ms: vec![20.0],
            site_limits: vec![None],
            workloads: vec![WorkloadSpec::resnet50_on_a2()],
            seeds: vec![42],
            forecasters: vec![ForecasterKind::Oracle],
            epochs: vec![EpochSchedule::Monthly],
            migrations: vec![MigrationCostLevel::Free],
            servings: vec![ServingMode::Aggregate],
            apps_per_site: 1,
            servers_per_site: 4,
        }
    }

    /// The default quick grid used by `experiments --sweep --quick` and the
    /// smoke tests: both continents, three latency limits, all three
    /// demand/capacity scenarios, a 40-site cap.
    pub fn quick_default() -> Self {
        Self::new("quick-grid")
            .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
            .with_latency_limits(vec![10.0, 20.0, 30.0])
            .with_scenarios(vec![
                CdnScenario::Homogeneous,
                CdnScenario::PopulationDemand,
                CdnScenario::PopulationCapacity,
            ])
            .with_site_limit(Some(40))
    }

    /// Sets the policy axis.
    pub fn with_policies(mut self, policies: Vec<PlacementPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Sets the continent axis.
    pub fn with_areas(mut self, areas: Vec<ZoneArea>) -> Self {
        self.areas = areas;
        self
    }

    /// Sets the demand/capacity scenario axis.
    pub fn with_scenarios(mut self, scenarios: Vec<CdnScenario>) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Sets the latency-limit axis.
    pub fn with_latency_limits(mut self, limits_ms: Vec<f64>) -> Self {
        self.latency_limits_ms = limits_ms;
        self
    }

    /// Sets the site-count axis.
    pub fn with_site_limits(mut self, limits: Vec<Option<usize>>) -> Self {
        self.site_limits = limits;
        self
    }

    /// Convenience: a single site cap on every cell.
    pub fn with_site_limit(self, limit: Option<usize>) -> Self {
        self.with_site_limits(vec![limit])
    }

    /// Sets the workload axis.
    pub fn with_workloads(mut self, workloads: Vec<WorkloadSpec>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the trace-seed (replication) axis.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the forecaster axis.
    pub fn with_forecasters(mut self, forecasters: Vec<ForecasterKind>) -> Self {
        self.forecasters = forecasters;
        self
    }

    /// Sets the epoch-schedule axis.
    pub fn with_epochs(mut self, epochs: Vec<EpochSchedule>) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the migration-cost axis.
    pub fn with_migrations(mut self, migrations: Vec<MigrationCostLevel>) -> Self {
        self.migrations = migrations;
        self
    }

    /// Sets the serving-mode axis.
    pub fn with_servings(mut self, servings: Vec<ServingMode>) -> Self {
        self.servings = servings;
        self
    }

    /// Sets the deployment shape shared by every cell: applications
    /// arriving per site per epoch and servers per site.  The defaults
    /// (1 app, 4 servers) are the paper's lightly-loaded CDN; `(4, 1)`
    /// runs the fleet near 80% utilization, where forecast error has real
    /// consequences.
    pub fn with_demand(mut self, apps_per_site: usize, servers_per_site: usize) -> Self {
        self.apps_per_site = apps_per_site;
        self.servers_per_site = servers_per_site;
        self
    }

    /// Sets the base seed mixed into per-cell seeds.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.policies.len()
            * self.areas.len()
            * self.scenarios.len()
            * self.latency_limits_ms.len()
            * self.site_limits.len()
            * self.workloads.len()
            * self.seeds.len()
            * self.forecasters.len()
            * self.epochs.len()
            * self.migrations.len()
            * self.servings.len()
    }

    /// Number of axes with more than one value (the grid's dimensionality).
    pub fn axis_count(&self) -> usize {
        [
            self.policies.len(),
            self.areas.len(),
            self.scenarios.len(),
            self.latency_limits_ms.len(),
            self.site_limits.len(),
            self.workloads.len(),
            self.seeds.len(),
            self.forecasters.len(),
            self.epochs.len(),
            self.migrations.len(),
            self.servings.len(),
        ]
        .iter()
        .filter(|n| **n > 1)
        .count()
    }

    /// Checks that every axis has at least one value and that values are
    /// usable (finite positive latency limits, non-empty workload names).
    pub fn validate(&self) -> Result<(), String> {
        let axes: [(&str, usize); 11] = [
            ("policies", self.policies.len()),
            ("areas", self.areas.len()),
            ("scenarios", self.scenarios.len()),
            ("latency_limits_ms", self.latency_limits_ms.len()),
            ("site_limits", self.site_limits.len()),
            ("workloads", self.workloads.len()),
            ("seeds", self.seeds.len()),
            ("forecasters", self.forecasters.len()),
            ("epochs", self.epochs.len()),
            ("migrations", self.migrations.len()),
            ("servings", self.servings.len()),
        ];
        for (name, len) in axes {
            if len == 0 {
                return Err(format!("sweep axis `{name}` is empty"));
            }
        }
        for limit in &self.latency_limits_ms {
            if !limit.is_finite() || *limit <= 0.0 {
                return Err(format!(
                    "latency limit {limit} is not a positive finite value"
                ));
            }
        }
        if let Some(0) = self.site_limits.iter().flatten().min() {
            return Err("site limit 0 would simulate no sites".into());
        }
        if self.apps_per_site == 0 {
            return Err("apps_per_site 0 would simulate no demand".into());
        }
        if self.servers_per_site == 0 {
            return Err("servers_per_site 0 would simulate no capacity".into());
        }
        if self.workloads.iter().any(|w| w.name.is_empty()) {
            return Err("workload with empty name".into());
        }
        let mut names = std::collections::HashSet::new();
        for workload in &self.workloads {
            if !names.insert(workload.name.as_str()) {
                return Err(format!(
                    "two workloads share the display name `{}`; rename one",
                    workload.name
                ));
            }
        }
        // Reports pair and group policies by display name, so distinct
        // policies whose names collide (e.g. tradeoff alphas 0.301 and
        // 0.304 both print `CarbonEdge(α=0.30)`) would silently merge.
        let mut policy_names = std::collections::HashSet::new();
        for policy in &self.policies {
            if !policy_names.insert(policy.name()) {
                return Err(format!(
                    "two policies share the display name `{}`; \
                     pick values that render distinctly",
                    policy.name()
                ));
            }
        }
        // Duplicate values on any axis would produce cells sharing a
        // `ScenarioKey`, corrupting baseline pairing and marginal counts.
        Self::reject_duplicates("areas", self.areas.iter().map(|a| format!("{a:?}")))?;
        Self::reject_duplicates("scenarios", self.scenarios.iter().map(|s| format!("{s:?}")))?;
        Self::reject_duplicates(
            "latency_limits_ms",
            self.latency_limits_ms.iter().map(|l| l.to_bits()),
        )?;
        Self::reject_duplicates("site_limits", self.site_limits.iter())?;
        Self::reject_duplicates("workloads", self.workloads.iter().map(|w| w.key()))?;
        Self::reject_duplicates("seeds", self.seeds.iter())?;
        Self::reject_duplicates("forecasters", self.forecasters.iter())?;
        Self::reject_duplicates("epochs", self.epochs.iter())?;
        Self::reject_duplicates("migrations", self.migrations.iter())?;
        Self::reject_duplicates("servings", self.servings.iter())?;
        Ok(())
    }

    fn reject_duplicates<T: std::hash::Hash + Eq>(
        axis: &str,
        values: impl Iterator<Item = T>,
    ) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for value in values {
            if !seen.insert(value) {
                return Err(format!("sweep axis `{axis}` contains a duplicate value"));
            }
        }
        Ok(())
    }

    /// Enumerates the full grid in canonical order (area, scenario, latency
    /// limit, site limit, workload, seed, forecaster, epoch, migration,
    /// serving, policy — policy innermost so that a scenario's policy
    /// variants are adjacent).  Ordering and per-cell seeds depend only on
    /// the spec, never on execution.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for area in &self.areas {
            for scenario in &self.scenarios {
                for latency in &self.latency_limits_ms {
                    for site_limit in &self.site_limits {
                        for workload in &self.workloads {
                            for seed in &self.seeds {
                                for forecaster in &self.forecasters {
                                    for epoch in &self.epochs {
                                        for migration in &self.migrations {
                                            for serving in &self.servings {
                                                for policy in &self.policies {
                                                    let index = cells.len();
                                                    // Chained (not XOR-combined)
                                                    // mixing: an XOR of two
                                                    // splitmix outputs cancels
                                                    // whenever index == seed,
                                                    // which would correlate
                                                    // those cells' seeds.
                                                    let cell_seed = splitmix64(
                                                        splitmix64(self.base_seed ^ index as u64)
                                                            ^ *seed,
                                                    );
                                                    cells.push(SweepCell {
                                                        index,
                                                        policy: *policy,
                                                        area: *area,
                                                        scenario: *scenario,
                                                        latency_limit_ms: *latency,
                                                        site_limit: *site_limit,
                                                        workload: workload.clone(),
                                                        seed: *seed,
                                                        forecaster: *forecaster,
                                                        epoch: *epoch,
                                                        migration: *migration,
                                                        serving: *serving,
                                                        apps_per_site: self.apps_per_site,
                                                        servers_per_site: self.servers_per_site,
                                                        cell_seed,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_is_the_axis_product() {
        let spec = SweepSpec::new("t")
            .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
            .with_latency_limits(vec![10.0, 20.0, 30.0])
            .with_seeds(vec![1, 2]);
        assert_eq!(spec.cell_count(), 2 * 2 * 3 * 2);
        assert_eq!(spec.cells().len(), spec.cell_count());
    }

    #[test]
    fn enumeration_is_deterministic_and_policy_innermost() {
        let spec = SweepSpec::quick_default();
        let a = spec.cells();
        let b = spec.cells();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.cell_seed, y.cell_seed);
            assert_eq!(x.label(), y.label());
        }
        // Policy variants of one scenario are adjacent.
        assert_eq!(a[0].scenario_key(), a[1].scenario_key());
        assert_ne!(a[0].policy.name(), a[1].policy.name());
    }

    #[test]
    fn cell_seeds_are_unique_across_cells() {
        let spec = SweepSpec::quick_default();
        let cells = spec.cells();
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.cell_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len());
    }

    #[test]
    fn cell_seeds_stay_unique_when_index_equals_axis_seed() {
        // Regression: XOR-combining splitmix64(index) with splitmix64(seed)
        // cancelled whenever index == seed, giving those cells identical
        // cell_seeds (seeds [1, 2] put seed 1 at index 1 and seed 2 at
        // index 2 with the default two-policy axis).
        let spec = SweepSpec::new("t").with_seeds(vec![1, 2]);
        let cells = spec.cells();
        assert_eq!(cells[1].seed, 1);
        assert_eq!(cells[2].seed, 2);
        let mut seeds: Vec<u64> = cells.iter().map(|c| c.cell_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells.len(), "cell seeds collided");
    }

    #[test]
    fn base_seed_changes_cell_seeds_but_not_structure() {
        let a = SweepSpec::quick_default().cells();
        let b = SweepSpec::quick_default().with_base_seed(7).cells();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[3].label(), b[3].label());
        assert_ne!(a[3].cell_seed, b[3].cell_seed);
    }

    #[test]
    fn config_reflects_cell_coordinates() {
        let spec = SweepSpec::new("t")
            .with_latency_limits(vec![12.5])
            .with_site_limit(Some(17))
            .with_workloads(vec![WorkloadSpec::yolo_on_gtx1080()])
            .with_seeds(vec![99]);
        let cell = &spec.cells()[0];
        let config = cell.config();
        assert_eq!(config.latency_limit_ms, 12.5);
        assert_eq!(config.site_limit, Some(17));
        assert_eq!(config.model, ModelKind::YoloV4);
        assert_eq!(config.device, DeviceKind::Gtx1080);
        assert_eq!(config.seed, 99);
        // Defaults reproduce the legacy simulation configuration.
        assert_eq!(config.forecaster, ForecasterKind::Oracle);
        assert_eq!(config.epoch, EpochSchedule::Monthly);
    }

    #[test]
    fn forecaster_and_epoch_axes_widen_the_grid_and_reach_the_config() {
        let spec = SweepSpec::new("t")
            .with_forecasters(vec![
                ForecasterKind::Oracle,
                ForecasterKind::Persistence,
                ForecasterKind::moving_average_24h(),
            ])
            .with_epochs(vec![EpochSchedule::Monthly, EpochSchedule::Weekly]);
        assert_eq!(spec.cell_count(), 2 * 3 * 2);
        assert_eq!(spec.axis_count(), 3);
        assert!(spec.validate().is_ok());
        let cells = spec.cells();
        assert_eq!(cells.len(), 12);
        // Policy stays innermost: adjacent cells share a scenario key.
        assert_eq!(cells[0].scenario_key(), cells[1].scenario_key());
        // The coordinate reaches the simulator configuration and the label.
        let weekly_persistence = cells
            .iter()
            .find(|c| {
                c.forecaster == ForecasterKind::Persistence && c.epoch == EpochSchedule::Weekly
            })
            .unwrap();
        let config = weekly_persistence.config();
        assert_eq!(config.forecaster, ForecasterKind::Persistence);
        assert_eq!(config.epoch, EpochSchedule::Weekly);
        assert!(weekly_persistence.label().contains("/persistence/weekly"));
        // Distinct coordinates keep distinct scenario keys and labels.
        let keys: std::collections::HashSet<_> = cells.iter().map(|c| c.scenario_key()).collect();
        assert_eq!(keys.len(), 6, "one key per non-policy coordinate");
    }

    #[test]
    fn migration_axis_widens_the_grid_and_reaches_the_config() {
        let spec = SweepSpec::new("t")
            .with_epochs(vec![EpochSchedule::Monthly, EpochSchedule::Daily])
            .with_migrations(MigrationCostLevel::ALL.to_vec());
        assert_eq!(spec.cell_count(), 2 * 2 * 3);
        assert_eq!(spec.axis_count(), 3);
        assert!(spec.validate().is_ok());
        let cells = spec.cells();
        // Policy stays innermost: adjacent cells share a scenario key.
        assert_eq!(cells[0].scenario_key(), cells[1].scenario_key());
        let heavy_daily = cells
            .iter()
            .find(|c| c.migration == MigrationCostLevel::Heavy && c.epoch == EpochSchedule::Daily)
            .unwrap();
        let config = heavy_daily.config();
        assert_eq!(config.migration, MigrationCostLevel::Heavy);
        assert!(heavy_daily.label().ends_with("/daily/mig-heavy/agg"));
        // Distinct levels keep distinct scenario keys.
        let keys: std::collections::HashSet<_> = cells.iter().map(|c| c.scenario_key()).collect();
        assert_eq!(keys.len(), 6, "one key per non-policy coordinate");
        // The default reproduces the stateless legacy configuration.
        assert_eq!(
            SweepSpec::new("t").cells()[0].config().migration,
            MigrationCostLevel::Free
        );
        // Duplicates and empties are rejected like every other axis.
        assert!(SweepSpec::new("t")
            .with_migrations(vec![MigrationCostLevel::Paper, MigrationCostLevel::Paper])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_migrations(vec![])
            .validate()
            .is_err());
    }

    #[test]
    fn serving_axis_widens_the_grid_and_reaches_the_config() {
        let spec = SweepSpec::new("t").with_servings(ServingMode::ALL.to_vec());
        assert_eq!(spec.cell_count(), 2 * 3);
        assert_eq!(spec.axis_count(), 2);
        assert!(spec.validate().is_ok());
        let cells = spec.cells();
        // Policy stays innermost: adjacent cells share a scenario key.
        assert_eq!(cells[0].scenario_key(), cells[1].scenario_key());
        let online = cells
            .iter()
            .find(|c| c.serving == ServingMode::OnlineReplace)
            .unwrap();
        let config = online.config();
        assert_eq!(config.serving, ServingMode::OnlineReplace);
        assert!(online.label().ends_with("/mig-free/events-online"));
        // Distinct modes keep distinct scenario keys.
        let keys: std::collections::HashSet<_> = cells.iter().map(|c| c.scenario_key()).collect();
        assert_eq!(keys.len(), 3, "one key per non-policy coordinate");
        // The default reproduces the aggregate legacy configuration.
        assert_eq!(
            SweepSpec::new("t").cells()[0].config().serving,
            ServingMode::Aggregate
        );
        // Duplicates and empties are rejected like every other axis.
        assert!(SweepSpec::new("t")
            .with_servings(vec![ServingMode::EventLevel, ServingMode::EventLevel])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_servings(vec![])
            .validate()
            .is_err());
    }

    #[test]
    fn demand_shape_reaches_the_config_and_is_validated() {
        let spec = SweepSpec::new("t").with_demand(4, 1);
        assert!(spec.validate().is_ok());
        let config = spec.cells()[0].config();
        assert_eq!(config.apps_per_site, 4);
        assert_eq!(config.servers_per_site, 1);
        // Defaults reproduce the paper's lightly-loaded CDN.
        let default_config = SweepSpec::new("t").cells()[0].config();
        assert_eq!(default_config.apps_per_site, 1);
        assert_eq!(default_config.servers_per_site, 4);
        assert!(SweepSpec::new("t").with_demand(0, 4).validate().is_err());
        assert!(SweepSpec::new("t").with_demand(1, 0).validate().is_err());
    }

    #[test]
    fn duplicate_forecasters_and_epochs_are_rejected() {
        assert!(SweepSpec::new("t")
            .with_forecasters(vec![ForecasterKind::Oracle, ForecasterKind::Oracle])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_epochs(vec![EpochSchedule::Daily, EpochSchedule::Daily])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_forecasters(vec![])
            .validate()
            .is_err());
        // Distinct moving-average windows are distinct axis values.
        assert!(SweepSpec::new("t")
            .with_forecasters(vec![
                ForecasterKind::MovingAverage { window_hours: 24 },
                ForecasterKind::MovingAverage { window_hours: 168 },
            ])
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(SweepSpec::quick_default().validate().is_ok());
        assert!(SweepSpec::new("t")
            .with_policies(vec![])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_latency_limits(vec![-5.0])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_latency_limits(vec![f64::NAN])
            .validate()
            .is_err());
        // Policies whose display names collide would merge in reports.
        assert!(SweepSpec::new("t")
            .with_policies(vec![
                PlacementPolicy::LatencyAware,
                PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.301 },
                PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.304 },
            ])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_policies(vec![
                PlacementPolicy::LatencyAware,
                PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.3 },
                PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.7 },
            ])
            .validate()
            .is_ok());
        // Duplicate axis values corrupt baseline pairing — rejected on every
        // axis, including floats compared by bits and workloads by identity.
        assert!(SweepSpec::new("t")
            .with_seeds(vec![42, 42])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_latency_limits(vec![10.0, 10.0])
            .validate()
            .is_err());
        assert!(SweepSpec::new("t")
            .with_workloads(vec![
                WorkloadSpec::resnet50_on_a2(),
                WorkloadSpec::resnet50_on_a2(),
            ])
            .validate()
            .is_err());
        let mut near_duplicate_names = SweepSpec::new("t").with_workloads(vec![
            WorkloadSpec::new(ModelKind::ResNet50, DeviceKind::A2, 15.0),
            WorkloadSpec::new(ModelKind::ResNet50, DeviceKind::A2, 15.3),
        ]);
        // Distinct workloads whose display names collide must be renamed.
        assert!(near_duplicate_names.validate().is_err());
        near_duplicate_names.workloads[1].name = "resnet50@a2r15.3".into();
        assert!(near_duplicate_names.validate().is_ok());
        assert!(SweepSpec::new("t")
            .with_site_limit(Some(0))
            .validate()
            .is_err());
    }

    #[test]
    fn axis_count_counts_widened_axes() {
        assert_eq!(SweepSpec::new("t").axis_count(), 1); // policies only
        assert_eq!(SweepSpec::quick_default().axis_count(), 4);
    }

    #[test]
    fn workload_presets_have_distinct_names() {
        let names: std::collections::HashSet<String> = [
            WorkloadSpec::resnet50_on_a2(),
            WorkloadSpec::efficientnet_on_orin(),
            WorkloadSpec::yolo_on_gtx1080(),
        ]
        .iter()
        .map(|w| w.name.clone())
        .collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_eq!(splitmix64(42), splitmix64(42));
    }
}
