#![forbid(unsafe_code)]
//! Declarative scenario-matrix sweeps for CarbonEdge.
//!
//! The paper's headline results are grids: placement policies crossed with
//! regions, latency bounds, demand scenarios and workload mixes (Figures
//! 11–14).  This crate turns those ad-hoc per-experiment loops into one
//! engine:
//!
//! * [`SweepSpec`] — the declarative scenario matrix: each axis (policy,
//!   area, demand/capacity scenario, latency limit, site count, workload,
//!   seed, forecaster, epoch schedule, migration-cost level, serving mode)
//!   is a list of values, and the grid is their cartesian product,
//!   enumerated deterministically with stable per-cell seeds;
//! * [`SweepExecutor`] — a worker-pool executor that evaluates cells in
//!   parallel while sharing zone catalogs and per-seed carbon traces across
//!   cells (via `carbonedge_sim::CdnShared`), producing results that are
//!   bit-identical for any `--jobs` count;
//! * [`SweepReport`] — per-cell outcomes plus per-scenario savings versus
//!   the Latency-aware baseline, marginal savings tables per axis, a
//!   forecast-regret table (realized carbon versus the oracle replay per
//!   policy × forecaster × epoch), and a churn-vs-savings table (moves,
//!   migration carbon and net savings per policy × epoch × migration
//!   level), and a serving table (tail latency, drops and utilization next
//!   to carbon savings per policy × serving mode), all with deterministic
//!   text renderings used by the golden-output tests.
//!
//! # Example
//!
//! ```no_run
//! use carbonedge_sweep::{SweepExecutor, SweepSpec};
//!
//! let report = SweepExecutor::new()
//!     .with_jobs(4)
//!     .run(&SweepSpec::quick_default())
//!     .expect("valid spec");
//! println!("{}", report.render());
//! ```
//!
//! To add a new axis to the engine itself: add the field to [`SweepSpec`],
//! a loop level in `SweepSpec::cells`, a variant in [`SweepAxis`], and its
//! display form in `SweepReport::axis_value` — the executor and report
//! aggregation pick it up unchanged (see `ROADMAP.md`).

pub mod executor;
pub mod report;
pub mod spec;

pub use executor::{take_jobs_flag, SweepExecutor};
pub use report::{
    CellResult, ChurnRow, MarginalRow, RegretRow, SavingsRow, ServingRow, SweepReport,
    BASELINE_POLICY,
};
pub use spec::{ScenarioKey, SweepAxis, SweepCell, SweepSpec, WorkloadSpec};
