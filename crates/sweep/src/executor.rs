//! Parallel evaluation of a sweep grid.
//!
//! The executor walks the cell list with a shared atomic cursor and a fixed
//! worker pool (`std::thread::scope`), the same work-distribution shape a
//! rayon `par_iter` would compile to — workers pull the next unclaimed cell,
//! simulate it, and write the result into the cell's own slot.  Because every
//! cell is seeded deterministically by the spec and results are collected by
//! cell index, the aggregated report is identical for any worker count or
//! scheduling order; catalogs and per-seed carbon traces are shared across
//! workers through [`CdnShared`].

use crate::report::{CellResult, SweepReport};
use crate::spec::{SweepCell, SweepSpec};
use carbonedge_core::{IncrementalPlacer, PlacementPolicy};
use carbonedge_sim::cdn::CdnShared;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parses a `--jobs N` / `--jobs=N` flag out of a CLI argument list,
/// removing the consumed tokens.  Returns the parsed count (`0` when the
/// flag is absent, meaning automatic parallelism) or an error message for a
/// missing or non-numeric value.  Shared by every binary that fronts a
/// [`SweepExecutor`] so the flag behaves identically everywhere.
pub fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--jobs" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| "--jobs requires a value".to_string())?
                .clone();
            args.drain(i..=i + 1);
            value
        } else if let Some(value) = args[i].strip_prefix("--jobs=") {
            let value = value.to_string();
            args.remove(i);
            value
        } else {
            i += 1;
            continue;
        };
        // A repeated flag is ambiguous (which count did the caller mean?)
        // — reject it instead of silently letting the last one win.
        if jobs.is_some() {
            return Err("--jobs given more than once".to_string());
        }
        jobs = Some(
            value
                .parse()
                .map_err(|_| format!("invalid --jobs value `{value}`"))?,
        );
    }
    Ok(jobs.unwrap_or(0))
}

/// Runs every cell of a [`SweepSpec`] and aggregates a [`SweepReport`].
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    /// Number of worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// The placer template stamped with each cell's policy
    /// ([`IncrementalPlacer::with_policy`]); heuristic-only by default, as in
    /// the CDN-scale experiments.
    pub placer_template: IncrementalPlacer,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        Self {
            jobs: 0,
            placer_template: IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only(),
        }
    }
}

impl SweepExecutor {
    /// Creates an executor with automatic parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (`0` = one per available CPU).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Overrides the placer template shared across cells.
    pub fn with_placer_template(mut self, template: IncrementalPlacer) -> Self {
        self.placer_template = template;
        self
    }

    /// The effective worker count for a grid of `cells` cells.
    pub fn effective_jobs(&self, cells: usize) -> usize {
        let auto = rayon::current_num_threads();
        let requested = if self.jobs == 0 { auto } else { self.jobs };
        requested.clamp(1, cells.max(1))
    }

    /// Evaluates one cell against the shared environment with a per-worker
    /// placer.  The placer is cloned once per worker (not per cell) and
    /// re-stamped with each cell's policy, so its solver workspace — basis
    /// buffers, node arena — keeps its allocations across every cell the
    /// worker runs.  Any resident warm-start basis is discarded at the cell
    /// boundary: a neighbor cell's basis is a *cost-only* change away on
    /// the exact path, but degenerate optima make the simplex's final
    /// vertex depend on its starting basis (equal carbon, different
    /// latency), so carrying it would break the bit-identical contract
    /// `tests/sweep_delta.rs` pins against the cold per-cell oracle.
    /// Epoch-to-epoch warm starts *within* the cell's run are unaffected.
    fn run_cell(
        &self,
        shared: &CdnShared,
        cell: &SweepCell,
        placer: &mut IncrementalPlacer,
    ) -> CellResult {
        let simulator = shared.simulator(cell.config());
        placer.policy = cell.policy;
        placer.milp_solver.discard_warm_start();
        let result = simulator.run_with(placer);
        let mean_assigned = if result.assigned_intensity.is_empty() {
            0.0
        } else {
            result.assigned_intensity.iter().sum::<f64>() / result.assigned_intensity.len() as f64
        };
        CellResult {
            cell: cell.clone(),
            outcome: result.outcome,
            decision_carbon_g: result.decision_carbon_g,
            monthly_carbon_g: result.monthly.iter().map(|m| m.carbon_g).collect(),
            mean_assigned_intensity: mean_assigned,
            site_count: simulator.site_count(),
            moves: result.moves,
            migration_carbon_g: result.migration_carbon_g,
            serving: result.serving,
        }
    }

    /// Runs the full grid.  Returns an error for degenerate specs (empty
    /// axes, non-finite latency limits, zero site caps).
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport, String> {
        spec.validate()?;
        let cells = spec.cells();
        let jobs = self.effective_jobs(cells.len());
        let shared = CdnShared::new();

        let slots: Vec<Mutex<Option<CellResult>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        // Contiguous runs of cells sharing a `ScenarioKey` — the policy axis
        // is innermost, so every policy variant of one scenario is adjacent.
        // Workers claim whole groups, not single cells: one worker builds
        // the scenario's [`ScenarioPrep`] and every neighbor cell reuses it
        // from that worker's cache-warm state instead of rendezvousing on
        // the `OnceLock` mid-build, and the schedule stays deterministic at
        // the group level.  Solver state still never crosses a cell
        // boundary (see [`Self::run_cell`]), so the report is bit-identical
        // for any job count — pinned by `tests/sweep_delta.rs` against the
        // cold per-cell oracle.
        let mut groups: Vec<std::ops::Range<usize>> = Vec::new();
        let mut group_start = 0usize;
        for i in 1..=cells.len() {
            if i == cells.len() || cells[i].scenario_key() != cells[group_start].scenario_key() {
                groups.push(group_start..i);
                group_start = i;
            }
        }
        if jobs <= 1 {
            let mut placer = self.placer_template.clone();
            for group in &groups {
                for i in group.clone() {
                    *slots[i].lock().expect("result slot poisoned") =
                        Some(self.run_cell(&shared, &cells[i], &mut placer));
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| {
                        let mut placer = self.placer_template.clone();
                        loop {
                            let g = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(group) = groups.get(g) else { break };
                            for i in group.clone() {
                                let result = self.run_cell(&shared, &cells[i], &mut placer);
                                *slots[i].lock().expect("result slot poisoned") = Some(result);
                            }
                        }
                    });
                }
            });
        }

        let results: Vec<CellResult> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell produces a result")
            })
            .collect();
        // Deliberately no clock read here: the executor stays wall-clock
        // free (enforced by carbonedge-lint's `wall-clock` rule) and callers
        // that want timing stamp `report.wall_seconds` around this call.
        Ok(SweepReport::new(spec.clone(), results, jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use carbonedge_datasets::zones::ZoneArea;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new("tiny")
            .with_areas(vec![ZoneArea::Europe])
            .with_latency_limits(vec![10.0, 20.0])
            .with_site_limit(Some(12))
    }

    #[test]
    fn executor_fills_every_cell_in_spec_order() {
        let spec = tiny_spec();
        let report = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
        assert_eq!(report.cells.len(), spec.cell_count());
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.cell.index, i);
            assert!(cell.outcome.carbon_g > 0.0);
            assert_eq!(cell.monthly_carbon_g.len(), 12);
            assert_eq!(cell.site_count, 12);
        }
    }

    #[test]
    fn parallel_and_sequential_runs_agree_exactly() {
        let spec = tiny_spec();
        let sequential = SweepExecutor::new().with_jobs(1).run(&spec).unwrap();
        let parallel = SweepExecutor::new().with_jobs(4).run(&spec).unwrap();
        assert_eq!(parallel.jobs, 4);
        for (a, b) in sequential.cells.iter().zip(parallel.cells.iter()) {
            assert_eq!(a.outcome, b.outcome, "cell {}", a.cell.index);
            assert_eq!(a.monthly_carbon_g, b.monthly_carbon_g);
        }
        assert_eq!(sequential.render(), parallel.render());
    }

    #[test]
    fn jobs_flag_parsing_accepts_both_forms_and_rejects_garbage() {
        let mut args = vec!["--sweep".to_string(), "--jobs".to_string(), "4".to_string()];
        assert_eq!(take_jobs_flag(&mut args), Ok(4));
        assert_eq!(args, vec!["--sweep".to_string()]);

        let mut eq_form = vec!["--jobs=7".to_string(), "fig1".to_string()];
        assert_eq!(take_jobs_flag(&mut eq_form), Ok(7));
        assert_eq!(eq_form, vec!["fig1".to_string()]);

        let mut absent = vec!["fig1".to_string()];
        assert_eq!(take_jobs_flag(&mut absent), Ok(0));

        assert!(take_jobs_flag(&mut vec!["--jobs".to_string()]).is_err());
        assert!(take_jobs_flag(&mut vec!["--jobs".to_string(), "abc".to_string()]).is_err());
        assert!(take_jobs_flag(&mut vec!["--jobs=nope".to_string()]).is_err());
    }

    #[test]
    fn duplicate_jobs_flags_are_rejected() {
        let mut twice = vec![
            "--jobs".to_string(),
            "4".to_string(),
            "fig1".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
        ];
        assert_eq!(
            take_jobs_flag(&mut twice),
            Err("--jobs given more than once".to_string())
        );

        let mut mixed = vec![
            "--jobs=1".to_string(),
            "--jobs".to_string(),
            "1".to_string(),
        ];
        assert!(take_jobs_flag(&mut mixed).is_err());

        // A single flag still parses even when other arguments follow.
        let mut single = vec!["--jobs=3".to_string(), "fig1".to_string()];
        assert_eq!(take_jobs_flag(&mut single), Ok(3));
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let empty = SweepSpec::new("empty").with_policies(vec![]);
        assert!(SweepExecutor::new().run(&empty).is_err());
    }

    #[test]
    fn effective_jobs_clamps_to_grid_and_cpus() {
        let ex = SweepExecutor::new().with_jobs(64);
        assert_eq!(ex.effective_jobs(3), 3);
        assert_eq!(ex.effective_jobs(0), 1);
        let auto = SweepExecutor::new();
        assert!(auto.effective_jobs(1000) >= 1);
    }
}
