//! Pairwise latency matrices between named sites.

use crate::latency::LatencyModel;
use carbonedge_geo::Coordinates;
use serde::{Deserialize, Serialize};

/// A dense, symmetric matrix of one-way latencies (ms) between named sites.
///
/// This is the in-memory equivalent of the WonderNetwork city-pair dataset
/// restricted to the sites of an experiment, e.g. the five Florida or
/// Central-EU edge data centers of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyMatrix {
    names: Vec<String>,
    /// Row-major one-way latencies in milliseconds.
    one_way_ms: Vec<f64>,
}

impl LatencyMatrix {
    /// Builds a latency matrix for named sites using a latency model.
    pub fn from_model(sites: &[(String, Coordinates)], model: &LatencyModel) -> Self {
        let n = sites.len();
        let mut one_way_ms = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                one_way_ms[i * n + j] = model.one_way_ms(sites[i].1, sites[j].1);
            }
        }
        Self {
            names: sites.iter().map(|(n, _)| n.clone()).collect(),
            one_way_ms,
        }
    }

    /// Builds a matrix from explicit one-way values (row-major, n×n).
    ///
    /// Returns `None` if the value count does not match the number of names
    /// squared, or any value is negative/non-finite.
    pub fn from_values(names: Vec<String>, one_way_ms: Vec<f64>) -> Option<Self> {
        if one_way_ms.len() != names.len() * names.len() {
            return None;
        }
        if one_way_ms.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return None;
        }
        Some(Self { names, one_way_ms })
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Site names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// One-way latency between site indices `i` and `j`, in ms.
    pub fn one_way(&self, i: usize, j: usize) -> f64 {
        self.one_way_ms[i * self.names.len() + j]
    }

    /// Round-trip latency between site indices `i` and `j`, in ms.
    pub fn round_trip(&self, i: usize, j: usize) -> f64 {
        self.one_way(i, j) * 2.0
    }

    /// Index of a site by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Indices of all sites within a round-trip latency limit of site `i`
    /// (including `i` itself).
    pub fn within_round_trip(&self, i: usize, limit_ms: f64) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| self.round_trip(i, j) <= limit_ms)
            .collect()
    }

    /// Maximum one-way latency in the matrix (ignoring the diagonal).
    pub fn max_off_diagonal(&self) -> f64 {
        let n = self.len();
        let mut max = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    max = max.max(self.one_way(i, j));
                }
            }
        }
        max
    }

    /// Mean one-way latency over all ordered pairs (ignoring the diagonal).
    pub fn mean_off_diagonal(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += self.one_way(i, j);
                }
            }
        }
        sum / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn florida_sites() -> Vec<(String, Coordinates)> {
        vec![
            ("Jacksonville".into(), Coordinates::new(30.3322, -81.6557)),
            ("Miami".into(), Coordinates::new(25.7617, -80.1918)),
            ("Orlando".into(), Coordinates::new(28.5384, -81.3789)),
            ("Tampa".into(), Coordinates::new(27.9506, -82.4572)),
            ("Tallahassee".into(), Coordinates::new(30.4383, -84.2807)),
        ]
    }

    #[test]
    fn model_matrix_is_symmetric() {
        let m = LatencyMatrix::from_model(&florida_sites(), &LatencyModel::default());
        for i in 0..m.len() {
            for j in 0..m.len() {
                assert!((m.one_way(i, j) - m.one_way(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn diagonal_is_near_zero() {
        let m = LatencyMatrix::from_model(&florida_sites(), &LatencyModel::default());
        for i in 0..m.len() {
            assert!(m.one_way(i, i) < 1.0);
        }
    }

    #[test]
    fn florida_latencies_in_table1_range() {
        // Table 1a: one-way latencies among Florida cities range ~1.9 – 7.2 ms.
        let m = LatencyMatrix::from_model(&florida_sites(), &LatencyModel::deterministic());
        let max = m.max_off_diagonal();
        let mean = m.mean_off_diagonal();
        assert!(max > 3.0 && max < 12.0, "max {max}");
        assert!(mean > 1.5 && mean < 8.0, "mean {mean}");
    }

    #[test]
    fn within_round_trip_includes_self_and_respects_limit() {
        let m = LatencyMatrix::from_model(&florida_sites(), &LatencyModel::deterministic());
        let near = m.within_round_trip(1, 8.0); // Miami with an 8 ms RTT budget
        assert!(near.contains(&1));
        for j in near {
            assert!(m.round_trip(1, j) <= 8.0);
        }
        let all = m.within_round_trip(1, 1000.0);
        assert_eq!(all.len(), m.len());
    }

    #[test]
    fn from_values_validation() {
        assert!(LatencyMatrix::from_values(vec!["a".into(), "b".into()], vec![0.0; 3]).is_none());
        assert!(LatencyMatrix::from_values(vec!["a".into()], vec![-1.0]).is_none());
        let ok = LatencyMatrix::from_values(vec!["a".into(), "b".into()], vec![0.0, 5.0, 5.0, 0.0])
            .unwrap();
        assert_eq!(ok.one_way(0, 1), 5.0);
        assert_eq!(ok.round_trip(0, 1), 10.0);
    }

    #[test]
    fn index_of_lookup() {
        let m = LatencyMatrix::from_model(&florida_sites(), &LatencyModel::default());
        assert_eq!(m.index_of("Miami"), Some(1));
        assert_eq!(m.index_of("Boston"), None);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = LatencyMatrix::from_model(&[], &LatencyModel::default());
        assert!(m.is_empty());
        assert_eq!(m.mean_off_diagonal(), 0.0);
        assert_eq!(m.max_off_diagonal(), 0.0);
    }
}
