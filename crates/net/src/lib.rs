#![forbid(unsafe_code)]
//! Network latency substrate for CarbonEdge.
//!
//! The paper uses WonderNetwork round-trip ping traces between 246 cities to
//! derive cross-data-center latencies (Section 6.1.1).  Those traces are
//! replaced here by a geodesic latency model: one-way latency is propagation
//! delay over the great-circle path at two-thirds the speed of light,
//! inflated by a routing factor, plus a fixed per-endpoint access delay.
//! The model is calibrated so that the Florida and Central-EU latencies of
//! Table 1 (≈ 2–16 ms one-way at 100–800 km) are reproduced.

pub mod latency;
pub mod matrix;

pub use latency::{LatencyModel, LatencySample};
pub use matrix::LatencyMatrix;
