//! Distance-based network latency model.

use carbonedge_geo::Coordinates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Speed of light in fiber, km per millisecond (≈ 2/3 c).
const FIBER_KM_PER_MS: f64 = 200.0;

/// A single latency observation between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySample {
    /// One-way latency in milliseconds.
    pub one_way_ms: f64,
}

impl LatencySample {
    /// Round-trip latency in milliseconds.
    pub fn round_trip_ms(&self) -> f64 {
        self.one_way_ms * 2.0
    }
}

/// Geodesic latency model replacing the WonderNetwork ping dataset.
///
/// One-way latency between two points is modeled as
///
/// ```text
/// latency = access_delay + routing_inflation * distance / (2/3 c) + jitter
/// ```
///
/// * `access_delay_ms` captures last-mile/metro access and processing delays
///   at both endpoints (the WonderNetwork data shows a ~1–3 ms floor even for
///   nearby cities, e.g. Orlando–Tampa at 1.86 ms one-way for ~135 km);
/// * `routing_inflation` captures the fact that fiber paths do not follow
///   great circles (typical inflation factors are 1.5–2.5×);
/// * optional deterministic per-pair jitter captures topology irregularities
///   such as the Graz–Lyon 16.2 ms outlier in Table 1b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-path access and processing delay, in ms (one-way).
    pub access_delay_ms: f64,
    /// Multiplicative inflation of the great-circle distance.
    pub routing_inflation: f64,
    /// Maximum relative jitter applied per pair (0 disables jitter).
    pub jitter_fraction: f64,
    /// Seed controlling the deterministic per-pair jitter.
    pub seed: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            access_delay_ms: 1.5,
            routing_inflation: 1.8,
            jitter_fraction: 0.25,
            seed: 0x0ed6e,
        }
    }
}

impl LatencyModel {
    /// A model without jitter, useful for tests and analytical experiments.
    pub fn deterministic() -> Self {
        Self {
            jitter_fraction: 0.0,
            ..Self::default()
        }
    }

    fn pair_jitter(&self, a: Coordinates, b: Coordinates) -> f64 {
        if self.jitter_fraction <= 0.0 {
            return 0.0;
        }
        // Derive a per-pair seed that is symmetric in (a, b) so that the
        // latency matrix stays symmetric, like a ping matrix.
        let qa = ((a.lat * 1e4) as i64, (a.lon * 1e4) as i64);
        let qb = ((b.lat * 1e4) as i64, (b.lon * 1e4) as i64);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let mut h: u64 = self.seed ^ 0x9e3779b97f4a7c15;
        for v in [lo.0, lo.1, hi.0, hi.1] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100000001b3);
            h ^= h >> 29;
        }
        let mut rng = StdRng::seed_from_u64(h);
        rng.gen_range(-self.jitter_fraction..self.jitter_fraction)
    }

    /// One-way latency between two coordinates in milliseconds.
    pub fn one_way_ms(&self, a: Coordinates, b: Coordinates) -> f64 {
        let distance = a.distance_km(&b);
        if distance < 1e-9 {
            // Same site: only local processing delay applies.
            return self.access_delay_ms * 0.2;
        }
        let propagation = self.routing_inflation * distance / FIBER_KM_PER_MS;
        let base = self.access_delay_ms + propagation;
        base * (1.0 + self.pair_jitter(a, b))
    }

    /// Round-trip latency between two coordinates in milliseconds.
    pub fn round_trip_ms(&self, a: Coordinates, b: Coordinates) -> f64 {
        self.one_way_ms(a, b) * 2.0
    }

    /// Convenience sample constructor.
    pub fn sample(&self, a: Coordinates, b: Coordinates) -> LatencySample {
        LatencySample {
            one_way_ms: self.one_way_ms(a, b),
        }
    }

    /// The maximum one-way reach (km) achievable within a round-trip latency
    /// limit, ignoring jitter.  Used to translate the paper's latency limits
    /// into search radii (20 ms RTT ≈ 500 km in Section 6.1.1).
    pub fn reach_km(&self, round_trip_limit_ms: f64) -> f64 {
        let one_way = round_trip_limit_ms / 2.0 - self.access_delay_ms;
        if one_way <= 0.0 {
            return 0.0;
        }
        one_way * FIBER_KM_PER_MS / self.routing_inflation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn coords() -> (Coordinates, Coordinates) {
        (
            Coordinates::new(25.7617, -80.1918), // Miami
            Coordinates::new(28.5384, -81.3789), // Orlando
        )
    }

    #[test]
    fn latency_grows_with_distance() {
        let m = LatencyModel::deterministic();
        let miami = Coordinates::new(25.7617, -80.1918);
        let orlando = Coordinates::new(28.5384, -81.3789);
        let tallahassee = Coordinates::new(30.4383, -84.2807);
        assert!(m.one_way_ms(miami, tallahassee) > m.one_way_ms(miami, orlando));
    }

    #[test]
    fn florida_scale_latencies_match_table1() {
        // Table 1a reports one-way latencies between Florida cities in the
        // 1.9 – 7.2 ms range; the deterministic model should land there.
        let m = LatencyModel::deterministic();
        let (miami, orlando) = coords();
        let l = m.one_way_ms(miami, orlando);
        assert!(l > 1.0 && l < 9.0, "got {l}");
    }

    #[test]
    fn central_eu_scale_latencies_match_table1() {
        // Bern–Graz is ~550 km; Table 1b reports 8.78 ms one-way.
        let m = LatencyModel::deterministic();
        let bern = Coordinates::new(46.9480, 7.4474);
        let graz = Coordinates::new(47.0707, 15.4395);
        let l = m.one_way_ms(bern, graz);
        assert!(l > 4.0 && l < 13.0, "got {l}");
    }

    #[test]
    fn same_location_has_small_latency() {
        let m = LatencyModel::default();
        let c = Coordinates::new(40.0, -75.0);
        assert!(m.one_way_ms(c, c) < 1.0);
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let m = LatencyModel::default();
        let (a, b) = coords();
        assert!((m.round_trip_ms(a, b) - 2.0 * m.one_way_ms(a, b)).abs() < 1e-9);
        let s = m.sample(a, b);
        assert!((s.round_trip_ms() - 2.0 * s.one_way_ms).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_symmetric_and_deterministic() {
        let m = LatencyModel::default();
        let (a, b) = coords();
        assert!((m.one_way_ms(a, b) - m.one_way_ms(b, a)).abs() < 1e-9);
        assert!((m.one_way_ms(a, b) - m.one_way_ms(a, b)).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let (a, b) = coords();
        let m1 = LatencyModel {
            seed: 1,
            ..LatencyModel::default()
        };
        let m2 = LatencyModel {
            seed: 2,
            ..LatencyModel::default()
        };
        assert!((m1.one_way_ms(a, b) - m2.one_way_ms(a, b)).abs() > 1e-9);
    }

    #[test]
    fn reach_of_20ms_rtt_is_about_500km() {
        // The paper equates a 20 ms round-trip limit with roughly 500 km.
        let m = LatencyModel::deterministic();
        let reach = m.reach_km(20.0);
        assert!(reach > 400.0 && reach < 1200.0, "got {reach}");
    }

    #[test]
    fn reach_of_tiny_limit_is_zero() {
        let m = LatencyModel::deterministic();
        assert_eq!(m.reach_km(1.0), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn one_way_latency_nonnegative_and_symmetric(
            lat1 in -60.0f64..70.0, lon1 in -170.0f64..170.0,
            lat2 in -60.0f64..70.0, lon2 in -170.0f64..170.0,
        ) {
            let m = LatencyModel::default();
            let a = Coordinates::new(lat1, lon1);
            let b = Coordinates::new(lat2, lon2);
            let ab = m.one_way_ms(a, b);
            let ba = m.one_way_ms(b, a);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - ba).abs() < 1e-9);
        }

        #[test]
        fn latency_lower_bounded_by_propagation(
            lat1 in -60.0f64..70.0, lon1 in -170.0f64..170.0,
            lat2 in -60.0f64..70.0, lon2 in -170.0f64..170.0,
        ) {
            let m = LatencyModel::deterministic();
            let a = Coordinates::new(lat1, lon1);
            let b = Coordinates::new(lat2, lon2);
            prop_assume!(a.distance_km(&b) > 1.0);
            // Latency can never be lower than straight-line light-in-fiber time.
            prop_assert!(m.one_way_ms(a, b) >= a.distance_km(&b) / FIBER_KM_PER_MS);
        }
    }
}
