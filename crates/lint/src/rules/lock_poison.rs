//! `lock-poison`: no bare `.lock().unwrap()`.
//!
//! The bug class: a worker panicking while holding a shared-cache mutex
//! poisons it, and every *other* worker's `.lock().unwrap()` then cascades
//! the panic — one bad cell aborted whole sweeps until PR 7 hardened the
//! `CdnShared` caches.  Library code must either recover
//! (`.lock().unwrap_or_else(PoisonError::into_inner)` — correct whenever the
//! protected data is structurally sound regardless of the panic, e.g.
//! monotone insert-only caches) or state the invariant that makes
//! propagation right (`.expect("<why a poisoned lock is unrecoverable
//! here>")`).

use super::{FileContext, Rule};
use crate::diag::Diagnostic;

pub struct LockPoison;

impl Rule for LockPoison {
    fn id(&self) -> &'static str {
        "lock-poison"
    }

    fn summary(&self) -> &'static str {
        "no bare .lock().unwrap(): recover via PoisonError::into_inner or .expect an invariant"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.ends_with(".rs")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        // `.lock()` chains wrap across lines, so scan the whole masked text.
        let masked = ctx.masked;
        let mut from = 0;
        while let Some(rel) = masked[from..].find(".lock()") {
            let at = from + rel;
            let rest = masked[at + ".lock()".len()..].trim_start();
            if rest.starts_with(".unwrap()") {
                out.push(
                    ctx.diag(
                        ctx.line_of(at),
                        self.id(),
                        "bare `.lock().unwrap()` cascades a poisoned mutex into every \
                     caller — use `.unwrap_or_else(PoisonError::into_inner)` when the \
                     data is sound across panics, or `.expect(\"<invariant>\")` when \
                     propagation is the right call"
                            .to_string(),
                    ),
                );
            }
            from = at + ".lock()".len();
        }
    }
}
