//! `float-order`: no `partial_cmp` outside `PartialOrd` impls.
//!
//! The bug class: `partial_cmp(..).unwrap()` panics on NaN (PR 4's
//! `greenest_zone` crash) and `partial_cmp(..).unwrap_or(Equal)` silently
//! builds an inconsistent comparator under NaN, corrupting sort order and —
//! in largest-remainder apportionment — conservation itself (the PR 7
//! sweep).  Every float ordering in this workspace goes through
//! `f64::total_cmp`, which is total, deterministic, and NaN-stable.
//!
//! A line *defining* `fn partial_cmp` (a `PartialOrd` impl forwarding to
//! `Ord::cmp`) is the one legitimate appearance and is exempt.

use super::{token_positions, FileContext, Rule};
use crate::diag::Diagnostic;

pub struct FloatOrder;

impl Rule for FloatOrder {
    fn id(&self) -> &'static str {
        "float-order"
    }

    fn summary(&self) -> &'static str {
        "float comparisons must use total_cmp, never partial_cmp (NaN-unstable order)"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.ends_with(".rs")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, line) in ctx.masked_lines.iter().enumerate() {
            if line.contains("fn partial_cmp") {
                continue;
            }
            if !token_positions(line, "partial_cmp").is_empty() {
                out.push(
                    ctx.diag(
                        i + 1,
                        self.id(),
                        "`partial_cmp` on floats panics or mis-sorts under NaN — use \
                     `f64::total_cmp` (with an explicit deterministic tie-break if \
                     needed)"
                            .to_string(),
                    ),
                );
            }
        }
    }
}
