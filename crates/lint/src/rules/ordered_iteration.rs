//! `ordered-iteration`: no iteration over hash containers in output paths.
//!
//! The bug class: `HashMap`/`HashSet` iteration order is randomized per
//! process, so a report renderer, analysis table or bench snapshot that
//! iterates one leaks that order straight into golden files and
//! `BENCH_*.json` diffs.  The workspace's rendering convention is
//! *first-occurrence order*: aggregation maps are fine for O(1) lookup, but
//! anything iterated must be a `BTreeMap`/`BTreeSet`, an explicit `order`
//! vector, or sorted first (`sweep::report` is the worked example).
//!
//! Scope: the report-rendering and output crates (`sweep::report`,
//! `analysis`, `bench`) — the paths whose output is golden-tested.
//!
//! Detection is two-pass: bindings (and struct fields / fn params) whose
//! declaration mentions `HashMap`/`HashSet` are collected, then any
//! iteration of a tracked name — `for .. in name`, `name.iter()`,
//! `.keys()`, `.values()`, `.drain(..)`, `.retain(..)`, `.into_iter()` —
//! fires.  Lookups (`.get`, `.entry`, indexing) never fire.

use super::{ident_ending_at, FileContext, Rule};
use crate::diag::Diagnostic;
use std::collections::BTreeSet;

pub struct OrderedIteration;

/// Methods that iterate a hash container in its arbitrary order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

impl Rule for OrderedIteration {
    fn id(&self) -> &'static str {
        "ordered-iteration"
    }

    fn summary(&self) -> &'static str {
        "output paths must not iterate HashMap/HashSet: order leaks into golden files"
    }

    fn applies_to(&self, path: &str) -> bool {
        path == "crates/sweep/src/report.rs"
            || path.starts_with("crates/analysis/src/")
            || path.starts_with("crates/bench/src/")
            || path.starts_with("crates/bench/benches/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        let tracked = tracked_bindings(&ctx.masked_lines);
        if tracked.is_empty() {
            return;
        }
        for (i, line) in ctx.masked_lines.iter().enumerate() {
            for name in &tracked {
                if iterates(line, name) {
                    out.push(ctx.diag(
                        i + 1,
                        self.id(),
                        format!(
                            "`{name}` is a hash container; iterating it here leaks \
                             randomized order into rendered output — use \
                             BTreeMap/BTreeSet, an explicit first-occurrence order \
                             vector, or sort before iterating"
                        ),
                    ));
                    break; // one finding per line is enough
                }
            }
        }
    }
}

/// Collects names bound to `HashMap`/`HashSet` values anywhere in the file:
/// `let (mut) name = HashMap::new()`, `let name: HashMap<..> = ..`,
/// `name: &HashMap<..>` params and `pub name: HashMap<..>` fields.
fn tracked_bindings(lines: &[&str]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for line in lines {
        for ty in ["HashMap", "HashSet"] {
            for at in super::token_positions(line, ty) {
                if let Some(name) = binding_before(line, at) {
                    tracked.insert(name.to_string());
                }
            }
        }
    }
    tracked
}

/// Given the position of a `HashMap`/`HashSet` token, extracts the name it
/// is bound to on the same line: the identifier before the nearest `=`
/// (let-binding) or `:` (param / field / type ascription), if any.
fn binding_before(line: &str, ty_at: usize) -> Option<&str> {
    let head = &line[..ty_at];
    // Prefer `name =` (closer binder) over `name :` when both appear.
    let eq = head.rfind('=');
    // The rightmost `:` that is not part of a `::` path separator.
    let colon = head
        .char_indices()
        .rev()
        .find(|&(p, c)| c == ':' && !head[..p].ends_with(':') && !head[p + 1..].starts_with(':'))
        .map(|(p, _)| p);
    let binder = match (eq, colon) {
        (Some(e), Some(c)) => Some(e.max(c)),
        (e, c) => e.or(c),
    }?;
    let name_end = line[..binder].trim_end().len();
    ident_ending_at(line, name_end).filter(|n| {
        // Binder positions inside generics (`fn f() -> HashMap<..>`) or
        // comparison operators produce junk like `let`/`mut`; drop keywords.
        !matches!(*n, "let" | "mut" | "pub" | "ref" | "in" | "fn")
    })
}

/// Whether `line` iterates the tracked binding `name`.
fn iterates(line: &str, name: &str) -> bool {
    for at in super::token_positions(line, name) {
        let after = &line[at + name.len()..];
        // Method-style iteration: `name.iter()`, `name.drain(..)`, ...
        if ITER_METHODS.iter().any(|m| after.starts_with(m)) {
            return true;
        }
        // `for x in name {` / `in &name {` / `in &mut name.clone() {` —
        // direct loop over the container.
        let head = line[..at].trim_end();
        let head = head
            .strip_suffix("&mut")
            .or_else(|| head.strip_suffix('&'))
            .map(str::trim_end)
            .unwrap_or(head);
        if (head.ends_with(" in") || head == "in")
            && ident_ending_at(head, head.len()) == Some("in")
        {
            // Iterating the bare name, or the name followed only by `{`.
            let tail = after.trim_start();
            if tail.is_empty() || tail.starts_with('{') {
                return true;
            }
        }
    }
    false
}
