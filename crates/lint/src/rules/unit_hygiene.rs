//! `unit-hygiene`: no additive arithmetic across unit suffixes.
//!
//! The bug class: carbon accounting is a chain of unit conversions — grams,
//! kilograms, kilowatt-hours, milliseconds, hours — and Rust's type system
//! sees them all as `f64`.  The workspace convention is unit-suffixed names
//! (`carbon_g`, `energy_kwh`, `latency_ms`), which makes a missing
//! conversion *visible*: `carbon_g + energy_kwh` is a type error to a human
//! reader.  This rule turns that convention into a check: adding,
//! subtracting or compound-assigning two operands whose names carry
//! *different* unit suffixes fires.
//!
//! Multiplicative context is exempt — `carbon_g += energy_kwh * intensity`
//! is how a conversion factor is applied, so an operand that is itself part
//! of a `*`/`/` expression is not a bare mixed-unit operand.

use super::{ident_starting_at, FileContext, Rule};
use crate::diag::Diagnostic;

pub struct UnitHygiene;

/// Known unit suffixes, longest-match first (`_kwh` before `_g` would not
/// matter, but `_kg` must beat `_g`).
const SUFFIXES: &[&str] = &["_kwh", "_hours", "_kg", "_ms", "_g"];

impl Rule for UnitHygiene {
    fn id(&self) -> &'static str {
        "unit-hygiene"
    }

    fn summary(&self) -> &'static str {
        "additive arithmetic must not mix unit suffixes (_g/_kg/_kwh/_ms/_hours)"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.ends_with(".rs")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, line) in ctx.masked_lines.iter().enumerate() {
            if let Some((left, right)) = mixed_unit_pair(line) {
                out.push(ctx.diag(
                    i + 1,
                    self.id(),
                    format!(
                        "additive arithmetic mixes units: `{left}` vs `{right}` — \
                         convert explicitly (a `*`/`/` conversion factor) before \
                         adding, or rename one side to its true unit"
                    ),
                ));
            }
        }
    }
}

/// The unit suffix of an identifier, if it carries one.
fn unit_of(ident: &str) -> Option<&'static str> {
    SUFFIXES
        .iter()
        .find(|s| ident.ends_with(**s) && ident.len() > s.len())
        .copied()
}

/// Finds the first `a_unit1 <+|-|+=|-=> b_unit2` pair on a line where the
/// units differ and neither operand sits in a multiplicative subexpression.
fn mixed_unit_pair(line: &str) -> Option<(String, String)> {
    let bytes = line.as_bytes();
    let mut idx = 0;
    while idx < bytes.len() {
        let c = bytes[idx] as char;
        if c != '+' && c != '-' {
            idx += 1;
            continue;
        }
        // Skip `->`, `+=`/`-=` keep, `--`/`++` don't exist in Rust.
        if c == '-' && bytes.get(idx + 1) == Some(&b'>') {
            idx += 2;
            continue;
        }
        // `+` / `-` / `+=` / `-=`; comparison operators never reach here
        // because their first char is not `+`/`-`.
        let op_end = if bytes.get(idx + 1) == Some(&b'=') {
            idx + 2
        } else {
            idx + 1
        };

        if let (Some(left), Some(right)) = (
            additive_operand_before(line, idx),
            additive_operand_after(line, op_end),
        ) {
            if let (Some(lu), Some(ru)) = (unit_of(&left), unit_of(&right)) {
                if lu != ru {
                    return Some((left, right));
                }
            }
        }
        idx = op_end;
    }
    None
}

/// The operand name ending just before the operator at `op_at`, unless it is
/// part of a multiplicative subexpression (`.. * x_g +`) — then `None`.
fn additive_operand_before(line: &str, op_at: usize) -> Option<String> {
    let head = line[..op_at].trim_end();
    // Last path segment: `self.carbon_g` -> `carbon_g`.
    let name = super::ident_ending_at(head, head.len())?;
    let before_name = head[..head.len() - name.len()].trim_end();
    // `a * b_g + c` — the left operand is a product, already a conversion.
    // Strip a leading `self.` / `x.` path to look further left.
    let stripped = before_name.strip_suffix('.').map(str::trim_end);
    let ctx = stripped
        .map(|s| {
            let owner = super::ident_ending_at(s, s.len()).unwrap_or("");
            s[..s.len() - owner.len()].trim_end()
        })
        .unwrap_or(before_name);
    if ctx.ends_with('*') || ctx.ends_with('/') {
        return None;
    }
    Some(name.to_string())
}

/// The operand name starting just after the operator, unless it opens a
/// multiplicative subexpression (`+ x_kwh * f`) — then `None`.
fn additive_operand_after(line: &str, op_end: usize) -> Option<String> {
    let mut at = op_end;
    let bytes = line.as_bytes();
    while at < bytes.len() && (bytes[at] as char).is_whitespace() {
        at += 1;
    }
    // Skip reference/deref sigils and leading path (`self.`, `other.`).
    while at < bytes.len() && matches!(bytes[at] as char, '&' | '*') {
        at += 1;
    }
    let mut name = ident_starting_at(line, at)?;
    let mut end = at + name.len();
    while line[end..].starts_with('.') {
        let Some(next) = ident_starting_at(line, end + 1) else {
            break;
        };
        name = next;
        end = end + 1 + next.len();
    }
    let tail = line[end..].trim_start();
    if tail.starts_with('(') {
        // A call: take the suffix from the function name but skip its
        // argument list before checking for a multiplicative tail.
        let close = matching_paren(line, end + (line[end..].find('(').unwrap_or(0)));
        let tail = close.map(|c| line[c + 1..].trim_start()).unwrap_or("");
        if tail.starts_with('*') || tail.starts_with('/') {
            return None;
        }
        return Some(name.to_string());
    }
    if tail.starts_with('*') || tail.starts_with('/') {
        return None;
    }
    Some(name.to_string())
}

/// Byte index of the `)` matching the `(` at `open`.
fn matching_paren(line: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in line[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_units_fire_and_same_units_pass() {
        assert!(mixed_unit_pair("let x = carbon_g + energy_kwh;").is_some());
        assert!(mixed_unit_pair("let x = a_ms - b_hours;").is_some());
        assert!(mixed_unit_pair("total_g += downtime_g;").is_none());
        assert!(mixed_unit_pair("let x = a_ms - b_ms;").is_none());
    }

    #[test]
    fn conversion_products_are_exempt() {
        assert!(mixed_unit_pair("self.carbon_g += energy_kwh * intensity;").is_none());
        assert!(mixed_unit_pair("g += rate * energy_kwh + base_g;").is_none());
        assert!(mixed_unit_pair("x_g + f(y_kwh) * k;").is_none());
    }

    #[test]
    fn paths_resolve_to_their_final_segment() {
        assert!(mixed_unit_pair("self.carbon_g += other.energy_kwh;").is_some());
        assert!(mixed_unit_pair("a.carbon_g - b.carbon_g;").is_none());
    }

    #[test]
    fn suffixes_are_longest_match() {
        assert_eq!(unit_of("mass_kg"), Some("_kg"));
        assert_eq!(unit_of("carbon_g"), Some("_g"));
        assert_eq!(unit_of("plain"), None);
        assert_eq!(unit_of("_g"), None, "a bare suffix is not a unit name");
    }

    #[test]
    fn unsuffixed_operands_never_fire() {
        assert!(mixed_unit_pair("let base = self.access_delay_ms + propagation;").is_none());
        assert!(mixed_unit_pair("x + y").is_none());
    }
}
