//! `shim-purity`: the `shims/` seam is a manifest-only detail.
//!
//! The workspace builds offline against API-compatible dependency shims
//! under `shims/` (serde/rand/rayon/criterion/proptest).  The whole design
//! rests on one property: swapping a shim for the real registry crate is a
//! change to the **root manifest only** (`[workspace.dependencies]`).  That
//! property dies the moment any crate reaches around the seam — a
//! `path = "../../shims/..."` dependency in a crate manifest, a
//! `#[path = ".../shims/..."]` module, an `include!` of shim source, or a
//! `shims::` path in code.  This rule bans the token `shims` from every
//! crate manifest and source file; only the root `Cargo.toml` (the seam
//! itself) may name it.
//!
//! Scope: everything under `crates/` except this linter (whose sources and
//! docs must name the seam to describe it).

use super::{FileContext, Rule};
use crate::diag::Diagnostic;

pub struct ShimPurity;

impl Rule for ShimPurity {
    fn id(&self) -> &'static str {
        "shim-purity"
    }

    fn summary(&self) -> &'static str {
        "only the root manifest may reference shims/ — crates use the workspace seam"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.starts_with("crates/") && !path.starts_with("crates/lint/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        // Scan the *original* source: the references that break the seam
        // live in attribute strings (`#[path = "..."]`, `include!("...")`),
        // which masking blanks out.
        for (i, line) in ctx.original_lines.iter().enumerate() {
            if references_shims(line) {
                out.push(
                    ctx.diag(
                        i + 1,
                        self.id(),
                        "source references `shims` directly — depend through \
                     `[workspace.dependencies]` so the registry swap stays a \
                     root-manifest-only change"
                            .to_string(),
                    ),
                );
            }
        }
    }

    fn check_manifest(&self, path: &str, contents: &str, out: &mut Vec<Diagnostic>) {
        if !self.applies_to(path) {
            return;
        }
        for (i, line) in contents.lines().enumerate() {
            if references_shims(line) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: i + 1,
                    rule: self.id(),
                    message: "crate manifest references `shims/` — declare the \
                              dependency as `{ workspace = true }` and keep the \
                              path mapping in the root `[workspace.dependencies]`"
                        .to_string(),
                    excerpt: line.trim().to_string(),
                });
            }
        }
    }
}

/// Whether a line mentions the shim directory as a path or module.
fn references_shims(line: &str) -> bool {
    super::token_positions(line, "shims").into_iter().any(|at| {
        let after = line[at + "shims".len()..].chars().next();
        matches!(after, Some('/') | Some(':') | Some('"') | None)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_module_references_fire() {
        assert!(references_shims("rand = { path = \"../../shims/rand\" }"));
        assert!(references_shims(
            "#[path = \"../../shims/rand/src/lib.rs\"]"
        ));
        assert!(references_shims("use shims::rand;"));
    }

    #[test]
    fn prose_mentions_do_not_fire() {
        assert!(!references_shims(
            "// the shims directory holds offline stand-ins"
        ));
        assert!(!references_shims("let shims_count = 5;"));
    }
}
