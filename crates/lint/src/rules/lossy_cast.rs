//! `lossy-cast`: no silent float↔int `as` casts in numeric paths.
//!
//! The bug class: `as` never fails and never asks — a float cast to an
//! integer type truncates toward zero (and saturates), so an accounting
//! quantity crossing that boundary silently drops fractional grams, and a
//! solver bound crossing it changes the feasible region.  In the accounting
//! and solver paths every such cast must either be restructured or carry an
//! allow naming its rounding contract; `f32` is banned outright (every
//! carbon quantity in the workspace is `f64` — a stray `as f32` halves the
//! mantissa mid-chain).
//!
//! Detection is conservative, firing only when the cast source is provably
//! float-ish from the text: a float literal, a float-returning method
//! (`.round()`, `.floor()`, …), a unit-suffixed accounting identifier
//! (`_g`, `_kwh`, …), or a parenthesized expression containing one.
//! Integer-to-integer casts (`v as usize` on an index) never fire.

use super::{ident_ending_at, token_positions, FileContext, Rule};
use crate::diag::Diagnostic;

pub struct LossyCast;

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Methods whose receiver and result are floats.
const FLOAT_METHODS: &[&str] = &[
    "round",
    "floor",
    "ceil",
    "trunc",
    "fract",
    "sqrt",
    "powf",
    "exp",
    "ln",
    "mul_add",
    "to_degrees",
    "to_radians",
];

/// Accounting unit suffixes that mark an identifier as float-valued.
const FLOAT_SUFFIXES: &[&str] = &[
    "_kwh", "_hours", "_kg", "_ms", "_g", "_percent", "_frac", "_ratio", "_factor", "_f64",
];

impl Rule for LossyCast {
    fn id(&self) -> &'static str {
        "lossy-cast"
    }

    fn summary(&self) -> &'static str {
        "accounting/solver paths must not `as`-cast between float and integer types"
    }

    fn applies_to(&self, path: &str) -> bool {
        (path.starts_with("crates/solver/src/")
            || path.starts_with("crates/core/src/")
            || path.starts_with("crates/grid/src/")
            || path.starts_with("crates/cluster/src/")
            || path.starts_with("crates/sim/src/"))
            && path.ends_with(".rs")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, line) in ctx.masked_lines.iter().enumerate() {
            for at in token_positions(line, "as") {
                let Some(target) = cast_target(line, at) else {
                    continue;
                };
                if target == "f32" {
                    out.push(
                        ctx.diag(
                            i + 1,
                            self.id(),
                            "`as f32` halves the mantissa of an f64 accounting chain — \
                         keep quantities in f64"
                                .to_string(),
                        ),
                    );
                    continue;
                }
                if INT_TYPES.contains(&target) && source_is_floatish(line, at) {
                    out.push(ctx.diag(
                        i + 1,
                        self.id(),
                        format!(
                            "float-to-`{target}` `as` cast truncates toward zero \
                             silently — restructure, or round explicitly and allow \
                             with the rounding contract as the reason"
                        ),
                    ));
                }
            }
        }
    }
}

/// If the `as` token at `at` is a cast to a primitive numeric type, returns
/// that type token.
fn cast_target(line: &str, at: usize) -> Option<&str> {
    let tail = line[at + 2..].trim_start();
    let ty = super::ident_starting_at(tail, 0)?;
    (INT_TYPES.contains(&ty) || ty == "f32").then_some(ty)
}

/// Whether the expression just before the `as` at `at` is textually
/// float-valued.
fn source_is_floatish(line: &str, at: usize) -> bool {
    let head = line[..at].trim_end();
    if head.ends_with(')') {
        // `x.round() as i64` — a float-returning method call; or
        // `(a / b.fract()) as usize` — a group containing a float hint.
        if let Some(open) = matching_open_paren(head) {
            let inner = &head[open + 1..head.len() - 1];
            if let Some(method) = ident_ending_at(head, open) {
                if FLOAT_METHODS.contains(&method) {
                    return true;
                }
                // A call to a non-float method: look no further.
                if head[..open]
                    .trim_end()
                    .ends_with(|c: char| super::is_ident_char(c))
                    && !method.is_empty()
                {
                    return contains_float_hint(inner);
                }
            }
            return contains_float_hint(inner);
        }
        return false;
    }
    // A bare literal or identifier.
    if let Some(token) = ident_ending_at(head, head.len()) {
        return has_float_suffix(token);
    }
    float_literal_ends(head)
}

/// Whether text contains a float literal or a float-suffixed identifier.
fn contains_float_hint(text: &str) -> bool {
    for suffix in FLOAT_SUFFIXES {
        for at in text.match_indices(suffix).map(|(p, _)| p) {
            let end = at + suffix.len();
            let boundary = text[end..]
                .chars()
                .next()
                .is_none_or(|c| !super::is_ident_char(c));
            if boundary {
                return true;
            }
        }
    }
    for m in FLOAT_METHODS {
        if text.contains(&format!(".{m}(")) {
            return true;
        }
    }
    // A numeric literal with a decimal point: `3600.0`, `0.25`.
    text.as_bytes()
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
}

/// Whether an identifier carries a float unit/kind suffix.
fn has_float_suffix(ident: &str) -> bool {
    FLOAT_SUFFIXES
        .iter()
        .any(|s| ident.ends_with(s) && ident.len() > s.len())
}

/// Whether `head` ends in a float literal (`1.5`, `2.`, `1e-3`).
fn float_literal_ends(head: &str) -> bool {
    let tail: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '-' | '+'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let t = tail.trim_start_matches(['-', '+']);
    t.chars().next().is_some_and(|c| c.is_ascii_digit())
        && (t.contains('.') || t.contains('e') || t.contains('E'))
}

/// Byte index of the `(` matching the final `)` of `head`.
fn matching_open_paren(head: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in head.char_indices().rev() {
        match c {
            ')' => depth += 1,
            '(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_to_int_casts_never_fire() {
        assert!(!source_is_floatish("let idx = v as usize", 10));
        assert!(!source_is_floatish("nodes.len() as u32", 12));
    }

    #[test]
    fn float_sources_fire() {
        assert!(source_is_floatish("x.round() as i64", 10));
        assert!(source_is_floatish("carbon_g as u64", 9));
        assert!(source_is_floatish("(total / 3600.0) as usize", 17));
        assert!(float_literal_ends("let x = 1.5"));
        assert!(float_literal_ends("let x = 2e-3"));
        assert!(!float_literal_ends("let x = 15"));
    }

    #[test]
    fn cast_target_recognizes_numeric_primitives_only() {
        assert_eq!(cast_target("x as usize;", 2), Some("usize"));
        assert_eq!(cast_target("x as f32;", 2), Some("f32"));
        assert_eq!(cast_target("x as f64;", 2), None, "widening to f64 is fine");
        assert_eq!(cast_target("x as Box<dyn T>;", 2), None);
    }
}
