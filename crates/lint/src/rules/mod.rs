//! The rule registry: one module per invariant, each encoding a bug class
//! this workspace has already paid for (see the README's invariant catalog).

mod float_order;
mod lock_poison;
mod lossy_cast;
mod ordered_iteration;
mod shim_purity;
mod unit_hygiene;
mod unsafe_free;
mod wall_clock;

use crate::diag::Diagnostic;
use crate::lexer::Comment;

/// Everything a rule may inspect about one `.rs` file.
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// The file verbatim.
    pub original: &'a str,
    /// The file with comments/strings/char literals blanked ([`crate::lexer::mask`]).
    pub masked: &'a str,
    /// `masked`, split into lines (no terminators).
    pub masked_lines: Vec<&'a str>,
    /// `original`, split into lines (no terminators).
    pub original_lines: Vec<&'a str>,
    /// Comments in source order (for suppression parsing — rules themselves
    /// normally work on masked text only).
    pub comments: &'a [Comment],
}

impl<'a> FileContext<'a> {
    /// Builds a diagnostic at `line` (1-based) with the original line as the
    /// excerpt.
    pub fn diag(&self, line: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            path: self.path.to_string(),
            line,
            rule,
            message,
            excerpt: self
                .original_lines
                .get(line.saturating_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        }
    }

    /// 1-based line number of a byte offset into `masked`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.masked[..offset.min(self.masked.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1
    }
}

/// A project-invariant lint rule.
pub trait Rule {
    /// Kebab-case id used in diagnostics, `-D` flags and `lint:allow`.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Whether the rule runs on a workspace-relative `.rs` path.  Path
    /// scoping is part of the invariant: e.g. wall-clock reads are fine in
    /// `bench` but not in decision logic.
    fn applies_to(&self, path: &str) -> bool;
    /// Scans one file and appends findings.
    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>);
    /// Scans one manifest (`Cargo.toml`); most rules don't.
    fn check_manifest(&self, _path: &str, _contents: &str, _out: &mut Vec<Diagnostic>) {}
}

/// The full registry, in diagnostic-output order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_order::FloatOrder),
        Box::new(lock_poison::LockPoison),
        Box::new(ordered_iteration::OrderedIteration),
        Box::new(wall_clock::WallClock),
        Box::new(unit_hygiene::UnitHygiene),
        Box::new(lossy_cast::LossyCast),
        Box::new(unsafe_free::UnsafeFree),
        Box::new(shim_purity::ShimPurity),
    ]
}

/// All rule ids, for `--list-rules` and allow-target validation.
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}

/// Splits an identifier-ish character test shared by several rules.
pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Returns the identifier ending at byte `end` (exclusive) of `line`, if the
/// characters before `end` form one.
pub(crate) fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let head = &line[..end];
    let start = head
        .rfind(|c: char| !is_ident_char(c))
        .map(|p| p + head[p..].chars().next().map_or(1, char::len_utf8))
        .unwrap_or(0);
    let ident = &head[start..];
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then_some(ident)
}

/// Returns the identifier starting at byte `start` of `line`, if any.
pub(crate) fn ident_starting_at(line: &str, start: usize) -> Option<&str> {
    let tail = &line[start..];
    let end = tail.find(|c: char| !is_ident_char(c)).unwrap_or(tail.len());
    let ident = &tail[..end];
    (!ident.is_empty()).then_some(ident)
}

/// Finds every occurrence of `needle` in `hay` that is not embedded in a
/// larger identifier (token match, not substring match).
pub(crate) fn token_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after = at + needle.len();
        let after_ok =
            after >= hay.len() || !is_ident_char(hay[after..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let ids = rule_ids();
        assert_eq!(ids.len(), 8);
        for id in &ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{id}"
            );
        }
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn token_positions_respect_identifier_boundaries() {
        assert_eq!(token_positions("unsafe fn", "unsafe"), vec![0]);
        assert!(token_positions("unsafer fn", "unsafe").is_empty());
        assert!(token_positions("my_unsafe", "unsafe").is_empty());
        assert_eq!(token_positions("a unsafe b unsafe", "unsafe"), vec![2, 11]);
    }

    #[test]
    fn ident_helpers_extract_boundaries() {
        let line = "let carbon_g = energy_kwh * x;";
        assert_eq!(ident_ending_at(line, 12), Some("carbon_g"));
        assert_eq!(ident_starting_at(line, 15), Some("energy_kwh"));
        assert_eq!(ident_ending_at(line, 3), Some("let"));
        assert_eq!(ident_ending_at("  9abc", 6), None);
    }
}
