//! `wall-clock`: no wall-clock or CPU-topology reads in decision logic.
//!
//! The bug class: the repo's core promise is bit-identical results across
//! job counts, warm/cold solver paths, and prepped/cold sweeps.  Anything in
//! `sim`/`solver`/`sweep` that reads `Instant::now`, `SystemTime` or
//! `available_parallelism` has, by construction, an input that differs run
//! to run — a time-based tolerance, a load-dependent heuristic, a
//! CPU-count-dependent grid — and the determinism contract dies quietly.
//! Timing and topology belong to the observer crates (`bench`, the
//! `experiments` binary), which stamp measurements *onto* results after the
//! deterministic engine produced them.

use super::{token_positions, FileContext, Rule};
use crate::diag::Diagnostic;

pub struct WallClock;

const FORBIDDEN: &[(&str, &str)] = &[
    (
        "Instant",
        "wall-clock reads make decision logic timing-dependent — measure in \
         `bench`/`experiments` and stamp results after the run",
    ),
    (
        "SystemTime",
        "wall-clock reads make decision logic timing-dependent — measure in \
         `bench`/`experiments` and stamp results after the run",
    ),
    (
        "available_parallelism",
        "CPU-topology reads make results machine-dependent — take a worker \
         count as an input (`--jobs`) and collect by index",
    ),
];

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn summary(&self) -> &'static str {
        "sim/solver/sweep must not read Instant/SystemTime/available_parallelism"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.starts_with("crates/sim/src/")
            || path.starts_with("crates/solver/src/")
            || path.starts_with("crates/sweep/src/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, line) in ctx.masked_lines.iter().enumerate() {
            for (token, why) in FORBIDDEN {
                if !token_positions(line, token).is_empty() {
                    out.push(ctx.diag(
                        i + 1,
                        self.id(),
                        format!("`{token}` in decision logic: {why}"),
                    ));
                }
            }
        }
    }
}
