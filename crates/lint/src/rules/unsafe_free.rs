//! `unsafe-free`: the workspace is 100% safe Rust — lock that in.
//!
//! The workspace has zero `unsafe` blocks today, and nothing in it (a
//! simulator, a solver, report renderers) justifies one.  This rule makes
//! the property structural: any `unsafe` token is a finding, and every crate
//! root must carry `#![forbid(unsafe_code)]` so the compiler enforces the
//! same thing even when the linter is not running (belt and braces with the
//! `[workspace.lints]` table in the root manifest).

use super::{token_positions, FileContext, Rule};
use crate::diag::Diagnostic;

pub struct UnsafeFree;

impl Rule for UnsafeFree {
    fn id(&self) -> &'static str {
        "unsafe-free"
    }

    fn summary(&self) -> &'static str {
        "no unsafe code anywhere; every crate root must #![forbid(unsafe_code)]"
    }

    fn applies_to(&self, path: &str) -> bool {
        path.ends_with(".rs")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, line) in ctx.masked_lines.iter().enumerate() {
            if !token_positions(line, "unsafe").is_empty() {
                out.push(ctx.diag(
                    i + 1,
                    self.id(),
                    "`unsafe` in a workspace that is contractually 100% safe Rust".to_string(),
                ));
            }
        }
        if is_crate_root(ctx.path) && !forbids_unsafe(ctx.masked) {
            out.push(
                ctx.diag(
                    1,
                    self.id(),
                    "crate root is missing `#![forbid(unsafe_code)]` — the compiler \
                 must enforce the safe-Rust contract even without the linter"
                        .to_string(),
                ),
            );
        }
    }
}

/// Whether a path is a crate root (`crates/<name>/src/lib.rs`).
fn is_crate_root(path: &str) -> bool {
    let mut parts = path.split('/');
    matches!(
        (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next()
        ),
        (Some("crates"), Some(_), Some("src"), Some("lib.rs"), None)
    )
}

/// Whether the masked source carries the crate-level forbid attribute
/// (whitespace-tolerant).
fn forbids_unsafe(masked: &str) -> bool {
    let squashed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.contains("#![forbid(unsafe_code)]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_are_lib_rs_directly_under_src() {
        assert!(is_crate_root("crates/sim/src/lib.rs"));
        assert!(!is_crate_root("crates/sim/src/cdn.rs"));
        assert!(!is_crate_root("crates/sim/src/nested/lib.rs"));
        assert!(!is_crate_root("shims/rand/src/lib.rs"));
    }

    #[test]
    fn forbid_attribute_detection_tolerates_spacing() {
        assert!(forbids_unsafe("#![forbid(unsafe_code)]\npub mod x;"));
        assert!(forbids_unsafe("#![forbid( unsafe_code )]"));
        assert!(!forbids_unsafe("#![deny(unsafe_code)]"));
        assert!(!forbids_unsafe("pub mod x;"));
    }
}
