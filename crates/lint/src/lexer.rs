//! A minimal Rust lexer that separates *code* from *non-code*.
//!
//! Every rule in this linter is a textual pattern over source code, so the
//! first thing the engine does to a file is **mask** it: comments, string
//! literals and char literals are replaced with spaces (newlines are kept),
//! producing a same-shape text in which a pattern match can only come from
//! real code.  Without this, a doc comment quoting `.partial_cmp(` or a test
//! asserting on the literal string `"HashMap"` would fire rules — including
//! this crate's own sources, which are full of such strings.
//!
//! Comments are not discarded: they are collected per starting line so the
//! engine can parse `// lint:allow(rule): reason` suppressions out of them.
//!
//! The lexer understands the token shapes that matter for masking:
//!
//! * `//` line comments and nested `/* ... */` block comments;
//! * `"..."` strings with escapes, byte strings `b"..."`, and raw strings
//!   `r"..."` / `r#"..."#` (any hash depth, with the `br` prefix too);
//! * char literals `'x'`, `'\n'`, `'\u{1F600}'` — disambiguated from
//!   lifetimes (`'a`, `'static`, `'_`), which are plain code.

/// A comment extracted during masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// The comment text without its `//` / `/*` delimiters, trimmed.
    pub text: String,
}

/// The result of masking one source file.
#[derive(Debug, Clone)]
pub struct MaskedSource {
    /// The source with comment/string/char-literal *contents* blanked to
    /// spaces.  Newlines are preserved, so line numbers in the masked text
    /// agree with the original exactly.  String delimiters themselves are
    /// blanked too — a masked line holds only code tokens.
    pub masked: String,
    /// All comments, in source order, for suppression parsing.
    pub comments: Vec<Comment>,
}

/// Masks `source`: see the module docs.
pub fn mask(source: &str) -> MaskedSource {
    let chars: Vec<char> = source.chars().collect();
    let mut masked = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a char as-is (code) and tracks lines.
    macro_rules! keep {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
            }
            masked.push($c);
        }};
    }
    // Pushes the blanked form of a char and tracks lines.
    macro_rules! blank {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                masked.push('\n');
            } else {
                masked.push(' ');
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            let trimmed = text.trim_start_matches('/').trim();
            comments.push(Comment {
                line: start_line,
                text: trimmed.to_string(),
            });
            continue;
        }

        // Block comment (nested).
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    depth += 1;
                    blank!(c);
                    blank!('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    depth -= 1;
                    blank!(c);
                    blank!('/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(c);
                    blank!(c);
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: text.trim().to_string(),
            });
            continue;
        }

        // Raw / byte string prefixes: r", r#", br", b" (and their raw-hash
        // forms).  `c` must not be part of an identifier (`shr"x"` is not a
        // raw string) — check the previous char.
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || c == 'b') {
            let (skip, is_raw) = raw_string_prefix(&chars[i..]);
            if skip > 0 {
                // Blank the prefix and delimiter, then the body.
                let hashes = if is_raw {
                    chars[i..i + skip].iter().filter(|&&h| h == '#').count()
                } else {
                    0
                };
                for k in 0..skip {
                    blank!(chars[i + k]);
                }
                i += skip;
                if is_raw {
                    i = blank_raw_string_body(&chars, i, hashes, &mut masked, &mut line);
                } else {
                    i = blank_escaped_string_body(&chars, i, &mut masked, &mut line);
                }
                continue;
            }
        }

        // Ordinary string.
        if c == '"' {
            blank!(c);
            i += 1;
            i = blank_escaped_string_body(&chars, i, &mut masked, &mut line);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(len) = char_literal_len(&chars[i..]) {
                for k in 0..len {
                    blank!(chars[i + k]);
                }
                i += len;
                continue;
            }
            // A lifetime: keep the quote and fall through.
        }

        keep!(c);
        i += 1;
    }

    MaskedSource { masked, comments }
}

/// If `chars` starts a raw/byte string prefix (`r`, `r#...#`, `b`, `br#...`),
/// returns `(prefix_len_including_opening_quote, is_raw)`; `(0, _)` otherwise.
fn raw_string_prefix(chars: &[char]) -> (usize, bool) {
    let mut j = 0;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    if chars.get(j) == Some(&'"') {
        // `b"` is an escaped (non-raw) byte string; only count it here when
        // there is a prefix at all (plain `"` is handled by the caller).
        if j == 0 {
            (0, false)
        } else {
            (j + 1, raw)
        }
    } else {
        (0, false)
    }
}

/// Blanks an escaped (non-raw) string body starting *after* the opening
/// quote; returns the index just past the closing quote.
fn blank_escaped_string_body(
    chars: &[char],
    mut i: usize,
    masked: &mut String,
    line: &mut usize,
) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            for k in 0..2 {
                blank_char(chars[i + k], masked, line);
            }
            i += 2;
            continue;
        }
        blank_char(c, masked, line);
        i += 1;
        if c == '"' {
            break;
        }
    }
    i
}

/// Blanks a raw string body (terminated by `"` followed by `hashes` `#`s)
/// starting *after* the opening delimiter; returns the index past the close.
fn blank_raw_string_body(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    masked: &mut String,
    line: &mut usize,
) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c == '"' && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes {
            for k in 0..=hashes {
                blank_char(chars[i + k], masked, line);
            }
            return i + hashes + 1;
        }
        blank_char(c, masked, line);
        i += 1;
    }
    i
}

fn blank_char(c: char, masked: &mut String, line: &mut usize) {
    if c == '\n' {
        *line += 1;
        masked.push('\n');
    } else {
        masked.push(' ');
    }
}

/// If `chars` (starting at a `'`) is a char literal, returns its length in
/// chars; `None` for a lifetime.
fn char_literal_len(chars: &[char]) -> Option<usize> {
    debug_assert_eq!(chars.first(), Some(&'\''));
    match chars.get(1)? {
        // Escape: consume to the closing quote ('\n', '\u{..}', '\'').
        '\\' => {
            let mut j = 2;
            // Skip the escaped char (it may itself be a quote).
            j += 1;
            if chars.get(2) == Some(&'u') && chars.get(3) == Some(&'{') {
                while chars.get(j).is_some_and(|&c| c != '}') {
                    j += 1;
                }
                j += 1; // '}'
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1)
        }
        // `'a'` is a char literal; `'a` / `'static` / `'_` are lifetimes.
        c if c.is_alphanumeric() || *c == '_' => (chars.get(2) == Some(&'\'')).then_some(3),
        // Any other single char: `'+'`, `' '`, `'('` ...
        _ => (chars.get(2) == Some(&'\'')).then_some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_collected() {
        let src = "let a = 1; // partial_cmp here\nlet b = 2;\n";
        let m = mask(src);
        assert!(!m.masked.contains("partial_cmp"));
        assert!(m.masked.contains("let a = 1;"));
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].line, 1);
        assert_eq!(m.comments[0].text, "partial_cmp here");
    }

    #[test]
    fn nested_block_comments_mask_to_spaces() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let m = mask(src);
        assert!(m.masked.starts_with("a "));
        assert!(m.masked.trim_end().ends_with('b'));
        assert!(!m.masked.contains("inner"));
        assert_eq!(m.comments.len(), 1);
    }

    #[test]
    fn strings_are_blanked_but_code_survives() {
        let src = r#"let s = "HashMap::new()"; let t = map.len();"#;
        let m = mask(src);
        assert!(!m.masked.contains("HashMap"));
        assert!(m.masked.contains("map.len()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_the_string() {
        let src = r#"let s = "he said \"partial_cmp\""; code();"#;
        let m = mask(src);
        assert!(!m.masked.contains("partial_cmp"));
        assert!(m.masked.contains("code()"));
    }

    #[test]
    fn raw_strings_of_any_hash_depth_are_blanked() {
        let src = "let s = r#\"unsafe \" still in\"#; after();\nlet t = r\"x\"; tail();";
        let m = mask(src);
        assert!(!m.masked.contains("unsafe"));
        assert!(m.masked.contains("after()"));
        assert!(m.masked.contains("tail()"));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_blanked() {
        let src = "let s = b\"unsafe\"; let c = b'x'; done();";
        let m = mask(src);
        assert!(!m.masked.contains("unsafe"));
        assert!(m.masked.contains("done()"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let n = '\\n'; 'y' }";
        let m = mask(src);
        assert!(m.masked.contains("<'a>"));
        assert!(m.masked.contains("&'a str"));
        assert!(!m.masked.contains("'x'"));
        assert!(!m.masked.contains("'y'"));
    }

    #[test]
    fn unicode_escapes_in_char_literals() {
        let src = "let c = '\\u{1F600}'; rest();";
        let m = mask(src);
        assert!(!m.masked.contains("1F600"));
        assert!(m.masked.contains("rest()"));
    }

    #[test]
    fn newlines_and_line_numbers_are_preserved() {
        let src = "line1\n/* spans\ntwo lines */\nline4 // tail\n";
        let m = mask(src);
        assert_eq!(m.masked.matches('\n').count(), src.matches('\n').count());
        assert_eq!(m.comments.len(), 2);
        assert_eq!(m.comments[0].line, 2);
        assert_eq!(m.comments[1].line, 4);
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let src = "let var_r = 1; let s = var\"x\";";
        // `var"x"` is not valid Rust but must not confuse the prefix scan
        // into eating code.
        let m = mask(src);
        assert!(m.masked.contains("let var_r = 1;"));
    }
}
