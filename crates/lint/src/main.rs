#![forbid(unsafe_code)]
//! `carbonedge-lint` — the workspace invariant linter CLI.
//!
//! ```text
//! carbonedge-lint --workspace [-D all | -D <rule>]... [--format json]
//! carbonedge-lint <path>... [-D ...] [--format json]
//! carbonedge-lint --list-rules
//! ```
//!
//! Exit status: 0 when no denied finding fired (findings still print as
//! warnings), 1 when a denied rule fired, 2 on usage or I/O errors.  CI
//! runs `--workspace -D all`.

use carbonedge_lint::{all_rules, render, Diagnostic, OutputFormat};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    workspace: bool,
    paths: Vec<PathBuf>,
    deny_all: bool,
    deny: Vec<String>,
    format: OutputFormat,
    list_rules: bool,
}

const USAGE: &str = "usage: carbonedge-lint [--workspace | <path>...] \
                     [-D all | -D <rule>]... [--format json|human] [--list-rules]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        paths: Vec::new(),
        deny_all: false,
        deny: Vec::new(),
        format: OutputFormat::Human,
        list_rules: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => opts.workspace = true,
            "--list-rules" => opts.list_rules = true,
            "-D" | "--deny" => {
                i += 1;
                let value = args.get(i).ok_or("-D requires a rule id or `all`")?;
                if value == "all" {
                    opts.deny_all = true;
                } else {
                    opts.deny.push(value.clone());
                }
            }
            "--format" => {
                i += 1;
                opts.format = match args.get(i).map(String::as_str) {
                    Some("json") => OutputFormat::Json,
                    Some("human") => OutputFormat::Human,
                    other => {
                        return Err(format!("--format expects `json` or `human`, got {other:?}"))
                    }
                };
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    // Deny targets must be real rules, or typos silently gate nothing.
    let known = carbonedge_lint::rule_ids();
    for rule in &opts.deny {
        if !known.contains(&rule.as_str()) && rule != carbonedge_lint::BAD_ALLOW {
            return Err(format!(
                "-D names unknown rule `{rule}`; known: {}",
                known.join(", ")
            ));
        }
    }
    if !opts.list_rules && !opts.workspace && opts.paths.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in all_rules() {
            println!("{:<18} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().expect("current directory is readable");
    let Some(root) = carbonedge_lint::find_workspace_root(&cwd) else {
        eprintln!("error: no workspace root (a Cargo.toml with [workspace]) above {cwd:?}");
        return ExitCode::from(2);
    };

    let mut findings: Vec<Diagnostic> = Vec::new();
    if opts.workspace {
        match carbonedge_lint::lint_workspace(&root) {
            Ok(found) => findings.extend(found),
            Err(err) => {
                eprintln!("error: walking the workspace failed: {err}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &opts.paths {
        match lint_one(&root, &cwd, path) {
            Ok(found) => findings.extend(found),
            Err(err) => {
                eprintln!("error: {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    print!("{}", render(&findings, opts.format));

    let denied = findings
        .iter()
        .any(|d| opts.deny_all || opts.deny.iter().any(|r| r == d.rule));
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Lints one explicitly-named file, resolving its workspace-relative path so
/// rule scoping applies exactly as in `--workspace` mode.
fn lint_one(root: &Path, cwd: &Path, path: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let absolute = if path.is_absolute() {
        path.to_path_buf()
    } else {
        cwd.join(path)
    };
    let absolute = absolute.canonicalize()?;
    let rel = carbonedge_lint::engine::relative_path(root, &absolute);
    let contents = std::fs::read_to_string(&absolute)?;
    Ok(if rel.ends_with("Cargo.toml") {
        carbonedge_lint::lint_manifest(&rel, &contents)
    } else {
        carbonedge_lint::lint_source(&rel, &contents)
    })
}
