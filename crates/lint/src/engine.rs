//! The lint engine: file walking, suppression handling, rule dispatch.

use crate::diag::Diagnostic;
use crate::lexer::{mask, Comment};
use crate::rules::{all_rules, rule_ids, FileContext, Rule};
use std::path::{Path, PathBuf};

/// Pseudo-rule id for malformed suppressions.  Not suppressible: an allow
/// that cannot state its reason is exactly the kind of entry the mandatory
/// reason exists to prevent.
pub const BAD_ALLOW: &str = "bad-allow";

/// A parsed `// lint:allow(rule, ...): reason` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line of the comment; the allow covers this line and the next.
    pub line: usize,
    /// Rule ids it suppresses.
    pub rules: Vec<String>,
}

/// Parses suppressions out of a file's comments.  A suppression must be the
/// whole comment — the text begins with `lint:allow` — so prose that merely
/// *mentions* the syntax (like these docs) never parses.  Malformed allows
/// (missing reason, unknown rule, broken syntax) come back as [`BAD_ALLOW`]
/// diagnostics instead of silently suppressing nothing.
pub fn parse_allows(
    path: &str,
    comments: &[Comment],
    original_lines: &[&str],
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let known = rule_ids();
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let mut diag = |line: usize, message: String| {
        bad.push(Diagnostic {
            path: path.to_string(),
            line,
            rule: BAD_ALLOW,
            message,
            excerpt: original_lines
                .get(line.saturating_sub(1))
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };
    for comment in comments {
        if !comment.text.starts_with("lint:allow") {
            continue;
        }
        let rest = comment.text["lint:allow".len()..].trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            diag(
                comment.line,
                "malformed suppression: expected `lint:allow(rule, ...): reason`".to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            diag(
                comment.line,
                "malformed suppression: unclosed rule list in `lint:allow(...)`".to_string(),
            );
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            diag(
                comment.line,
                "suppression allows no rules: name at least one rule id".to_string(),
            );
            continue;
        }
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !known.contains(&r.as_str()))
            .collect();
        if !unknown.is_empty() {
            diag(
                comment.line,
                format!(
                    "suppression names unknown rule(s) {}: known rules are {}",
                    unknown
                        .iter()
                        .map(|r| format!("`{r}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    known.join(", ")
                ),
            );
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diag(
                comment.line,
                "suppression without a reason: write `lint:allow(rule): <why this \
                 site is exempt>` — the reason is the audit trail"
                    .to_string(),
            );
            continue;
        }
        allows.push(Allow {
            line: comment.line,
            rules,
        });
    }
    (allows, bad)
}

/// Lints one `.rs` source under a workspace-relative `path` with the full
/// rule registry.  Suppressions are applied; malformed suppressions are
/// findings themselves.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source_with(path, source, &all_rules())
}

/// [`lint_source`] against an explicit rule set (fixture tests use this to
/// run a single rule).
pub fn lint_source_with(path: &str, source: &str, rules: &[Box<dyn Rule>]) -> Vec<Diagnostic> {
    let masked = mask(source);
    let masked_lines: Vec<&str> = masked.masked.lines().collect();
    let original_lines: Vec<&str> = source.lines().collect();
    let ctx = FileContext {
        path,
        original: source,
        masked: &masked.masked,
        masked_lines,
        original_lines,
        comments: &masked.comments,
    };

    let mut findings = Vec::new();
    for rule in rules {
        if rule.applies_to(path) {
            rule.check(&ctx, &mut findings);
        }
    }

    let (allows, mut bad) = parse_allows(path, &masked.comments, &ctx.original_lines);
    findings.retain(|d| {
        !allows.iter().any(|a| {
            (a.line == d.line || a.line + 1 == d.line) && a.rules.iter().any(|r| r == d.rule)
        })
    });
    findings.append(&mut bad);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Lints one manifest (`Cargo.toml`) under a workspace-relative `path`.
pub fn lint_manifest(path: &str, contents: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    for rule in all_rules() {
        rule.check_manifest(path, contents, &mut findings);
    }
    findings
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints every `crates/**/*.rs` and `crates/**/Cargo.toml` under `root`,
/// returning findings sorted by (path, line, rule).  The linter's own rule
/// fixtures (`crates/lint/tests/fixtures/`) are deliberately-firing inputs
/// and are skipped.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_files(&root.join("crates"), &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    for file in files {
        let rel = relative_path(root, &file);
        if rel.starts_with("crates/lint/tests/fixtures/") {
            continue;
        }
        let contents = std::fs::read_to_string(&file)?;
        if rel.ends_with(".rs") {
            findings.extend(lint_source(&rel, &contents));
        } else {
            findings.extend(lint_manifest(&rel, &contents));
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Recursively collects `.rs` and `Cargo.toml` files, skipping `target`.
fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_files(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// `file` relative to `root`, with forward slashes.
pub fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_with_reason_suppresses_same_line() {
        let src = "fn f(a: f64, b: f64) {\n    a.partial_cmp(&b); // lint:allow(float-order): exercising the comparison API itself\n}\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn preceding_line_allow_suppresses_next_line() {
        let src = "// lint:allow(float-order): exercising the comparison API itself\nlet c = a.partial_cmp(&b);\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_without_reason_is_itself_a_finding() {
        let src = "let c = a.partial_cmp(&b); // lint:allow(float-order)\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        let rules: Vec<&str> = findings.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&BAD_ALLOW), "{findings:?}");
        assert!(
            rules.contains(&"float-order"),
            "a malformed allow must not suppress: {findings:?}"
        );
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let src = "let x = 1; // lint:allow(no-such-rule): because\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, BAD_ALLOW);
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn allow_covers_only_its_own_rule() {
        let src = "// lint:allow(lock-poison): wrong rule named\nlet c = a.partial_cmp(&b);\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "float-order");
    }

    #[test]
    fn multi_rule_allow_suppresses_both() {
        let src = "// lint:allow(float-order, unsafe-free): fixture exercising both\nlet c = unsafe { a.partial_cmp(&b) };\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn workspace_root_is_found_from_nested_dirs() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }
}
