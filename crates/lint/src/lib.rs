#![forbid(unsafe_code)]
//! `carbonedge-lint`: the workspace invariant linter.
//!
//! This crate turns the determinism and accounting contracts the repo has
//! so far defended by review — bit-identical results across job counts,
//! warm/cold solver paths and prepped/cold sweeps; carbon accounting that
//! never silently mixes or truncates units — into enforced static checks
//! that run on every push (`cargo run -p carbonedge-lint -- --workspace -D all`).
//!
//! The analyzer is deliberately self-contained and source-level: a small
//! Rust lexer ([`lexer`]) blanks comments/strings/char literals so rules
//! match only real code, a rule registry ([`rules`]) encodes ~8
//! project-specific invariants with per-rule path scoping, and the engine
//! ([`engine`]) walks `crates/**`, applies
//! `// lint:allow(rule): reason` suppressions (the reason is mandatory —
//! every exemption is an audit-trail entry), and renders human or JSON
//! diagnostics ([`diag`]).
//!
//! Each rule exists because the bug class already shipped once, or because
//! the workspace holds a property worth locking in; see the README's
//! "Static analysis & invariant catalog" for the per-rule history and the
//! "Adding a lint rule" recipe.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{render, Diagnostic, OutputFormat};
pub use engine::{
    find_workspace_root, lint_manifest, lint_source, lint_source_with, lint_workspace, BAD_ALLOW,
};
pub use rules::{all_rules, rule_ids, Rule};
