//! Diagnostics: what a rule reports and how it is printed.

/// One finding: a rule firing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes (stable across OSes,
    /// suitable for golden output).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (kebab-case, e.g. `float-order`).
    pub rule: &'static str,
    /// What is wrong and what the fix is.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl Diagnostic {
    /// The human-readable single-finding rendering:
    /// `path:line: [rule] message` plus an indented excerpt.
    pub fn human(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }

    /// The machine-readable rendering: one JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"message\":{},\"excerpt\":{}}}",
            json_string(&self.path),
            self.line,
            json_string(self.rule),
            json_string(&self.message),
            json_string(&self.excerpt),
        )
    }
}

/// Renders a full finding list in the requested format, ready to print.
pub fn render(diags: &[Diagnostic], format: OutputFormat) -> String {
    match format {
        OutputFormat::Human => {
            let mut out = String::new();
            for d in diags {
                out.push_str(&d.human());
                out.push('\n');
            }
            out.push_str(&format!(
                "{} finding{}\n",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            ));
            out
        }
        OutputFormat::Json => {
            let mut out = String::from("[");
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str("  ");
                out.push_str(&d.json());
            }
            out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
            out
        }
    }
}

/// Output format selector for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `path:line: [rule] message` with excerpts (the default).
    Human,
    /// A JSON array of finding objects.
    Json,
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            path: "crates/sim/src/cdn.rs".into(),
            line: 42,
            rule: "float-order",
            message: "use total_cmp".into(),
            excerpt: "a.partial_cmp(&b)".into(),
        }
    }

    #[test]
    fn human_format_has_location_rule_and_excerpt() {
        let h = sample().human();
        assert!(h.starts_with("crates/sim/src/cdn.rs:42: [float-order] "));
        assert!(h.contains("\n    a.partial_cmp(&b)"));
    }

    #[test]
    fn json_escapes_quotes_and_is_well_formed() {
        let mut d = sample();
        d.message = "say \"no\"\nplease".into();
        let j = d.json();
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\\n"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn render_counts_findings() {
        let out = render(&[sample(), sample()], OutputFormat::Human);
        assert!(out.ends_with("2 findings\n"));
        let empty = render(&[], OutputFormat::Json);
        assert_eq!(empty, "[]\n");
    }
}
