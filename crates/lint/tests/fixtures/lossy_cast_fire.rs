// Fixture: a float-to-int `as` cast truncates toward zero silently.
pub fn budget_units(carbon_g: f64) -> u64 {
    carbon_g as u64
}
