// Fixture: total_cmp gives a total order — NaN-safe and deterministic.
pub fn best(xs: &[f64]) -> Option<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    v.first().copied()
}
