// Fixture: adding grams to kilowatt-hours is a unit error no type checks.
pub fn total(carbon_g: f64, energy_kwh: f64) -> f64 {
    carbon_g + energy_kwh
}
