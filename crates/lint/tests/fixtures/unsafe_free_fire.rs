// Fixture: an unsafe block, in a crate root that also forgot the
// forbid(unsafe_code) attribute — both findings fire.
pub fn peek(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
