// Fixture: iterating a HashMap into rendered output leaks randomized
// hash order into the report text.
use std::collections::HashMap;

pub fn render(rows: &[(String, f64)]) -> String {
    let mut totals: HashMap<String, f64> = HashMap::new();
    for (zone, carbon) in rows {
        *totals.entry(zone.clone()).or_insert(0.0) += carbon;
    }
    let mut out = String::new();
    for (zone, carbon) in &totals {
        out.push_str(&format!("{zone}: {carbon:.1}\n"));
    }
    out
}
