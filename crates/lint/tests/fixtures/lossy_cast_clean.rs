// Fixture: integer-width casts carry no fractional loss and never fire.
pub fn index_width(count: usize) -> u32 {
    count as u32
}
