// Fixture: a clock read inside decision logic makes results
// timing-dependent.
pub fn elapsed_guess() -> f64 {
    let started = std::time::Instant::now();
    std::hint::black_box(());
    started.elapsed().as_secs_f64()
}
