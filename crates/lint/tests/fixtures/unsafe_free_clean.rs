#![forbid(unsafe_code)]
// Fixture: a crate root that carries the compiler-level guarantee.
pub fn peek(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}
