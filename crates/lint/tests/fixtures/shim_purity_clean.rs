// Fixture: crates name dependencies; only the root manifest decides
// whether they resolve to a registry crate or an offline stand-in.
use std::collections::BTreeMap;

pub fn zones() -> BTreeMap<&'static str, f64> {
    BTreeMap::new()
}
