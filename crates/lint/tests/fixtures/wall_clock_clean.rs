// Fixture: decision logic takes timing as data; a measuring caller at the
// bench edge stamps it after the run.
pub struct RunStats {
    pub wall_seconds: f64,
}

pub fn stamp(stats: &mut RunStats, wall_seconds: f64) {
    stats.wall_seconds = wall_seconds;
}
