// Fixture: partial_cmp on floats — NaN panics or silent misordering.
pub fn best(xs: &[f64]) -> Option<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.first().copied()
}
