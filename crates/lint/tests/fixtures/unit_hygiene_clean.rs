// Fixture: a conversion factor makes the units line up — the
// multiplicative context exempts the sum.
pub fn total(carbon_g: f64, energy_kwh: f64, intensity_g_per_kwh: f64) -> f64 {
    carbon_g + energy_kwh * intensity_g_per_kwh
}
