// Fixture: reaching around the workspace seam to shim sources pins the
// crate to the offline stand-in forever.
#[path = "../../../shims/rand/src/lib.rs"]
mod rand_shim;
