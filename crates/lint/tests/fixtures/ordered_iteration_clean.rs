// Fixture: a BTreeMap iterates in key order — rendering is deterministic.
use std::collections::BTreeMap;

pub fn render(rows: &[(String, f64)]) -> String {
    let mut totals: BTreeMap<String, f64> = BTreeMap::new();
    for (zone, carbon) in rows {
        *totals.entry(zone.clone()).or_insert(0.0) += carbon;
    }
    let mut out = String::new();
    for (zone, carbon) in &totals {
        out.push_str(&format!("{zone}: {carbon:.1}\n"));
    }
    out
}
