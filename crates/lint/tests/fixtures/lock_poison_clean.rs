// Fixture: recover the still-sound data from a poisoned lock.
use std::sync::{Mutex, PoisonError};

pub fn read(counter: &Mutex<u64>) -> u64 {
    *counter.lock().unwrap_or_else(PoisonError::into_inner)
}
