// Fixture: a bare .lock().unwrap() cascades a poisoned mutex into every
// caller.
use std::sync::Mutex;

pub fn read(counter: &Mutex<u64>) -> u64 {
    *counter.lock().unwrap()
}
