//! Per-rule fixture pairs: every rule must fire on its `_fire.rs` fixture
//! and stay completely quiet on its `_clean.rs` twin.
//!
//! Fixtures are data, not compiled code — they live under
//! `tests/fixtures/` (which `lint_workspace` skips) and are fed to
//! [`lint_source`] under a *virtual* workspace-relative path chosen to land
//! inside the rule's scope, so path-scoped rules are exercised exactly as
//! in a real `--workspace` run.

use carbonedge_lint::{lint_source, BAD_ALLOW};
use std::path::Path;

/// (rule id, fire fixture, clean fixture, virtual path inside the rule's scope)
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "float-order",
        "float_order_fire.rs",
        "float_order_clean.rs",
        "crates/solver/src/fx.rs",
    ),
    (
        "lock-poison",
        "lock_poison_fire.rs",
        "lock_poison_clean.rs",
        "crates/sim/src/fx.rs",
    ),
    (
        "ordered-iteration",
        "ordered_iteration_fire.rs",
        "ordered_iteration_clean.rs",
        "crates/analysis/src/fx.rs",
    ),
    (
        "wall-clock",
        "wall_clock_fire.rs",
        "wall_clock_clean.rs",
        "crates/sweep/src/fx.rs",
    ),
    (
        "unit-hygiene",
        "unit_hygiene_fire.rs",
        "unit_hygiene_clean.rs",
        "crates/core/src/fx.rs",
    ),
    (
        "lossy-cast",
        "lossy_cast_fire.rs",
        "lossy_cast_clean.rs",
        "crates/solver/src/fx.rs",
    ),
    (
        "unsafe-free",
        "unsafe_free_fire.rs",
        "unsafe_free_clean.rs",
        "crates/core/src/lib.rs",
    ),
    (
        "shim-purity",
        "shim_purity_fire.rs",
        "shim_purity_clean.rs",
        "crates/core/src/fx.rs",
    ),
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

#[test]
fn every_rule_has_a_firing_and_a_clean_fixture() {
    for (rule, fire, clean, path) in CASES {
        let findings = lint_source(path, &fixture(fire));
        assert!(
            findings.iter().any(|d| d.rule == *rule),
            "{fire} under {path} must fire `{rule}`, got: {findings:?}"
        );

        let findings = lint_source(path, &fixture(clean));
        assert!(
            findings.is_empty(),
            "{clean} under {path} must produce no findings at all, got: {findings:?}"
        );
    }
}

#[test]
fn fixture_findings_carry_location_and_excerpt() {
    let findings = lint_source("crates/solver/src/fx.rs", &fixture("float_order_fire.rs"));
    let hit = findings
        .iter()
        .find(|d| d.rule == "float-order")
        .expect("float-order fires on its fixture");
    assert_eq!(hit.path, "crates/solver/src/fx.rs");
    assert!(hit.line > 0);
    assert!(
        hit.excerpt.contains("partial_cmp"),
        "excerpt shows the offending line: {hit:?}"
    );
}

#[test]
fn an_allow_with_a_reason_silences_a_fixture_finding() {
    let fire = fixture("lock_poison_fire.rs");
    let suppressed = fire.replace(
        "*counter.lock().unwrap()",
        "// lint:allow(lock-poison): fixture exercising the suppression path\n    *counter.lock().unwrap()",
    );
    assert_ne!(fire, suppressed, "the replacement site must exist");
    let findings = lint_source("crates/sim/src/fx.rs", &suppressed);
    assert!(
        findings.is_empty(),
        "a reasoned allow silences the finding: {findings:?}"
    );
}

#[test]
fn an_allow_without_a_reason_is_itself_an_error_and_suppresses_nothing() {
    let fire = fixture("lock_poison_fire.rs");
    let suppressed = fire.replace(
        "*counter.lock().unwrap()",
        "// lint:allow(lock-poison)\n    *counter.lock().unwrap()",
    );
    let findings = lint_source("crates/sim/src/fx.rs", &suppressed);
    let rules: Vec<&str> = findings.iter().map(|d| d.rule).collect();
    assert!(
        rules.contains(&BAD_ALLOW),
        "a reasonless allow is a finding: {findings:?}"
    );
    assert!(
        rules.contains(&"lock-poison"),
        "a reasonless allow must not suppress: {findings:?}"
    );
}

#[test]
fn rules_respect_their_path_scope() {
    // The same wall-clock read is a finding inside the sweep engine and
    // legitimate at the bench edge, where measurement belongs.
    let fire = fixture("wall_clock_fire.rs");
    let in_scope = lint_source("crates/sweep/src/fx.rs", &fire);
    assert!(in_scope.iter().any(|d| d.rule == "wall-clock"));
    let out_of_scope = lint_source("crates/bench/src/fx.rs", &fire);
    assert!(
        out_of_scope.iter().all(|d| d.rule != "wall-clock"),
        "bench may read the clock: {out_of_scope:?}"
    );
}
