//! The self-check: the workspace this linter ships in must lint clean.
//!
//! This is the same walk CI's `lint-invariants` job performs
//! (`cargo run -p carbonedge-lint -- --workspace -D all`), run as a plain
//! test so `cargo test` alone catches a regression — a reintroduced
//! wall-clock read, a bare lock unwrap, a crate missing
//! `#![forbid(unsafe_code)]`, or a suppression that lost its reason.

use carbonedge_lint::{find_workspace_root, lint_workspace, render, OutputFormat};
use std::path::Path;

#[test]
fn the_workspace_itself_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("a [workspace] manifest above crates/lint");
    let findings = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; fix or `lint:allow` (with a reason) each of:\n{}",
        render(&findings, OutputFormat::Human)
    );
}

#[test]
fn the_workspace_walk_covers_every_crate() {
    // Guard against the walker silently skipping crates: collecting zero
    // findings is only meaningful if the walk actually visited the tree.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    for member in [
        "geo", "grid", "net", "datasets", "workload", "solver", "core", "cluster", "analysis",
        "sim", "sweep", "bench", "lint",
    ] {
        assert!(
            root.join("crates").join(member).join("Cargo.toml").exists(),
            "expected workspace member crates/{member} is missing — update this list \
             and the linter's coverage expectations together"
        );
    }
}
