#![forbid(unsafe_code)]
//! Edge workloads for CarbonEdge.
//!
//! The paper evaluates two compute-intensive edge workloads: a CPU-based
//! sensor-data-processing application ("Sci") and GPU model-serving
//! applications (EfficientNetB0, ResNet50, YOLOv4) profiled on three device
//! types (Jetson Orin Nano, NVIDIA A2, GTX 1080); see Figure 7 and
//! Section 6.1.  This crate provides:
//!
//! * the profiled per-request energy, memory, and inference-time table
//!   ([`profiles`]),
//! * application descriptions with resource demands, request rates and
//!   latency SLOs ([`app`]),
//! * arrival processes and demand models used by the CDN-scale experiments
//!   ([`generator`]),
//! * deterministic per-(app, site) request streams for the event-level
//!   serving engine ([`stream`]).

pub mod app;
pub mod generator;
pub mod profiles;
pub mod stream;

pub use app::{AppId, Application, ResourceDemand, ResourceKind, RESOURCE_KINDS};
pub use generator::{
    sample_standard_normal, splitmix64, ArrivalProcess, DemandModel, WorkloadGenerator,
};
pub use profiles::{DeviceKind, ModelKind, WorkloadProfile};
pub use stream::{RequestStream, StreamScratch};
