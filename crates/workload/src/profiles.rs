//! Profiled workload characteristics across device types (Figure 7).
//!
//! The paper profiles three ML models on three edge accelerators and reports
//! per-inference energy (10⁻³–10¹ J, up to 45× across models on the same
//! device and ~2× across devices for the same model), GPU memory (up to
//! ~500 MB) and inference time (up to ~40 ms).  The numbers below reproduce
//! those orders of magnitude; they are the "profiling service" data that the
//! placement service consumes.

use serde::{Deserialize, Serialize};

/// The edge device (accelerator) types used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA Jetson Orin Nano: 1024 CUDA cores, 8 GB, 15 W.
    OrinNano,
    /// NVIDIA A2: 1280 CUDA cores, 16 GB, 60 W.
    A2,
    /// NVIDIA GTX 1080: 2560 CUDA cores, 8 GB, 180 W.
    Gtx1080,
    /// A 40-core Xeon E5-2660v3 CPU server (the testbed's CPU path).
    XeonCpu,
}

impl DeviceKind {
    /// All device kinds in a stable order.
    pub const ALL: [DeviceKind; 4] = [
        DeviceKind::OrinNano,
        DeviceKind::A2,
        DeviceKind::Gtx1080,
        DeviceKind::XeonCpu,
    ];

    /// The GPU devices used in the heterogeneity experiments (Figure 15).
    pub const GPUS: [DeviceKind; 3] = [DeviceKind::OrinNano, DeviceKind::A2, DeviceKind::Gtx1080];

    /// Maximum (TDP) power draw of the device in watts.
    pub fn max_power_w(&self) -> f64 {
        match self {
            DeviceKind::OrinNano => 15.0,
            DeviceKind::A2 => 60.0,
            DeviceKind::Gtx1080 => 180.0,
            DeviceKind::XeonCpu => 105.0,
        }
    }

    /// Idle/base power draw of the device in watts.
    pub fn base_power_w(&self) -> f64 {
        match self {
            DeviceKind::OrinNano => 5.0,
            DeviceKind::A2 => 18.0,
            DeviceKind::Gtx1080 => 45.0,
            DeviceKind::XeonCpu => 55.0,
        }
    }

    /// Device memory capacity in MB (GPU memory for accelerators, a
    /// per-application RAM budget for the CPU path).
    pub fn memory_mb(&self) -> f64 {
        match self {
            DeviceKind::OrinNano => 8.0 * 1024.0,
            DeviceKind::A2 => 16.0 * 1024.0,
            DeviceKind::Gtx1080 => 8.0 * 1024.0,
            DeviceKind::XeonCpu => 256.0 * 1024.0,
        }
    }

    /// Number of applications' worth of compute the device exposes to the
    /// placement capacity model: a GPU is treated as one schedulable device,
    /// while the 40-core Xeon server can serve several CPU applications
    /// concurrently.
    pub fn compute_slots(&self) -> f64 {
        match self {
            DeviceKind::XeonCpu => 8.0,
            _ => 1.0,
        }
    }

    /// Number of compute units (CUDA cores for GPUs, hardware threads for CPU).
    pub fn compute_units(&self) -> f64 {
        match self {
            DeviceKind::OrinNano => 1024.0,
            DeviceKind::A2 => 1280.0,
            DeviceKind::Gtx1080 => 2560.0,
            DeviceKind::XeonCpu => 40.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceKind::OrinNano => "Orin Nano",
            DeviceKind::A2 => "A2",
            DeviceKind::Gtx1080 => "GTX 1080",
            DeviceKind::XeonCpu => "Xeon CPU",
        }
    }
}

/// The workload models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// EfficientNetB0 image classification (lightest GPU model).
    EfficientNetB0,
    /// ResNet50 image classification.
    ResNet50,
    /// YOLOv4 object detection (heaviest GPU model).
    YoloV4,
    /// CPU-based scientific/sensor-processing application ("Sci").
    SciCpu,
}

impl ModelKind {
    /// All model kinds in a stable order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::EfficientNetB0,
        ModelKind::ResNet50,
        ModelKind::YoloV4,
        ModelKind::SciCpu,
    ];

    /// The three GPU inference models of Figure 7.
    pub const GPU_MODELS: [ModelKind; 3] = [
        ModelKind::EfficientNetB0,
        ModelKind::ResNet50,
        ModelKind::YoloV4,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::EfficientNetB0 => "EfficientNetB0",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::YoloV4 => "YOLOv4",
            ModelKind::SciCpu => "Sci",
        }
    }
}

/// A profiled (model, device) combination: what the profiling service of
/// Section 5.1 would measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// The workload model.
    pub model: ModelKind,
    /// The device it was profiled on.
    pub device: DeviceKind,
    /// Energy per request in joules.
    pub energy_per_request_j: f64,
    /// Device memory used, in MB.
    pub memory_mb: f64,
    /// Per-request processing (inference) time in milliseconds.
    pub processing_time_ms: f64,
}

impl WorkloadProfile {
    /// Looks up the profiled numbers for a (model, device) pair.
    ///
    /// Returns `None` for combinations that were not profiled (the CPU
    /// application only runs on the CPU device and the GPU models only run
    /// on GPUs).
    pub fn lookup(model: ModelKind, device: DeviceKind) -> Option<WorkloadProfile> {
        // (energy J/request, memory MB, processing ms), following Figure 7:
        //  - energy spans ~1e-3 .. ~1e1 J,
        //  - YOLOv4 is ~45x EfficientNetB0 on the same device,
        //  - GTX 1080 is fastest but most power hungry, Orin Nano slowest but
        //    most efficient.
        let entry = match (model, device) {
            (ModelKind::EfficientNetB0, DeviceKind::OrinNano) => (0.009, 180.0, 12.0),
            (ModelKind::EfficientNetB0, DeviceKind::A2) => (0.015, 210.0, 6.5),
            (ModelKind::EfficientNetB0, DeviceKind::Gtx1080) => (0.030, 240.0, 3.5),
            (ModelKind::ResNet50, DeviceKind::OrinNano) => (0.075, 310.0, 28.0),
            (ModelKind::ResNet50, DeviceKind::A2) => (0.120, 350.0, 13.0),
            (ModelKind::ResNet50, DeviceKind::Gtx1080) => (0.230, 380.0, 6.0),
            (ModelKind::YoloV4, DeviceKind::OrinNano) => (0.420, 480.0, 42.0),
            (ModelKind::YoloV4, DeviceKind::A2) => (0.650, 520.0, 21.0),
            (ModelKind::YoloV4, DeviceKind::Gtx1080) => (1.300, 560.0, 9.5),
            (ModelKind::SciCpu, DeviceKind::XeonCpu) => (6.000, 2048.0, 80.0),
            _ => return None,
        };
        Some(WorkloadProfile {
            model,
            device,
            energy_per_request_j: entry.0,
            memory_mb: entry.1,
            processing_time_ms: entry.2,
        })
    }

    /// All profiled combinations.
    pub fn all() -> Vec<WorkloadProfile> {
        let mut out = Vec::new();
        for model in ModelKind::ALL {
            for device in DeviceKind::ALL {
                if let Some(p) = Self::lookup(model, device) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Average power draw while serving `requests_per_second` requests, in
    /// watts (energy per request × request rate).
    pub fn dynamic_power_w(&self, requests_per_second: f64) -> f64 {
        self.energy_per_request_j * requests_per_second.max(0.0)
    }

    /// Fraction of the device the workload occupies when serving
    /// `requests_per_second`, based on processing time (an M/D/1-style
    /// utilization estimate).  Values above 1.0 mean the device is saturated.
    pub fn utilization(&self, requests_per_second: f64) -> f64 {
        requests_per_second.max(0.0) * self.processing_time_ms / 1000.0
    }

    /// Maximum sustainable request rate on this device (requests/second).
    pub fn max_throughput_rps(&self) -> f64 {
        1000.0 / self.processing_time_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gpu_models_profiled_on_all_gpus() {
        for m in ModelKind::GPU_MODELS {
            for d in DeviceKind::GPUS {
                assert!(WorkloadProfile::lookup(m, d).is_some(), "{m:?} on {d:?}");
            }
        }
    }

    #[test]
    fn cpu_model_only_on_cpu() {
        assert!(WorkloadProfile::lookup(ModelKind::SciCpu, DeviceKind::XeonCpu).is_some());
        assert!(WorkloadProfile::lookup(ModelKind::SciCpu, DeviceKind::A2).is_none());
        assert!(WorkloadProfile::lookup(ModelKind::ResNet50, DeviceKind::XeonCpu).is_none());
    }

    #[test]
    fn energy_spans_figure7_range() {
        // Figure 7a: energy per inference spans roughly 1e-3 .. 1e1 J (log scale).
        let profiles = WorkloadProfile::all();
        let min = profiles
            .iter()
            .map(|p| p.energy_per_request_j)
            .fold(f64::INFINITY, f64::min);
        let max = profiles
            .iter()
            .map(|p| p.energy_per_request_j)
            .fold(0.0, f64::max);
        assert!(min < 0.05, "min {min}");
        assert!(max > 1.0, "max {max}");
    }

    #[test]
    fn yolo_is_much_heavier_than_efficientnet_on_same_device() {
        // The paper reports up to ~45x energy difference across models on a device.
        for d in DeviceKind::GPUS {
            let light = WorkloadProfile::lookup(ModelKind::EfficientNetB0, d).unwrap();
            let heavy = WorkloadProfile::lookup(ModelKind::YoloV4, d).unwrap();
            let ratio = heavy.energy_per_request_j / light.energy_per_request_j;
            assert!(ratio > 20.0, "ratio {ratio} on {d:?}");
        }
    }

    #[test]
    fn device_energy_spread_for_same_model_is_about_2x_or_more() {
        for m in ModelKind::GPU_MODELS {
            let e: Vec<f64> = DeviceKind::GPUS
                .iter()
                .map(|d| WorkloadProfile::lookup(m, *d).unwrap().energy_per_request_j)
                .collect();
            let spread = e.iter().cloned().fold(0.0, f64::max)
                / e.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(spread >= 2.0, "spread {spread} for {m:?}");
        }
    }

    #[test]
    fn gtx1080_is_fastest_but_least_efficient() {
        let on_1080 = WorkloadProfile::lookup(ModelKind::ResNet50, DeviceKind::Gtx1080).unwrap();
        let on_nano = WorkloadProfile::lookup(ModelKind::ResNet50, DeviceKind::OrinNano).unwrap();
        assert!(on_1080.processing_time_ms < on_nano.processing_time_ms);
        assert!(on_1080.energy_per_request_j > on_nano.energy_per_request_j);
    }

    #[test]
    fn inference_times_match_figure7_range() {
        // Figure 7c: inference times are below ~45 ms.
        for p in WorkloadProfile::all() {
            if p.model != ModelKind::SciCpu {
                assert!(
                    p.processing_time_ms > 1.0 && p.processing_time_ms < 45.0,
                    "{p:?}"
                );
            }
        }
    }

    #[test]
    fn memory_below_600mb_for_gpu_models() {
        // Figure 7b: GPU memory usage stays below ~600 MB.
        for p in WorkloadProfile::all() {
            if p.model != ModelKind::SciCpu {
                assert!(p.memory_mb < 600.0, "{p:?}");
            }
        }
    }

    #[test]
    fn utilization_and_throughput_are_consistent() {
        let p = WorkloadProfile::lookup(ModelKind::ResNet50, DeviceKind::A2).unwrap();
        let max_rps = p.max_throughput_rps();
        assert!((p.utilization(max_rps) - 1.0).abs() < 1e-9);
        assert!(p.utilization(0.0) == 0.0);
        assert!(p.utilization(-5.0) == 0.0);
    }

    #[test]
    fn dynamic_power_scales_linearly() {
        let p = WorkloadProfile::lookup(ModelKind::YoloV4, DeviceKind::Gtx1080).unwrap();
        assert!((p.dynamic_power_w(10.0) - 10.0 * p.energy_per_request_j).abs() < 1e-12);
        assert_eq!(p.dynamic_power_w(-1.0), 0.0);
    }

    #[test]
    fn device_base_power_below_max_power() {
        for d in DeviceKind::ALL {
            assert!(d.base_power_w() < d.max_power_w());
            assert!(d.memory_mb() > 0.0);
            assert!(d.compute_units() > 0.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
        names.extend(DeviceKind::ALL.iter().map(|d| d.name()));
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count);
    }
}
