//! Edge applications and their resource demands.

use crate::profiles::{DeviceKind, ModelKind, WorkloadProfile};
use carbonedge_geo::Coordinates;
use serde::{Deserialize, Serialize};

/// Identifier of an application within a placement batch or simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub usize);

impl AppId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The resource dimensions tracked by the multi-dimensional capacity
/// constraint (Eq. 1): compute, device memory, and network bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Compute capacity, normalized to "device fraction" units.
    Compute,
    /// Device (GPU/host) memory in MB.
    MemoryMb,
    /// Network bandwidth in Mbps.
    BandwidthMbps,
}

/// All resource kinds in the order used by resource vectors.
pub const RESOURCE_KINDS: [ResourceKind; 3] = [
    ResourceKind::Compute,
    ResourceKind::MemoryMb,
    ResourceKind::BandwidthMbps,
];

/// A demand (or capacity) vector over [`RESOURCE_KINDS`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ResourceDemand {
    /// Compute demand as a fraction of one device (1.0 = a whole device).
    pub compute: f64,
    /// Memory demand in MB.
    pub memory_mb: f64,
    /// Bandwidth demand in Mbps.
    pub bandwidth_mbps: f64,
}

impl ResourceDemand {
    /// Creates a demand vector.
    pub fn new(compute: f64, memory_mb: f64, bandwidth_mbps: f64) -> Self {
        Self {
            compute,
            memory_mb,
            bandwidth_mbps,
        }
    }

    /// Component accessor by resource kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Compute => self.compute,
            ResourceKind::MemoryMb => self.memory_mb,
            ResourceKind::BandwidthMbps => self.bandwidth_mbps,
        }
    }

    /// Component-wise addition.
    pub fn plus(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            compute: self.compute + other.compute,
            memory_mb: self.memory_mb + other.memory_mb,
            bandwidth_mbps: self.bandwidth_mbps + other.bandwidth_mbps,
        }
    }

    /// Component-wise subtraction, clamped at zero.
    pub fn minus_clamped(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            compute: (self.compute - other.compute).max(0.0),
            memory_mb: (self.memory_mb - other.memory_mb).max(0.0),
            bandwidth_mbps: (self.bandwidth_mbps - other.bandwidth_mbps).max(0.0),
        }
    }

    /// Whether this demand fits within `capacity` on every dimension.
    pub fn fits_within(&self, capacity: &ResourceDemand) -> bool {
        const EPS: f64 = 1e-9;
        self.compute <= capacity.compute + EPS
            && self.memory_mb <= capacity.memory_mb + EPS
            && self.bandwidth_mbps <= capacity.bandwidth_mbps + EPS
    }

    /// Whether all components are finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [self.compute, self.memory_mb, self.bandwidth_mbps]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }
}

/// An edge application to be placed: its workload model, request rate,
/// latency SLO, and origin location (the user/IoT gateway it serves).
///
/// The per-server resource demand `R_ij` and energy `E_ij` of the paper's
/// formulation (Table 2) are *derived* from the application's model and rate
/// combined with the hosting server's device profile, via
/// [`Application::demand_on`] and [`Application::energy_on`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application identifier.
    pub id: AppId,
    /// The workload model this application runs.
    pub model: ModelKind,
    /// Sustained request rate in requests per second.
    pub request_rate_rps: f64,
    /// Round-trip latency SLO in milliseconds (ℓ_i in the paper).
    pub latency_slo_ms: f64,
    /// Origin location of the application's users.
    pub origin: Coordinates,
    /// Zone index of the origin edge site (set by the workload generator
    /// when the application arrives at a specific edge data center).
    pub origin_site: usize,
}

impl Application {
    /// Creates an application.
    pub fn new(
        id: AppId,
        model: ModelKind,
        request_rate_rps: f64,
        latency_slo_ms: f64,
        origin: Coordinates,
        origin_site: usize,
    ) -> Self {
        Self {
            id,
            model,
            request_rate_rps,
            latency_slo_ms,
            origin,
            origin_site,
        }
    }

    /// The profile of this application's model on a given device, if the
    /// model can run there.
    pub fn profile_on(&self, device: DeviceKind) -> Option<WorkloadProfile> {
        WorkloadProfile::lookup(self.model, device)
    }

    /// Resource demand of this application when hosted on `device`
    /// (R_ij in the paper), or `None` if the model cannot run on the device.
    pub fn demand_on(&self, device: DeviceKind) -> Option<ResourceDemand> {
        let profile = self.profile_on(device)?;
        let compute = profile.utilization(self.request_rate_rps);
        // Each request is assumed to carry ~0.5 Mbit of input data.
        let bandwidth = 0.5 * self.request_rate_rps;
        Some(ResourceDemand::new(compute, profile.memory_mb, bandwidth))
    }

    /// Energy consumed by this application per hour of operation on
    /// `device`, in joules (E_ij in the paper, for a 1-hour placement epoch).
    pub fn energy_on(&self, device: DeviceKind) -> Option<f64> {
        let profile = self.profile_on(device)?;
        Some(profile.energy_per_request_j * self.request_rate_rps * 3600.0)
    }

    /// Whether this application can run at all on the given device.
    pub fn can_run_on(&self, device: DeviceKind) -> bool {
        self.profile_on(device).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn app(model: ModelKind) -> Application {
        Application::new(
            AppId(0),
            model,
            20.0,
            20.0,
            Coordinates::new(25.76, -80.19),
            0,
        )
    }

    #[test]
    fn demand_reflects_profile() {
        let a = app(ModelKind::ResNet50);
        let d = a.demand_on(DeviceKind::A2).unwrap();
        let p = WorkloadProfile::lookup(ModelKind::ResNet50, DeviceKind::A2).unwrap();
        assert!((d.compute - p.utilization(20.0)).abs() < 1e-12);
        assert_eq!(d.memory_mb, p.memory_mb);
        assert!(d.bandwidth_mbps > 0.0);
    }

    #[test]
    fn demand_is_none_for_incompatible_device() {
        let a = app(ModelKind::SciCpu);
        assert!(a.demand_on(DeviceKind::A2).is_none());
        assert!(!a.can_run_on(DeviceKind::Gtx1080));
        assert!(a.can_run_on(DeviceKind::XeonCpu));
    }

    #[test]
    fn energy_scales_with_rate() {
        let mut a = app(ModelKind::YoloV4);
        let e20 = a.energy_on(DeviceKind::Gtx1080).unwrap();
        a.request_rate_rps = 40.0;
        let e40 = a.energy_on(DeviceKind::Gtx1080).unwrap();
        assert!((e40 / e20 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_device_has_lower_compute_demand() {
        let a = app(ModelKind::ResNet50);
        let on_nano = a.demand_on(DeviceKind::OrinNano).unwrap();
        let on_1080 = a.demand_on(DeviceKind::Gtx1080).unwrap();
        assert!(on_1080.compute < on_nano.compute);
    }

    #[test]
    fn resource_vector_arithmetic() {
        let a = ResourceDemand::new(0.5, 100.0, 10.0);
        let b = ResourceDemand::new(0.25, 50.0, 5.0);
        let sum = a.plus(&b);
        assert_eq!(sum.compute, 0.75);
        assert_eq!(sum.memory_mb, 150.0);
        let diff = b.minus_clamped(&a);
        assert_eq!(diff.compute, 0.0);
        assert_eq!(diff.memory_mb, 0.0);
        assert_eq!(diff.bandwidth_mbps, 0.0);
    }

    #[test]
    fn fits_within_respects_all_dimensions() {
        let cap = ResourceDemand::new(1.0, 1000.0, 100.0);
        assert!(ResourceDemand::new(0.5, 500.0, 50.0).fits_within(&cap));
        assert!(!ResourceDemand::new(1.5, 500.0, 50.0).fits_within(&cap));
        assert!(!ResourceDemand::new(0.5, 1500.0, 50.0).fits_within(&cap));
        assert!(!ResourceDemand::new(0.5, 500.0, 150.0).fits_within(&cap));
    }

    #[test]
    fn resource_get_matches_fields() {
        let d = ResourceDemand::new(0.3, 64.0, 7.0);
        assert_eq!(d.get(ResourceKind::Compute), 0.3);
        assert_eq!(d.get(ResourceKind::MemoryMb), 64.0);
        assert_eq!(d.get(ResourceKind::BandwidthMbps), 7.0);
    }

    #[test]
    fn validity_check() {
        assert!(ResourceDemand::new(0.0, 0.0, 0.0).is_valid());
        assert!(!ResourceDemand::new(-1.0, 0.0, 0.0).is_valid());
        assert!(!ResourceDemand::new(f64::NAN, 0.0, 0.0).is_valid());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn plus_then_minus_round_trips(
            c1 in 0.0f64..10.0, m1 in 0.0f64..1000.0, b1 in 0.0f64..100.0,
            c2 in 0.0f64..10.0, m2 in 0.0f64..1000.0, b2 in 0.0f64..100.0,
        ) {
            let a = ResourceDemand::new(c1, m1, b1);
            let b = ResourceDemand::new(c2, m2, b2);
            let back = a.plus(&b).minus_clamped(&b);
            prop_assert!((back.compute - a.compute).abs() < 1e-9);
            prop_assert!((back.memory_mb - a.memory_mb).abs() < 1e-6);
            prop_assert!((back.bandwidth_mbps - a.bandwidth_mbps).abs() < 1e-9);
        }

        #[test]
        fn fits_within_is_monotone(
            c in 0.0f64..2.0, m in 0.0f64..2000.0, b in 0.0f64..200.0,
        ) {
            let cap = ResourceDemand::new(1.0, 1000.0, 100.0);
            let d = ResourceDemand::new(c, m, b);
            if d.fits_within(&cap) {
                // Anything smaller also fits.
                let smaller = ResourceDemand::new(c * 0.5, m * 0.5, b * 0.5);
                prop_assert!(smaller.fits_within(&cap));
            }
        }
    }
}
