//! Workload generation: arrival processes and demand models.
//!
//! The CDN-scale experiments place batches of applications arriving at edge
//! sites over time (Section 6.3); Section 6.3.4 additionally skews either
//! the demand or the capacity according to the population of each site.
//! This module generates those application batches deterministically.

use crate::app::{AppId, Application};
use crate::profiles::ModelKind;
use carbonedge_geo::Coordinates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The arrival process controlling how many applications arrive per epoch
/// and, for the event-level serving engine, how per-hour request intensity
/// is modulated within a day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A fixed number of arrivals every epoch.
    Constant(usize),
    /// Poisson arrivals with the given mean per epoch.
    Poisson(f64),
    /// Poisson arrivals whose mean follows a sinusoidal diurnal profile:
    /// the hourly intensity is `mean * (1 + amplitude * cos(2π(h - peak)/24))`,
    /// which averages back to `mean` over a full day.
    Diurnal {
        /// Mean arrivals per epoch (or unit rate multiplier for streams).
        mean: f64,
        /// Relative swing of the diurnal cycle, in `[0, 1)`.
        amplitude: f64,
        /// Hour of day (0–24) at which intensity peaks.
        peak_hour: f64,
    },
    /// Diurnal arrivals with a multiplicative burst overlay: each hour
    /// independently bursts with probability `burst_probability`, scaling the
    /// intensity by `burst_magnitude` (jittered by a clamped normal sample).
    Bursty {
        /// Mean arrivals per epoch (or unit rate multiplier for streams).
        mean: f64,
        /// Relative swing of the diurnal cycle, in `[0, 1)`.
        amplitude: f64,
        /// Hour of day (0–24) at which intensity peaks.
        peak_hour: f64,
        /// Per-hour probability of a burst, in `[0, 1]`.
        burst_probability: f64,
        /// Intensity multiplier while bursting (≥ 1).
        burst_magnitude: f64,
    },
}

impl ArrivalProcess {
    /// The default diurnal + burst overlay used by the event-level serving
    /// engine: a 35 % evening-peaked swing with rare 2.5× bursts.  `mean` is
    /// `1.0` because request streams scale by the application's own rate.
    pub fn diurnal_bursty() -> Self {
        ArrivalProcess::Bursty {
            mean: 1.0,
            amplitude: 0.35,
            peak_hour: 19.0,
            burst_probability: 0.02,
            burst_magnitude: 2.5,
        }
    }

    /// The mean arrivals per epoch implied by the process.
    pub fn mean(&self) -> f64 {
        match self {
            ArrivalProcess::Constant(n) => *n as f64,
            ArrivalProcess::Poisson(lambda) => *lambda,
            ArrivalProcess::Diurnal { mean, .. } | ArrivalProcess::Bursty { mean, .. } => *mean,
        }
    }

    /// Samples the number of arrivals for one epoch.  Diurnal modulation
    /// averages out over a day, so epoch-level sampling uses the mean.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            ArrivalProcess::Constant(n) => *n,
            ArrivalProcess::Poisson(lambda) => sample_poisson(*lambda, rng),
            ArrivalProcess::Diurnal { mean, .. } => sample_poisson(*mean, rng),
            ArrivalProcess::Bursty { mean, .. } => sample_poisson(*mean, rng),
        }
    }

    /// The relative intensity multiplier for the hour-of-day `hour` (0–24).
    /// Constant and plain-Poisson processes are flat; diurnal processes
    /// follow their sinusoid; bursty processes additionally draw a burst
    /// from `rng`.  The diurnal part has unit mean over a full day.
    pub fn hourly_weight(&self, hour_of_day: f64, rng: &mut StdRng) -> f64 {
        match self {
            ArrivalProcess::Constant(_) | ArrivalProcess::Poisson(_) => 1.0,
            ArrivalProcess::Diurnal {
                amplitude,
                peak_hour,
                ..
            } => diurnal_factor(hour_of_day, *amplitude, *peak_hour),
            ArrivalProcess::Bursty {
                amplitude,
                peak_hour,
                burst_probability,
                burst_magnitude,
                ..
            } => {
                let base = diurnal_factor(hour_of_day, *amplitude, *peak_hour);
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < *burst_probability {
                    // Jitter the burst height with a clamped normal sample so
                    // bursts vary without ever exploding past ~1.45× nominal.
                    let jitter = 1.0 + 0.15 * sample_standard_normal(rng);
                    base * (burst_magnitude * jitter).max(1.0)
                } else {
                    base
                }
            }
        }
    }
}

/// Sinusoidal diurnal multiplier with unit mean over a 24-hour cycle.
fn diurnal_factor(hour_of_day: f64, amplitude: f64, peak_hour: f64) -> f64 {
    let phase = std::f64::consts::TAU * (hour_of_day - peak_hour) / 24.0;
    (1.0 + amplitude * phase.cos()).max(0.0)
}

/// A standard-normal sample via Box–Muller, clamped to ±3σ so downstream
/// normal approximations (Poisson counts, burst jitter) can never round an
/// extreme tail into an absurd arrival count.
pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.clamp(-3.0, 3.0)
}

/// SplitMix64: a cheap, high-quality bit mixer used to derive independent
/// stream seeds from a base seed (the same mixer the sweep grid uses for
/// per-cell seeds).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Knuth's algorithm for small-λ Poisson sampling, with a normal
/// approximation for large λ to stay O(1).
fn sample_poisson(lambda: f64, rng: &mut StdRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        // Normal approximation N(λ, λ), tail-clamped to ±3σ.
        let z = sample_standard_normal(rng);
        return (lambda + z * lambda.sqrt()).round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        p *= u;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// How application origins are distributed across edge sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DemandModel {
    /// Every site receives the same share of arrivals ("Homo" in Fig. 14).
    Uniform,
    /// Arrivals are distributed proportionally to per-site weights
    /// (population-proportional demand in Fig. 14).
    Weighted(Vec<f64>),
}

impl DemandModel {
    /// Normalized per-site probabilities over `site_count` sites.
    pub fn probabilities(&self, site_count: usize) -> Vec<f64> {
        match self {
            DemandModel::Uniform => vec![1.0 / site_count.max(1) as f64; site_count],
            DemandModel::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    site_count,
                    "weight vector length must match site count"
                );
                let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
                if total <= 0.0 {
                    return vec![1.0 / site_count.max(1) as f64; site_count];
                }
                weights.iter().map(|w| w.max(0.0) / total).collect()
            }
        }
    }
}

/// Deterministic generator of application batches.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    /// Arrival process per epoch.
    pub arrivals: ArrivalProcess,
    /// How origins are spread over sites.
    pub demand: DemandModel,
    /// Models to draw from, with relative weights.
    pub model_mix: Vec<(ModelKind, f64)>,
    /// Request-rate range (rps), sampled uniformly.
    pub rate_range_rps: (f64, f64),
    /// Round-trip latency SLO applied to every generated application (ms).
    pub latency_slo_ms: f64,
    seed: u64,
    next_id: usize,
}

impl WorkloadGenerator {
    /// Creates a generator with the paper's default setup: ResNet50-style
    /// inference workloads with a 20 ms round-trip SLO.
    pub fn new(seed: u64) -> Self {
        Self {
            arrivals: ArrivalProcess::Constant(50),
            demand: DemandModel::Uniform,
            model_mix: vec![(ModelKind::ResNet50, 1.0)],
            rate_range_rps: (5.0, 30.0),
            latency_slo_ms: 20.0,
            seed,
            next_id: 0,
        }
    }

    /// Sets the arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the demand model.
    pub fn with_demand(mut self, demand: DemandModel) -> Self {
        self.demand = demand;
        self
    }

    /// Sets the model mix (pairs of model and relative weight).
    pub fn with_model_mix(mut self, mix: Vec<(ModelKind, f64)>) -> Self {
        assert!(!mix.is_empty(), "model mix must not be empty");
        self.model_mix = mix;
        self
    }

    /// Sets the latency SLO applied to generated applications.
    pub fn with_latency_slo(mut self, slo_ms: f64) -> Self {
        self.latency_slo_ms = slo_ms;
        self
    }

    /// Sets the request-rate range.
    pub fn with_rate_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi && lo >= 0.0, "invalid rate range");
        self.rate_range_rps = (lo, hi);
        self
    }

    fn pick_model(&self, rng: &mut StdRng) -> ModelKind {
        let total: f64 = self.model_mix.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut target = rng.gen_range(0.0..total.max(1e-12));
        for (m, w) in &self.model_mix {
            target -= w.max(0.0);
            if target <= 0.0 {
                return *m;
            }
        }
        self.model_mix[0].0
    }

    fn pick_site(probs: &[f64], rng: &mut StdRng) -> usize {
        let mut target: f64 = rng.gen_range(0.0..1.0);
        for (i, p) in probs.iter().enumerate() {
            target -= p;
            if target <= 0.0 {
                return i;
            }
        }
        probs.len().saturating_sub(1)
    }

    /// Generates the batch of applications arriving at `epoch`, given the
    /// edge sites (their representative coordinates).  Application ids are
    /// globally unique across calls to the same generator.
    pub fn generate_epoch(&mut self, epoch: usize, sites: &[Coordinates]) -> Vec<Application> {
        assert!(!sites.is_empty(), "cannot generate workload without sites");
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let count = self.arrivals.sample(&mut rng);
        let probs = self.demand.probabilities(sites.len());
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let site = Self::pick_site(&probs, &mut rng);
            let model = self.pick_model(&mut rng);
            let rate = if self.rate_range_rps.0 < self.rate_range_rps.1 {
                rng.gen_range(self.rate_range_rps.0..self.rate_range_rps.1)
            } else {
                self.rate_range_rps.0
            };
            out.push(Application::new(
                AppId(self.next_id),
                model,
                rate,
                self.latency_slo_ms,
                sites[site],
                site,
            ));
            self.next_id += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sites(n: usize) -> Vec<Coordinates> {
        (0..n)
            .map(|i| Coordinates::new(25.0 + i as f64, -80.0))
            .collect()
    }

    #[test]
    fn constant_arrivals_generate_exact_count() {
        let mut g = WorkloadGenerator::new(1).with_arrivals(ArrivalProcess::Constant(10));
        let batch = g.generate_epoch(0, &sites(5));
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn ids_are_unique_across_epochs() {
        let mut g = WorkloadGenerator::new(1).with_arrivals(ArrivalProcess::Constant(5));
        let s = sites(3);
        let mut all_ids = Vec::new();
        for e in 0..4 {
            for a in g.generate_epoch(e, &s) {
                all_ids.push(a.id.index());
            }
        }
        let count = all_ids.len();
        all_ids.sort_unstable();
        all_ids.dedup();
        assert_eq!(all_ids.len(), count);
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_epoch() {
        let s = sites(4);
        let mut g1 = WorkloadGenerator::new(9).with_arrivals(ArrivalProcess::Constant(20));
        let mut g2 = WorkloadGenerator::new(9).with_arrivals(ArrivalProcess::Constant(20));
        assert_eq!(g1.generate_epoch(3, &s), g2.generate_epoch(3, &s));
    }

    #[test]
    fn weighted_demand_skews_origins() {
        let s = sites(2);
        // All demand on site 1.
        let mut g = WorkloadGenerator::new(2)
            .with_arrivals(ArrivalProcess::Constant(50))
            .with_demand(DemandModel::Weighted(vec![0.0, 1.0]));
        let batch = g.generate_epoch(0, &s);
        assert!(batch.iter().all(|a| a.origin_site == 1));
    }

    #[test]
    fn uniform_demand_covers_sites() {
        let s = sites(4);
        let mut g = WorkloadGenerator::new(3).with_arrivals(ArrivalProcess::Constant(400));
        let batch = g.generate_epoch(0, &s);
        let mut counts = [0usize; 4];
        for a in &batch {
            counts[a.origin_site] += 1;
        }
        for c in counts {
            assert!(c > 50, "counts {counts:?}");
        }
    }

    #[test]
    fn latency_slo_and_rates_are_respected() {
        let mut g = WorkloadGenerator::new(4)
            .with_latency_slo(12.5)
            .with_rate_range(2.0, 4.0)
            .with_arrivals(ArrivalProcess::Constant(30));
        for a in g.generate_epoch(0, &sites(3)) {
            assert_eq!(a.latency_slo_ms, 12.5);
            assert!(a.request_rate_rps >= 2.0 && a.request_rate_rps < 4.0);
        }
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 20.0;
        let n = 2000;
        let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approximation() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 500.0;
        let n = 500;
        let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn zero_lambda_yields_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn standard_normal_is_clamped_and_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 4000;
        let mut sum = 0.0;
        for _ in 0..n {
            let z = sample_standard_normal(&mut rng);
            assert!((-3.0..=3.0).contains(&z), "z {z} escaped the clamp");
            sum += z;
        }
        assert!((sum / n as f64).abs() < 0.1, "mean {}", sum / n as f64);
    }

    #[test]
    fn diurnal_weight_peaks_at_peak_hour_and_averages_to_one() {
        let p = ArrivalProcess::Diurnal {
            mean: 10.0,
            amplitude: 0.4,
            peak_hour: 19.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let peak = p.hourly_weight(19.0, &mut rng);
        let trough = p.hourly_weight(7.0, &mut rng);
        assert!((peak - 1.4).abs() < 1e-9, "peak {peak}");
        assert!((trough - 0.6).abs() < 1e-9, "trough {trough}");
        let mean: f64 = (0..24)
            .map(|h| p.hourly_weight(h as f64, &mut rng))
            .sum::<f64>()
            / 24.0;
        assert!((mean - 1.0).abs() < 1e-9, "daily mean {mean}");
    }

    #[test]
    fn bursty_weight_exceeds_diurnal_only_during_bursts() {
        let p = ArrivalProcess::Bursty {
            mean: 1.0,
            amplitude: 0.0,
            peak_hour: 0.0,
            burst_probability: 0.25,
            burst_magnitude: 2.5,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut bursts = 0usize;
        let n = 2000;
        for _ in 0..n {
            let w = p.hourly_weight(12.0, &mut rng);
            if w > 1.0 + 1e-9 {
                bursts += 1;
                // Magnitude 2.5 with ±15 % clamped-normal jitter stays within
                // [~1.0, ~3.63].
                assert!(w <= 2.5 * 1.45 + 1e-9, "burst weight {w}");
            } else {
                assert!((w - 1.0).abs() < 1e-9, "flat weight {w}");
            }
        }
        let rate = bursts as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "burst rate {rate}");
    }

    #[test]
    fn diurnal_and_bursty_sample_epochs_around_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = ArrivalProcess::Diurnal {
            mean: 30.0,
            amplitude: 0.5,
            peak_hour: 12.0,
        };
        let n = 1000;
        let total: usize = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 30.0).abs() < 1.5, "mean {mean}");
        assert_eq!(ArrivalProcess::diurnal_bursty().mean(), 1.0);
    }

    #[test]
    fn splitmix64_mixes_nearby_seeds_apart() {
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
        // Reference value from the canonical SplitMix64 sequence.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let d = DemandModel::Weighted(vec![0.0, 0.0, 0.0]);
        let p = d.probabilities(3);
        assert!(p.iter().all(|x| (x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic]
    fn mismatched_weights_panic() {
        DemandModel::Weighted(vec![1.0, 2.0]).probabilities(3);
    }

    #[test]
    fn model_mix_draws_all_models() {
        let mut g = WorkloadGenerator::new(5)
            .with_arrivals(ArrivalProcess::Constant(300))
            .with_model_mix(vec![
                (ModelKind::EfficientNetB0, 1.0),
                (ModelKind::ResNet50, 1.0),
                (ModelKind::YoloV4, 1.0),
            ]);
        let batch = g.generate_epoch(0, &sites(2));
        let models: std::collections::HashSet<_> = batch.iter().map(|a| a.model).collect();
        assert_eq!(models.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn probabilities_sum_to_one(weights in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            let n = weights.len();
            let d = DemandModel::Weighted(weights);
            let p = d.probabilities(n);
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn origin_site_is_always_valid(seed in 0u64..500, nsites in 1usize..10) {
            let s = sites(nsites);
            let mut g = WorkloadGenerator::new(seed).with_arrivals(ArrivalProcess::Constant(20));
            for a in g.generate_epoch(0, &s) {
                prop_assert!(a.origin_site < nsites);
            }
        }
    }
}
