//! Workload generation: arrival processes and demand models.
//!
//! The CDN-scale experiments place batches of applications arriving at edge
//! sites over time (Section 6.3); Section 6.3.4 additionally skews either
//! the demand or the capacity according to the population of each site.
//! This module generates those application batches deterministically.

use crate::app::{AppId, Application};
use crate::profiles::ModelKind;
use carbonedge_geo::Coordinates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The arrival process controlling how many applications arrive per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A fixed number of arrivals every epoch.
    Constant(usize),
    /// Poisson arrivals with the given mean per epoch.
    Poisson(f64),
}

impl ArrivalProcess {
    /// Samples the number of arrivals for one epoch.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            ArrivalProcess::Constant(n) => *n,
            ArrivalProcess::Poisson(lambda) => sample_poisson(*lambda, rng),
        }
    }
}

/// Knuth's algorithm for small-λ Poisson sampling, with a normal
/// approximation for large λ to stay O(1).
fn sample_poisson(lambda: f64, rng: &mut StdRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        // Normal approximation N(λ, λ).
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (lambda + z * lambda.sqrt()).round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        p *= u;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// How application origins are distributed across edge sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DemandModel {
    /// Every site receives the same share of arrivals ("Homo" in Fig. 14).
    Uniform,
    /// Arrivals are distributed proportionally to per-site weights
    /// (population-proportional demand in Fig. 14).
    Weighted(Vec<f64>),
}

impl DemandModel {
    /// Normalized per-site probabilities over `site_count` sites.
    pub fn probabilities(&self, site_count: usize) -> Vec<f64> {
        match self {
            DemandModel::Uniform => vec![1.0 / site_count.max(1) as f64; site_count],
            DemandModel::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    site_count,
                    "weight vector length must match site count"
                );
                let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
                if total <= 0.0 {
                    return vec![1.0 / site_count.max(1) as f64; site_count];
                }
                weights.iter().map(|w| w.max(0.0) / total).collect()
            }
        }
    }
}

/// Deterministic generator of application batches.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    /// Arrival process per epoch.
    pub arrivals: ArrivalProcess,
    /// How origins are spread over sites.
    pub demand: DemandModel,
    /// Models to draw from, with relative weights.
    pub model_mix: Vec<(ModelKind, f64)>,
    /// Request-rate range (rps), sampled uniformly.
    pub rate_range_rps: (f64, f64),
    /// Round-trip latency SLO applied to every generated application (ms).
    pub latency_slo_ms: f64,
    seed: u64,
    next_id: usize,
}

impl WorkloadGenerator {
    /// Creates a generator with the paper's default setup: ResNet50-style
    /// inference workloads with a 20 ms round-trip SLO.
    pub fn new(seed: u64) -> Self {
        Self {
            arrivals: ArrivalProcess::Constant(50),
            demand: DemandModel::Uniform,
            model_mix: vec![(ModelKind::ResNet50, 1.0)],
            rate_range_rps: (5.0, 30.0),
            latency_slo_ms: 20.0,
            seed,
            next_id: 0,
        }
    }

    /// Sets the arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the demand model.
    pub fn with_demand(mut self, demand: DemandModel) -> Self {
        self.demand = demand;
        self
    }

    /// Sets the model mix (pairs of model and relative weight).
    pub fn with_model_mix(mut self, mix: Vec<(ModelKind, f64)>) -> Self {
        assert!(!mix.is_empty(), "model mix must not be empty");
        self.model_mix = mix;
        self
    }

    /// Sets the latency SLO applied to generated applications.
    pub fn with_latency_slo(mut self, slo_ms: f64) -> Self {
        self.latency_slo_ms = slo_ms;
        self
    }

    /// Sets the request-rate range.
    pub fn with_rate_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi && lo >= 0.0, "invalid rate range");
        self.rate_range_rps = (lo, hi);
        self
    }

    fn pick_model(&self, rng: &mut StdRng) -> ModelKind {
        let total: f64 = self.model_mix.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut target = rng.gen_range(0.0..total.max(1e-12));
        for (m, w) in &self.model_mix {
            target -= w.max(0.0);
            if target <= 0.0 {
                return *m;
            }
        }
        self.model_mix[0].0
    }

    fn pick_site(probs: &[f64], rng: &mut StdRng) -> usize {
        let mut target: f64 = rng.gen_range(0.0..1.0);
        for (i, p) in probs.iter().enumerate() {
            target -= p;
            if target <= 0.0 {
                return i;
            }
        }
        probs.len().saturating_sub(1)
    }

    /// Generates the batch of applications arriving at `epoch`, given the
    /// edge sites (their representative coordinates).  Application ids are
    /// globally unique across calls to the same generator.
    pub fn generate_epoch(&mut self, epoch: usize, sites: &[Coordinates]) -> Vec<Application> {
        assert!(!sites.is_empty(), "cannot generate workload without sites");
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let count = self.arrivals.sample(&mut rng);
        let probs = self.demand.probabilities(sites.len());
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let site = Self::pick_site(&probs, &mut rng);
            let model = self.pick_model(&mut rng);
            let rate = if self.rate_range_rps.0 < self.rate_range_rps.1 {
                rng.gen_range(self.rate_range_rps.0..self.rate_range_rps.1)
            } else {
                self.rate_range_rps.0
            };
            out.push(Application::new(
                AppId(self.next_id),
                model,
                rate,
                self.latency_slo_ms,
                sites[site],
                site,
            ));
            self.next_id += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sites(n: usize) -> Vec<Coordinates> {
        (0..n)
            .map(|i| Coordinates::new(25.0 + i as f64, -80.0))
            .collect()
    }

    #[test]
    fn constant_arrivals_generate_exact_count() {
        let mut g = WorkloadGenerator::new(1).with_arrivals(ArrivalProcess::Constant(10));
        let batch = g.generate_epoch(0, &sites(5));
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn ids_are_unique_across_epochs() {
        let mut g = WorkloadGenerator::new(1).with_arrivals(ArrivalProcess::Constant(5));
        let s = sites(3);
        let mut all_ids = Vec::new();
        for e in 0..4 {
            for a in g.generate_epoch(e, &s) {
                all_ids.push(a.id.index());
            }
        }
        let count = all_ids.len();
        all_ids.sort_unstable();
        all_ids.dedup();
        assert_eq!(all_ids.len(), count);
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_epoch() {
        let s = sites(4);
        let mut g1 = WorkloadGenerator::new(9).with_arrivals(ArrivalProcess::Constant(20));
        let mut g2 = WorkloadGenerator::new(9).with_arrivals(ArrivalProcess::Constant(20));
        assert_eq!(g1.generate_epoch(3, &s), g2.generate_epoch(3, &s));
    }

    #[test]
    fn weighted_demand_skews_origins() {
        let s = sites(2);
        // All demand on site 1.
        let mut g = WorkloadGenerator::new(2)
            .with_arrivals(ArrivalProcess::Constant(50))
            .with_demand(DemandModel::Weighted(vec![0.0, 1.0]));
        let batch = g.generate_epoch(0, &s);
        assert!(batch.iter().all(|a| a.origin_site == 1));
    }

    #[test]
    fn uniform_demand_covers_sites() {
        let s = sites(4);
        let mut g = WorkloadGenerator::new(3).with_arrivals(ArrivalProcess::Constant(400));
        let batch = g.generate_epoch(0, &s);
        let mut counts = [0usize; 4];
        for a in &batch {
            counts[a.origin_site] += 1;
        }
        for c in counts {
            assert!(c > 50, "counts {counts:?}");
        }
    }

    #[test]
    fn latency_slo_and_rates_are_respected() {
        let mut g = WorkloadGenerator::new(4)
            .with_latency_slo(12.5)
            .with_rate_range(2.0, 4.0)
            .with_arrivals(ArrivalProcess::Constant(30));
        for a in g.generate_epoch(0, &sites(3)) {
            assert_eq!(a.latency_slo_ms, 12.5);
            assert!(a.request_rate_rps >= 2.0 && a.request_rate_rps < 4.0);
        }
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 20.0;
        let n = 2000;
        let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approximation() {
        let mut rng = StdRng::seed_from_u64(7);
        let lambda = 500.0;
        let n = 500;
        let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn zero_lambda_yields_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let d = DemandModel::Weighted(vec![0.0, 0.0, 0.0]);
        let p = d.probabilities(3);
        assert!(p.iter().all(|x| (x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic]
    fn mismatched_weights_panic() {
        DemandModel::Weighted(vec![1.0, 2.0]).probabilities(3);
    }

    #[test]
    fn model_mix_draws_all_models() {
        let mut g = WorkloadGenerator::new(5)
            .with_arrivals(ArrivalProcess::Constant(300))
            .with_model_mix(vec![
                (ModelKind::EfficientNetB0, 1.0),
                (ModelKind::ResNet50, 1.0),
                (ModelKind::YoloV4, 1.0),
            ]);
        let batch = g.generate_epoch(0, &sites(2));
        let models: std::collections::HashSet<_> = batch.iter().map(|a| a.model).collect();
        assert_eq!(models.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn probabilities_sum_to_one(weights in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            let n = weights.len();
            let d = DemandModel::Weighted(weights);
            let p = d.probabilities(n);
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn origin_site_is_always_valid(seed in 0u64..500, nsites in 1usize..10) {
            let s = sites(nsites);
            let mut g = WorkloadGenerator::new(seed).with_arrivals(ArrivalProcess::Constant(20));
            for a in g.generate_epoch(0, &s) {
                prop_assert!(a.origin_site < nsites);
            }
        }
    }
}
