//! Seeded per-(app, site) request streams for the event-level serving engine.
//!
//! The aggregate CDN model prices demand as a constant request rate per
//! application.  The event-level engine needs that same demand materialized
//! hour by hour, with diurnal swing and bursts, **without breaking the
//! aggregate accounting**: for any window the per-hour counts of a stream
//! sum exactly to the total the aggregate model implies
//! (`rate × 3600 × hours`, rounded).  Streams therefore *apportion* the
//! aggregate total across hours by modulation weight (largest-remainder
//! rounding) instead of sampling each hour independently — conservation is
//! exact by construction, and every stream is deterministically seeded from
//! its (app, site) pair with the same SplitMix64 chaining the sweep grid
//! uses for per-cell seeds.

use crate::generator::{splitmix64, ArrivalProcess};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reusable scratch buffers for [`RequestStream::fill_hourly_counts`], so
/// the hot serving loop performs no per-window allocations once warm.
#[derive(Debug, Default, Clone)]
pub struct StreamScratch {
    weights: Vec<f64>,
    remainders: Vec<f64>,
    order: Vec<u32>,
}

/// A deterministic per-(app, site) request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestStream {
    /// Index of the application emitting the requests.
    pub app: usize,
    /// Index of the site (region) the requests originate from.
    pub site: usize,
    /// The aggregate model's constant request rate for the app (rps).
    pub rate_rps: f64,
    /// Hour-of-day modulation shape (its `mean` field is ignored; the rate
    /// above scales the stream).
    pub process: ArrivalProcess,
    seed: u64,
}

impl RequestStream {
    /// Creates a stream whose seed is derived from `(base_seed, app, site)`
    /// by chained SplitMix64 mixing, like `SweepCell::cell_seed`.
    pub fn new(
        app: usize,
        site: usize,
        rate_rps: f64,
        process: ArrivalProcess,
        base_seed: u64,
    ) -> Self {
        let seed = splitmix64(splitmix64(base_seed ^ app as u64) ^ site as u64);
        Self {
            app,
            site,
            rate_rps,
            process,
            seed,
        }
    }

    /// The stream's derived seed (exposed for determinism tests).
    pub fn stream_seed(&self) -> u64 {
        self.seed
    }

    /// The request total the aggregate demand model implies for a window of
    /// `hours` hours: `rate × 3600 × hours`, rounded to the nearest request.
    pub fn aggregate_total(&self, hours: usize) -> u64 {
        (self.rate_rps.max(0.0) * 3600.0 * hours as f64).round() as u64
    }

    /// Fills `counts` with per-hour request counts for the window starting
    /// at absolute hour `start_hour` (the window length is `counts.len()`).
    /// The counts sum to [`aggregate_total`](Self::aggregate_total) exactly:
    /// the total is apportioned across hours proportionally to the arrival
    /// process's hourly weights, with the largest-remainder method breaking
    /// fractional ties deterministically.
    pub fn fill_hourly_counts(
        &self,
        start_hour: usize,
        counts: &mut [u64],
        scratch: &mut StreamScratch,
    ) {
        let hours = counts.len();
        if hours == 0 {
            return;
        }
        let total = self.aggregate_total(hours);
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (start_hour as u64).wrapping_mul(0x9e3779b97f4a7c15));

        scratch.weights.clear();
        let mut weight_sum = 0.0;
        for h in 0..hours {
            let hour_of_day = ((start_hour + h) % 24) as f64;
            let w = self.process.hourly_weight(hour_of_day, &mut rng).max(0.0);
            scratch.weights.push(w);
            weight_sum += w;
        }
        if weight_sum <= 0.0 {
            // Degenerate modulation: fall back to a flat profile.
            scratch.weights.iter_mut().for_each(|w| *w = 1.0);
            weight_sum = hours as f64;
        }

        scratch.remainders.clear();
        scratch.order.clear();
        let mut assigned = 0u64;
        for (h, count) in counts.iter_mut().enumerate().take(hours) {
            let share = total as f64 * scratch.weights[h] / weight_sum;
            let floor = share.floor();
            *count = floor as u64;
            assigned += floor as u64;
            scratch.remainders.push(share - floor);
            scratch.order.push(h as u32);
        }

        let leftover = total.saturating_sub(assigned);
        if leftover == 0 {
            return;
        }
        let remainders = &scratch.remainders;
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN share
        // (infinite modulation weights divide to NaN) would make the Equal
        // fallback an inconsistent comparator, which `sort_unstable_by` is
        // allowed to reject.  Under the total order NaN remainders simply
        // sort first and conservation still holds — the floor of a NaN
        // share contributes zero, so the whole total flows through the
        // leftover distribution.
        scratch.order.sort_unstable_by(|&a, &b| {
            remainders[b as usize]
                .total_cmp(&remainders[a as usize])
                .then(a.cmp(&b))
        });
        for i in 0..leftover as usize {
            counts[scratch.order[i % hours] as usize] += 1;
        }
    }

    /// Allocating convenience wrapper around
    /// [`fill_hourly_counts`](Self::fill_hourly_counts).
    pub fn hourly_counts(&self, start_hour: usize, hours: usize) -> Vec<u64> {
        let mut counts = vec![0u64; hours];
        let mut scratch = StreamScratch::default();
        self.fill_hourly_counts(start_hour, &mut counts, &mut scratch);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bursty() -> ArrivalProcess {
        ArrivalProcess::diurnal_bursty()
    }

    #[test]
    fn streams_are_deterministic_and_seed_distinct() {
        let a = RequestStream::new(3, 7, 15.0, bursty(), 42);
        let b = RequestStream::new(3, 7, 15.0, bursty(), 42);
        assert_eq!(a.hourly_counts(100, 48), b.hourly_counts(100, 48));
        assert_ne!(
            RequestStream::new(4, 7, 15.0, bursty(), 42).stream_seed(),
            a.stream_seed()
        );
        assert_ne!(
            RequestStream::new(3, 8, 15.0, bursty(), 42).stream_seed(),
            a.stream_seed()
        );
    }

    #[test]
    fn hourly_counts_conserve_the_aggregate_total_exactly() {
        let s = RequestStream::new(0, 0, 15.0, bursty(), 7);
        for (start, hours) in [(0usize, 24usize), (13, 744), (8000, 1), (5, 168)] {
            let counts = s.hourly_counts(start, hours);
            let sum: u64 = counts.iter().sum();
            assert_eq!(sum, s.aggregate_total(hours), "window ({start}, {hours})");
        }
    }

    #[test]
    fn diurnal_streams_shift_load_toward_the_peak_hour() {
        let process = ArrivalProcess::Diurnal {
            mean: 1.0,
            amplitude: 0.5,
            peak_hour: 19.0,
        };
        let s = RequestStream::new(0, 0, 10.0, process, 11);
        let counts = s.hourly_counts(0, 24);
        assert!(
            counts[19] > counts[7],
            "peak {} vs trough {}",
            counts[19],
            counts[7]
        );
    }

    #[test]
    fn flat_processes_spread_requests_evenly() {
        let s = RequestStream::new(1, 2, 2.0, ArrivalProcess::Constant(1), 9);
        let counts = s.hourly_counts(0, 10);
        for c in &counts {
            assert_eq!(*c, 7200, "counts {counts:?}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let s = RequestStream::new(2, 5, 12.5, bursty(), 21);
        let mut scratch = StreamScratch::default();
        let mut reused = vec![0u64; 72];
        s.fill_hourly_counts(48, &mut reused, &mut scratch);
        // Re-fill with the now-dirty scratch; result must be identical.
        let mut again = vec![0u64; 72];
        s.fill_hourly_counts(48, &mut again, &mut scratch);
        assert_eq!(reused, again);
        assert_eq!(reused, s.hourly_counts(48, 72));
    }

    #[test]
    fn conservation_survives_nan_shares_from_infinite_weights() {
        // Regression for the largest-remainder sort: an infinite modulation
        // amplitude yields infinite hourly weights, whose shares divide to
        // NaN (`total · ∞ / ∞`).  The old `partial_cmp(..).unwrap_or(Equal)`
        // comparator was inconsistent under NaN; `total_cmp` keeps the sort
        // well-defined and the per-hour counts still sum to the aggregate
        // total exactly (NaN floors contribute zero, so the whole total is
        // apportioned by the leftover pass).
        let process = ArrivalProcess::Diurnal {
            mean: 1.0,
            amplitude: f64::INFINITY,
            peak_hour: 19.0,
        };
        let s = RequestStream::new(0, 0, 15.0, process, 3);
        for (start, hours) in [(0usize, 24usize), (100, 48), (8750, 10)] {
            let counts = s.hourly_counts(start, hours);
            let sum: u64 = counts.iter().sum();
            assert_eq!(sum, s.aggregate_total(hours), "window ({start}, {hours})");
        }
    }

    #[test]
    fn zero_rate_streams_emit_nothing() {
        let s = RequestStream::new(0, 0, 0.0, bursty(), 1);
        assert!(s.hourly_counts(0, 24).iter().all(|&c| c == 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn conservation_holds_for_any_seed_and_window(
            seed in 0u64..10_000,
            start in 0usize..8760,
            hours in 1usize..200,
            rate in 0.0f64..50.0,
        ) {
            let s = RequestStream::new(1, 4, rate, bursty(), seed);
            let counts = s.hourly_counts(start, hours);
            let sum: u64 = counts.iter().sum();
            prop_assert_eq!(sum, s.aggregate_total(hours));
        }
    }
}
