//! Figure 17 / Section 6.5: scalability of the incremental placement
//! algorithm with the number of servers and applications.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::ZoneCatalog;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build_problem(catalog: &ZoneCatalog, apps: usize, servers: usize) -> PlacementProblem {
    let traces = catalog.generate_traces(42);
    let zone_count = catalog.len();
    let server_list: Vec<ServerSnapshot> = (0..servers)
        .map(|j| {
            let zone = &catalog.records()[j % zone_count];
            ServerSnapshot::new(j, j, zone.id, DeviceKind::A2, zone.location)
                .with_carbon_intensity(traces[zone.id.index()].mean())
        })
        .collect();
    let app_list: Vec<Application> = (0..apps)
        .map(|i| {
            // Applications originate at zones that host a server, so every
            // application has at least one latency-feasible candidate.
            let zone = &catalog.records()[(i * 7) % servers.min(zone_count)];
            Application::new(AppId(i), ModelKind::ResNet50, 10.0, 40.0, zone.location, 0)
        })
        .collect();
    PlacementProblem::new(server_list, app_list, 1.0)
        .with_latency_model(LatencyModel::deterministic())
}

fn bench_servers(c: &mut Criterion) {
    let catalog = ZoneCatalog::worldwide();
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
    let mut group = c.benchmark_group("placement_vs_servers");
    group.sample_size(10);
    for servers in [100usize, 200, 300, 400] {
        let problem = build_problem(&catalog, 50, servers);
        group.bench_with_input(BenchmarkId::from_parameter(servers), &problem, |b, p| {
            b.iter(|| placer.place(p).unwrap())
        });
    }
    group.finish();
}

fn bench_apps(c: &mut Criterion) {
    let catalog = ZoneCatalog::worldwide();
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
    let mut group = c.benchmark_group("placement_vs_apps");
    group.sample_size(10);
    for apps in [20usize, 60, 100, 140] {
        let problem = build_problem(&catalog, apps, 400);
        group.bench_with_input(BenchmarkId::from_parameter(apps), &problem, |b, p| {
            b.iter(|| placer.place(p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_servers, bench_apps);
criterion_main!(benches);
