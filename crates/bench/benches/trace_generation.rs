//! Throughput of the synthetic carbon-intensity trace generator (the data
//! substrate every experiment depends on).

use carbonedge_datasets::ZoneCatalog;
use carbonedge_grid::TraceGenerator;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_trace_generation(c: &mut Criterion) {
    let catalog = ZoneCatalog::worldwide();
    let profiles = catalog.profiles();
    let single = profiles[0].clone();
    let generator = TraceGenerator::new(42);

    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("single_zone_year", |b| {
        b.iter(|| generator.generate(&single))
    });
    group.bench_function("us_eu_catalog_year", |b| {
        let us_eu = ZoneCatalog::us_and_europe();
        let profiles = us_eu.profiles();
        b.iter(|| generator.generate_all(&profiles))
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation);
criterion_main!(benches);
