//! Section 6.5: per-request placement decision overhead on a regional edge
//! deployment (the paper reports ~3.3 ms per placement decision), plus the
//! radius analysis used by the motivation study.

use carbonedge_analysis::RadiusAnalysis;
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{EdgeSiteCatalog, MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_grid::HourOfYear;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn single_app_regional_problem() -> PlacementProblem {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(StudyRegion::Florida, &catalog);
    let traces = catalog.generate_traces(42);
    let now = HourOfYear::new(5000);
    let servers: Vec<ServerSnapshot> = region
        .zones
        .iter()
        .zip(region.members.iter())
        .enumerate()
        .map(|(site, (zone, (_, loc)))| {
            ServerSnapshot::new(site, site, *zone, DeviceKind::A2, *loc)
                .with_carbon_intensity(traces[zone.index()].at(now))
        })
        .collect();
    let app = Application::new(
        AppId(0),
        ModelKind::ResNet50,
        15.0,
        20.0,
        region.members[0].1,
        0,
    );
    PlacementProblem::new(servers, vec![app], 1.0).with_latency_model(LatencyModel::deterministic())
}

fn bench_decision_overhead(c: &mut Criterion) {
    let problem = single_app_regional_problem();
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
    let mut group = c.benchmark_group("placement_overhead");
    group.sample_size(20);
    group.bench_function("single_app_regional_decision", |b| {
        b.iter(|| placer.place(&problem).unwrap())
    });
    group.finish();
}

fn bench_radius_analysis(c: &mut Criterion) {
    let catalog = ZoneCatalog::worldwide();
    let sites = EdgeSiteCatalog::akamai_like(&catalog);
    let traces = catalog.generate_traces(42);
    let model = LatencyModel::deterministic();
    let mut group = c.benchmark_group("radius_analysis");
    group.sample_size(10);
    group.bench_function("radius_500km_all_sites", |b| {
        b.iter(|| RadiusAnalysis::run(&sites, &traces, &model, 500.0))
    });
    group.finish();
}

criterion_group!(benches, bench_decision_overhead, bench_radius_analysis);
criterion_main!(benches);
