//! Ablation: exact branch-and-bound MILP versus the assignment heuristic on
//! testbed-sized placement instances (the solver-choice ablation called out
//! in DESIGN.md), plus the revised-vs-reference exact-solver comparison
//! whose medians `BENCH_solver.json` snapshots.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_geo::Coordinates;
use carbonedge_grid::{HourOfYear, ZoneId};
use carbonedge_net::LatencyModel;
use carbonedge_solver::ReferenceBranchBound;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind, ResourceDemand};
use criterion::{criterion_group, criterion_main, Criterion};

fn regional_problem(apps_per_site: usize) -> PlacementProblem {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
    let traces = catalog.generate_traces(42);
    let now = HourOfYear::new(4000);
    let servers: Vec<ServerSnapshot> = region
        .zones
        .iter()
        .zip(region.members.iter())
        .enumerate()
        .map(|(site, (zone, (_, loc)))| {
            ServerSnapshot::new(site, site, *zone, DeviceKind::A2, *loc)
                .with_carbon_intensity(traces[zone.index()].at(now))
        })
        .collect();
    let mut apps = Vec::new();
    for (_, loc) in &region.members {
        for _ in 0..apps_per_site {
            apps.push(Application::new(
                AppId(apps.len()),
                ModelKind::ResNet50,
                10.0,
                20.0,
                *loc,
                0,
            ));
        }
    }
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// The SLO-sparse corridor instance of the `solver_scale` snapshot cases:
/// one A2 server per site along the equator (150 km spacing), four ResNet50
/// applications arriving per site, and a 10 ms round-trip SLO that admits at
/// most the two neighbouring sites on either side.  Mirrors
/// `bench_json::scale_problem` so the criterion trend lines and the JSON
/// snapshot measure the same instances.
fn scale_problem(n_sites: usize, apps_per_site: usize) -> PlacementProblem {
    const SITE_SPACING_KM: f64 = 150.0;
    const EARTH_KM_PER_DEG: f64 = 111.195;
    let lon_step = SITE_SPACING_KM / EARTH_KM_PER_DEG;
    let servers: Vec<ServerSnapshot> = (0..n_sites)
        .map(|site| {
            let loc = Coordinates::new(0.0, site as f64 * lon_step);
            let intensity = 80.0 + ((site * 97) % 18) as f64 * 45.0;
            ServerSnapshot::new(site, site, ZoneId(site), DeviceKind::A2, loc)
                .with_carbon_intensity(intensity)
                .with_available(ResourceDemand::new(1280.0, 6.0 * 350.0, 1000.0))
        })
        .collect();
    let apps: Vec<Application> = (0..n_sites * apps_per_site)
        .map(|i| {
            let site = i / apps_per_site;
            Application::new(
                AppId(i),
                ModelKind::ResNet50,
                10.0,
                10.0,
                servers[site].location,
                site,
            )
        })
        .collect();
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

fn bench_exact_vs_heuristic(c: &mut Criterion) {
    let problem = regional_problem(1);
    let exact = IncrementalPlacer::new(PlacementPolicy::CarbonAware).with_exact_size_limit(1_000);
    let heuristic = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();

    // Both paths must agree on the objective for this instance.
    let a = exact.place(&problem).unwrap();
    let b = heuristic.place(&problem).unwrap();
    assert!((a.total_carbon_g - b.total_carbon_g).abs() / a.total_carbon_g < 0.05);

    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    group.bench_function("exact_milp_5x5", |bench| {
        bench.iter(|| exact.place(&problem).unwrap())
    });
    // The pre-rewrite dense Big-M cold-start stack on the identical MILP:
    // the "before" side of the solver overhaul.
    let reference = ReferenceBranchBound::with_node_limit(20_000);
    group.bench_function("exact_reference_5x5", |bench| {
        bench.iter(|| {
            let model = exact.build_model(&problem);
            reference.solve(&model.model)
        })
    });
    group.bench_function("heuristic_5x5", |bench| {
        bench.iter(|| heuristic.place(&problem).unwrap())
    });
    let larger = regional_problem(6);
    group.bench_function("heuristic_30x5", |bench| {
        bench.iter(|| heuristic.place(&larger).unwrap())
    });
    group.finish();
}

fn bench_scale_corridor(c: &mut Criterion) {
    let scale_exact =
        IncrementalPlacer::new(PlacementPolicy::CarbonAware).with_exact_size_limit(100_000);
    let mut group = c.benchmark_group("solver_scale");
    group.sample_size(10);
    // Cold solves: discarding the warm start each iteration times the
    // presolve + sparse-LU + branch-and-bound stack rather than the
    // workspace's same-model memoization.
    for (label, problem) in [
        ("exact_60x15", scale_problem(15, 4)),
        ("exact_200x50", scale_problem(50, 4)),
        ("exact_400x100", scale_problem(100, 4)),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                scale_exact.milp_solver.discard_warm_start();
                scale_exact.place(&problem).unwrap()
            })
        });
    }
    // Decomposition versus forced-monolithic on the identical corridor
    // instances: the race the Dantzig-Wolfe path has to win.  The automatic
    // path (above) picks decomposition at these sizes; this arm disables it
    // and runs the presolve + monolithic branch-and-bound pipeline.
    let mut monolithic =
        IncrementalPlacer::new(PlacementPolicy::CarbonAware).with_exact_size_limit(100_000);
    monolithic.milp_solver.decomp_min_vars = usize::MAX;
    for (label, problem) in [
        ("monolithic_200x50", scale_problem(50, 4)),
        ("monolithic_400x100", scale_problem(100, 4)),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                monolithic.milp_solver.discard_warm_start();
                monolithic.place(&problem).unwrap()
            })
        });
    }
    // The dense Big-M reference on the small corridor only: at 200x50 its
    // dense tableau pays O(m^2) per pivot (~150 ms per solve), which is the
    // comparison BENCH_solver.json snapshots at a reduced sample count.
    let small = scale_problem(15, 4);
    let reference = ReferenceBranchBound::with_node_limit(20_000);
    group.bench_function("reference_60x15", |bench| {
        bench.iter(|| {
            let model = scale_exact.build_model(&small);
            reference.solve(&model.model)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact_vs_heuristic, bench_scale_corridor);
criterion_main!(benches);
