//! Ablation: exact branch-and-bound MILP versus the assignment heuristic on
//! testbed-sized placement instances (the solver-choice ablation called out
//! in DESIGN.md), plus the revised-vs-reference exact-solver comparison
//! whose medians `BENCH_solver.json` snapshots.

use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_grid::HourOfYear;
use carbonedge_net::LatencyModel;
use carbonedge_solver::ReferenceBranchBound;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn regional_problem(apps_per_site: usize) -> PlacementProblem {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
    let traces = catalog.generate_traces(42);
    let now = HourOfYear::new(4000);
    let servers: Vec<ServerSnapshot> = region
        .zones
        .iter()
        .zip(region.members.iter())
        .enumerate()
        .map(|(site, (zone, (_, loc)))| {
            ServerSnapshot::new(site, site, *zone, DeviceKind::A2, *loc)
                .with_carbon_intensity(traces[zone.index()].at(now))
        })
        .collect();
    let mut apps = Vec::new();
    for (_, loc) in &region.members {
        for _ in 0..apps_per_site {
            apps.push(Application::new(
                AppId(apps.len()),
                ModelKind::ResNet50,
                10.0,
                20.0,
                *loc,
                0,
            ));
        }
    }
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

fn bench_exact_vs_heuristic(c: &mut Criterion) {
    let problem = regional_problem(1);
    let exact = IncrementalPlacer::new(PlacementPolicy::CarbonAware).with_exact_size_limit(1_000);
    let heuristic = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();

    // Both paths must agree on the objective for this instance.
    let a = exact.place(&problem).unwrap();
    let b = heuristic.place(&problem).unwrap();
    assert!((a.total_carbon_g - b.total_carbon_g).abs() / a.total_carbon_g < 0.05);

    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    group.bench_function("exact_milp_5x5", |bench| {
        bench.iter(|| exact.place(&problem).unwrap())
    });
    // The pre-rewrite dense Big-M cold-start stack on the identical MILP:
    // the "before" side of the solver overhaul.
    let reference = ReferenceBranchBound::with_node_limit(20_000);
    group.bench_function("exact_reference_5x5", |bench| {
        bench.iter(|| {
            let model = exact.build_model(&problem);
            reference.solve(&model.model)
        })
    });
    group.bench_function("heuristic_5x5", |bench| {
        bench.iter(|| heuristic.place(&problem).unwrap())
    });
    let larger = regional_problem(6);
    group.bench_function("heuristic_30x5", |bench| {
        bench.iter(|| heuristic.place(&larger).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_exact_vs_heuristic);
criterion_main!(benches);
