//! Machine-readable performance snapshots (`BENCH_solver.json`,
//! `BENCH_sweep.json`, `BENCH_serving.json`) behind
//! `experiments --bench-json <dir>`.
//!
//! The solver snapshot measures the median wall time of one placement
//! decision on the paper's regional instances (Section 6.5 reports ~3.3 ms
//! with OR-Tools) through four paths: the **automatic** exact path (the
//! branch-and-bound front door, which routes large block-structured models
//! through Dantzig–Wolfe decomposition and everything else through the
//! monolithic bounded-variable revised simplex), the **forced-monolithic**
//! exact path (decomposition disabled, so the race between the two is
//! explicit per case), the retained **reference** exact path (dense Big-M
//! tableau, cold-start branch-and-bound) and the assignment **heuristic**.
//! Every case emits one unified field set — sizes, medians, speedups,
//! branch-and-bound/simplex/factorization work, the pricing anti-cycling
//! ladder (devex resets, Bland fallback activations) and the
//! column-generation counters (`columns_generated`, `pricing_rounds`,
//! `master_pivots`, zero on monolithic solves) — so trajectory tooling
//! never special-cases entries.  The `solver_scale` cases stretch the
//! comparison to SLO-sparse corridor instances of up to 800 applications ×
//! 100 servers (thousands of MILP rows); the dense reference is impractical
//! beyond 200×50 and is skipped there (`reference_samples: 0`).
//!
//! The sweep snapshot measures cells/second of the quick scenario grid at
//! `--jobs 1` and `--jobs 0` (one worker per CPU; the auto measurement is
//! skipped when only one CPU is detected, because it would duplicate
//! `jobs_1`).
//!
//! The serving snapshot measures the batched event-level engine: the median
//! wall time of a year-long event-level run against the identical
//! aggregate-mode run, and the simulated requests per second per core the
//! difference implies.
//!
//! The JSON is hand-rendered (the offline `serde` shim has no wire format);
//! every field is a plain number or string, so any downstream tooling can
//! parse the snapshots without schema knowledge.

use carbonedge_core::{
    IncrementalPlacer, MigrationCostLevel, PlacementPolicy, PlacementProblem, ServerSnapshot,
};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_geo::Coordinates;
use carbonedge_grid::{HourOfYear, ZoneId};
use carbonedge_net::LatencyModel;
use carbonedge_sim::cdn::{CdnConfig, CdnSimulator};
use carbonedge_sim::ServingMode;
use carbonedge_solver::ReferenceBranchBound;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind, ResourceDemand};
use std::time::Instant;

/// One measured placement instance.
struct SolverCase {
    name: &'static str,
    problem: PlacementProblem,
}

/// Builds the regional placement instance of the `placement_overhead` bench:
/// one application against the Florida mesoscale sites.
fn single_app_regional_problem() -> PlacementProblem {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(StudyRegion::Florida, &catalog);
    let traces = catalog.generate_traces(42);
    let now = HourOfYear::new(5000);
    let servers: Vec<ServerSnapshot> = region
        .zones
        .iter()
        .zip(region.members.iter())
        .enumerate()
        .map(|(site, (zone, (_, loc)))| {
            ServerSnapshot::new(site, site, *zone, DeviceKind::A2, *loc)
                .with_carbon_intensity(traces[zone.index()].at(now))
        })
        .collect();
    let app = Application::new(
        AppId(0),
        ModelKind::ResNet50,
        15.0,
        20.0,
        region.members[0].1,
        0,
    );
    PlacementProblem::new(servers, vec![app], 1.0).with_latency_model(LatencyModel::deterministic())
}

/// Builds the regional instance of the `solver_ablation` bench:
/// `apps_per_site` applications per Central-EU mesoscale site.
fn regional_problem(apps_per_site: usize) -> PlacementProblem {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
    let traces = catalog.generate_traces(42);
    let now = HourOfYear::new(4000);
    let servers: Vec<ServerSnapshot> = region
        .zones
        .iter()
        .zip(region.members.iter())
        .enumerate()
        .map(|(site, (zone, (_, loc)))| {
            ServerSnapshot::new(site, site, *zone, DeviceKind::A2, *loc)
                .with_carbon_intensity(traces[zone.index()].at(now))
        })
        .collect();
    let mut apps = Vec::new();
    for (_, loc) in &region.members {
        for _ in 0..apps_per_site {
            apps.push(Application::new(
                AppId(apps.len()),
                ModelKind::ResNet50,
                10.0,
                20.0,
                *loc,
                0,
            ));
        }
    }
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// Builds a corridor-scale instance for the `solver_scale` cases: one A2
/// server per site, sites strung 150 km apart along the equator, and
/// `apps_per_site` identical ResNet50 applications arriving at every site.
///
/// Under the deterministic latency model the round trip is
/// `3 ms + 0.018 ms/km × distance`, so the 10 ms SLO admits only servers
/// within ~390 km — the two neighbouring sites on either side.  The MILP
/// therefore stays SLO-sparse (≤5 feasible servers per application) no
/// matter how long the corridor grows, which is what lets the dense
/// reference solver remain runnable at 200×50 while the instance still
/// scales the constraint count into the thousands.  Memory sized for six
/// model images per server keeps capacity genuinely binding: with four
/// local applications per site, chasing a low-carbon neighbour competes
/// with its own arrivals.
fn scale_problem(n_sites: usize, apps_per_site: usize) -> PlacementProblem {
    scale_problem_with_slots(n_sites, apps_per_site, 6)
}

/// [`scale_problem`] with an explicit per-server memory-slot count: the
/// densest corridor case (eight local applications per site) needs twelve
/// slots per server to stay globally feasible while capacity remains
/// binding.
fn scale_problem_with_slots(
    n_sites: usize,
    apps_per_site: usize,
    slots: usize,
) -> PlacementProblem {
    const SITE_SPACING_KM: f64 = 150.0;
    const EARTH_KM_PER_DEG: f64 = 111.195;
    const SLO_MS: f64 = 10.0;
    let lon_step = SITE_SPACING_KM / EARTH_KM_PER_DEG;
    let servers: Vec<ServerSnapshot> = (0..n_sites)
        .map(|site| {
            let loc = Coordinates::new(0.0, site as f64 * lon_step);
            // Deterministic pseudo-random intensities spread over
            // 80..845 g/kWh so neighbouring sites genuinely compete.
            let intensity = 80.0 + ((site * 97) % 18) as f64 * 45.0;
            ServerSnapshot::new(site, site, ZoneId(site), DeviceKind::A2, loc)
                .with_carbon_intensity(intensity)
                .with_available(ResourceDemand::new(
                    slots as f64 * 1280.0 / 6.0,
                    slots as f64 * 350.0,
                    slots as f64 * 1000.0 / 6.0,
                ))
        })
        .collect();
    let apps: Vec<Application> = (0..n_sites * apps_per_site)
        .map(|i| {
            let site = i / apps_per_site;
            Application::new(
                AppId(i),
                ModelKind::ResNet50,
                10.0,
                SLO_MS,
                servers[site].location,
                site,
            )
        })
        .collect();
    PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
}

/// Median wall time of `f` over `samples` runs, in nanoseconds.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u64 {
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Per-case measurement protocol for [`solver_case_entry`].
struct CaseConfig {
    /// Samples for the automatic, forced-monolithic and heuristic paths.
    revised_samples: usize,
    /// Samples for the dense Big-M reference path; `0` skips it entirely
    /// (the corridor cases beyond 200×50, where dense O(m²)-per-pivot work
    /// is impractical) and reports zeroed reference fields.
    reference_samples: usize,
    /// Discard the exact solvers' warm start before every sample, so the
    /// median times a genuine cold solve instead of the workspace's
    /// same-model memoization.  The small regional cases keep it off to
    /// measure the steady-state (warm re-optimization) path the placement
    /// service actually runs.
    discard_warm: bool,
}

/// Measures one placement instance through every solver path and renders
/// the **unified** case schema: the automatic exact path (decomposition at
/// ≥ `BranchBoundSolver::DECOMP_MIN_VARS` variables on block-structured
/// models, monolithic below), the forced-monolithic path racing it, the
/// dense reference oracle (optional) and the assignment heuristic, plus the
/// branch-and-bound / simplex / factorization / pricing-ladder /
/// column-generation counters of one cold automatic solve on a fresh
/// workspace.  On models below the decomposition threshold the two exact
/// paths coincide, so `speedup_vs_monolithic` hovers around 1 and the
/// column-generation counters are zero — the schema stays identical either
/// way.
fn solver_case_entry(name: &str, problem: &PlacementProblem, cfg: &CaseConfig) -> String {
    let (apps, servers) = problem.size();
    // `place()` only takes the exact path while `apps * servers` stays
    // under the limit; the 400x100 / 800x100 corridor cases sit at 40k and
    // 80k, so the limit must clear them or the medians silently time the
    // heuristic fallback on both arms.
    let exact = IncrementalPlacer::new(PlacementPolicy::CarbonAware).with_exact_size_limit(100_000);
    let mut monolithic =
        IncrementalPlacer::new(PlacementPolicy::CarbonAware).with_exact_size_limit(100_000);
    monolithic.milp_solver.decomp_min_vars = usize::MAX;
    let heuristic = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();

    // The automatic exact path, as the placement service runs it.
    let revised_ns = median_ns(cfg.revised_samples, || {
        if cfg.discard_warm {
            exact.milp_solver.discard_warm_start();
        }
        let _ = exact.place(problem).unwrap();
    });
    // The same protocol with decomposition disabled: the race the
    // decomposition path has to win at corridor scale.
    let monolithic_ns = median_ns(cfg.revised_samples, || {
        if cfg.discard_warm {
            monolithic.milp_solver.discard_warm_start();
        }
        let _ = monolithic.place(problem).unwrap();
    });
    let heuristic_ns = median_ns(cfg.revised_samples, || {
        let _ = heuristic.place(problem).unwrap();
    });
    // The retained dense Big-M reference path on the identical MILP.
    let placement_model = exact.build_model(problem);
    let reference_solver = ReferenceBranchBound::with_node_limit(20_000);
    let reference_ns = if cfg.reference_samples > 0 {
        median_ns(cfg.reference_samples, || {
            let model = exact.build_model(problem);
            let _ = reference_solver.solve(&model.model);
        })
    } else {
        0
    };

    // Algorithmic work of the exact paths on the same model: a fresh
    // workspace gives the cold-start counters, a second solve on the
    // now-warm workspace gives the steady-state (re-optimization) count.
    let cold_solver = exact.milp_solver.clone();
    let revised_stats = cold_solver.solve(&placement_model.model);
    let revised_warm_stats = cold_solver.solve(&placement_model.model);
    let mono_solver = monolithic.milp_solver.clone();
    let mono_stats = mono_solver.solve(&placement_model.model);
    debug_assert!(
        (revised_stats.objective - mono_stats.objective).abs()
            <= 1e-6 * revised_stats.objective.abs().max(1.0),
        "automatic and forced-monolithic solvers disagree on the benchmark model"
    );
    let (reference_nodes, reference_pivots) = if cfg.reference_samples > 0 {
        let reference_stats = reference_solver.solve(&placement_model.model);
        debug_assert!(
            (revised_stats.objective - reference_stats.objective).abs()
                <= 1e-6 * revised_stats.objective.abs().max(1.0),
            "revised and reference solvers disagree on the benchmark model"
        );
        (reference_stats.nodes, reference_stats.pivots)
    } else {
        (0, 0)
    };

    let decomp = revised_stats.decomp.unwrap_or_default();
    let speedup_vs_monolithic = monolithic_ns as f64 / revised_ns.max(1) as f64;
    let speedup_vs_reference = reference_ns as f64 / revised_ns.max(1) as f64;
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"apps\": {},\n",
            "      \"servers\": {},\n",
            "      \"milp_vars\": {},\n",
            "      \"milp_rows\": {},\n",
            "      \"exact_revised_ns_median\": {},\n",
            "      \"exact_monolithic_ns_median\": {},\n",
            "      \"speedup_vs_monolithic\": {:.2},\n",
            "      \"exact_reference_ns_median\": {},\n",
            "      \"reference_samples\": {},\n",
            "      \"speedup_vs_reference\": {:.2},\n",
            "      \"heuristic_ns_median\": {},\n",
            "      \"bb_nodes\": {},\n",
            "      \"simplex_pivots_cold\": {},\n",
            "      \"simplex_pivots_warm\": {},\n",
            "      \"refactorizations\": {},\n",
            "      \"peak_eta_len\": {},\n",
            "      \"fill_in_ratio\": {:.3},\n",
            "      \"devex_resets\": {},\n",
            "      \"bland_activations\": {},\n",
            "      \"columns_generated\": {},\n",
            "      \"pricing_rounds\": {},\n",
            "      \"master_pivots\": {},\n",
            "      \"reference_bb_nodes\": {},\n",
            "      \"reference_simplex_pivots\": {}\n",
            "    }}"
        ),
        name,
        apps,
        servers,
        placement_model.model.num_vars(),
        placement_model.model.num_constraints(),
        revised_ns,
        monolithic_ns,
        speedup_vs_monolithic,
        reference_ns,
        cfg.reference_samples,
        speedup_vs_reference,
        heuristic_ns,
        revised_stats.nodes,
        revised_stats.pivots,
        revised_warm_stats.pivots,
        revised_stats.factor.refactorizations,
        revised_stats.factor.peak_eta_len,
        revised_stats.factor.fill_in_ratio,
        revised_stats.pricing.devex_resets,
        revised_stats.pricing.bland_activations,
        decomp.columns_generated,
        decomp.pricing_rounds,
        decomp.master_pivots,
        reference_nodes,
        reference_pivots,
    )
}

/// Renders the solver snapshot.  `quick` reduces the sample count.
pub fn solver_bench_json(quick: bool) -> String {
    let samples = if quick { 11 } else { 31 };
    let small = CaseConfig {
        revised_samples: samples,
        reference_samples: samples,
        discard_warm: false,
    };
    let scale = CaseConfig {
        revised_samples: if quick { 3 } else { 7 },
        reference_samples: if quick { 1 } else { 3 },
        discard_warm: true,
    };
    // The dense reference pays O(m²) per pivot on the full unpresolved
    // model; beyond 200×50 it is impractical and the corridor cases race
    // the decomposition against the monolithic cold path only.
    let scale_no_reference = CaseConfig {
        reference_samples: 0,
        ..scale
    };

    let cases = [
        SolverCase {
            name: "placement_overhead/single_app_regional_decision",
            problem: single_app_regional_problem(),
        },
        SolverCase {
            name: "solver_ablation/exact_milp_5x5",
            problem: regional_problem(1),
        },
    ];

    let mut entries = Vec::new();
    for case in &cases {
        entries.push(solver_case_entry(case.name, &case.problem, &small));
    }

    let scale_cases = [
        ("solver_scale/exact_60x15", scale_problem(15, 4), &scale),
        ("solver_scale/exact_120x30", scale_problem(30, 4), &scale),
        ("solver_scale/exact_200x50", scale_problem(50, 4), &scale),
        (
            "solver_scale/exact_400x100",
            scale_problem(100, 4),
            &scale_no_reference,
        ),
        (
            "solver_scale/exact_800x100",
            scale_problem_with_slots(100, 8, 12),
            &scale_no_reference,
        ),
    ];
    for (name, problem, cfg) in &scale_cases {
        entries.push(solver_case_entry(name, problem, cfg));
    }

    entries.push(epoch_replan_entry(samples));
    entries.push(migration_replan_entry(samples));

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"solver\",\n",
            "  \"unit\": \"ns\",\n",
            "  \"samples_per_case\": {},\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        samples,
        entries.join(",\n")
    )
}

/// Measures epoch-to-epoch re-placement through the warm-started exact
/// path: a small European deployment re-solved at every monthly epoch as
/// carbon intensities shift.  Consecutive epochs build structurally
/// identical MILPs whose costs change, so each re-solve restarts primal
/// phase-2 in the shared `MilpWorkspace` instead of cold-starting; the
/// pivot counts come from the placer's accumulated-pivot counter via
/// `CdnResult::solver_pivots`.
fn epoch_replan_entry(samples: usize) -> String {
    let mut config = CdnConfig::new(ZoneArea::Europe).with_site_limit(3);
    config.servers_per_site = 2;
    let simulator = CdnSimulator::new(config);
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);

    placer.milp_solver.discard_warm_start();
    let cold_run = simulator.run_with(&placer);
    let before = ReplanCounters::snapshot(&placer);
    let warm_run = simulator.run_with(&placer);
    let warm = before.diff(&placer);
    debug_assert_eq!(
        cold_run.outcome, warm_run.outcome,
        "warm epoch re-solves must stay exact"
    );
    let epochs = cold_run.epochs.len();
    let run_ns = median_ns(samples, || {
        let _ = simulator.run_with(&placer);
    });

    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"epoch_replan/monthly_eu_3site_exact\",\n",
            "      \"epochs\": {},\n",
            "      \"exact_decisions\": {},\n",
            "      \"moves\": {},\n",
            "      \"run_ns_median\": {},\n",
            "      \"ns_per_epoch_median\": {},\n",
            "      \"pivots_cold_run\": {},\n",
            "      \"pivots_warm_run\": {},\n",
            "{}",
            "    }}"
        ),
        epochs,
        cold_run.exact_decisions,
        cold_run.moves,
        run_ns,
        run_ns / epochs.max(1) as u64,
        cold_run.solver_pivots,
        warm_run.solver_pivots,
        warm.render(&placer),
    )
}

/// Measures stateful delta re-placement through the warm-started exact
/// path: the `epoch_replan` deployment re-solved monthly with
/// paper-calibrated migration costs.  The migration terms are folded into
/// the objective coefficients — the constraint matrix never changes — so
/// every delta re-solve is still a cost-only warm restart (primal phase-2)
/// in the shared `MilpWorkspace`, and the warm run's pivot count stays at
/// or below the cold run's.
fn migration_replan_entry(samples: usize) -> String {
    let mut config = CdnConfig::new(ZoneArea::Europe)
        .with_site_limit(3)
        .with_migration(MigrationCostLevel::Paper);
    config.servers_per_site = 2;
    let simulator = CdnSimulator::new(config);
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);

    placer.milp_solver.discard_warm_start();
    let cold_run = simulator.run_with(&placer);
    let before = ReplanCounters::snapshot(&placer);
    let warm_run = simulator.run_with(&placer);
    let warm = before.diff(&placer);
    debug_assert_eq!(
        cold_run.outcome, warm_run.outcome,
        "warm delta re-solves must stay exact"
    );
    let epochs = cold_run.epochs.len();
    let run_ns = median_ns(samples, || {
        let _ = simulator.run_with(&placer);
    });

    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"migration_replan/monthly_eu_3site_exact_paper\",\n",
            "      \"epochs\": {},\n",
            "      \"exact_decisions\": {},\n",
            "      \"moves\": {},\n",
            "      \"run_ns_median\": {},\n",
            "      \"ns_per_epoch_median\": {},\n",
            "      \"pivots_cold_run\": {},\n",
            "      \"pivots_warm_run\": {},\n",
            "{}",
            "    }}"
        ),
        epochs,
        cold_run.exact_decisions,
        cold_run.moves,
        run_ns,
        run_ns / epochs.max(1) as u64,
        cold_run.solver_pivots,
        warm_run.solver_pivots,
        warm.render(&placer),
    )
}

/// Snapshot/diff helper for the replan entries: captures the placer's
/// accumulated solver counters before the warm run, so the entry can report
/// the *warm-run* factorization, pricing-ladder and column-generation work
/// (all summable counters; the peak eta length and fill-in ratio are
/// running max/latest values and are reported as of the diff point).
struct ReplanCounters {
    refactorizations: usize,
    devex_resets: usize,
    bland_activations: usize,
    columns_generated: usize,
    pricing_rounds: usize,
    master_pivots: usize,
}

impl ReplanCounters {
    fn snapshot(placer: &IncrementalPlacer) -> Self {
        let factor = placer.milp_solver.accumulated_factor_stats();
        let pricing = placer.milp_solver.accumulated_pricing_stats();
        let decomp = placer.milp_solver.accumulated_decomp_stats();
        Self {
            refactorizations: factor.refactorizations,
            devex_resets: pricing.devex_resets,
            bland_activations: pricing.bland_activations,
            columns_generated: decomp.columns_generated,
            pricing_rounds: decomp.pricing_rounds,
            master_pivots: decomp.master_pivots,
        }
    }

    fn diff(&self, placer: &IncrementalPlacer) -> Self {
        let now = Self::snapshot(placer);
        Self {
            refactorizations: now.refactorizations - self.refactorizations,
            devex_resets: now.devex_resets - self.devex_resets,
            bland_activations: now.bland_activations - self.bland_activations,
            columns_generated: now.columns_generated - self.columns_generated,
            pricing_rounds: now.pricing_rounds - self.pricing_rounds,
            master_pivots: now.master_pivots - self.master_pivots,
        }
    }

    /// Renders the unified observability tail shared by both replan
    /// entries: model dimensions plus this counter diff.
    fn render(&self, placer: &IncrementalPlacer) -> String {
        let (vars, rows) = placer.milp_solver.last_model_dims();
        let factor = placer.milp_solver.accumulated_factor_stats();
        format!(
            concat!(
                "      \"milp_vars\": {},\n",
                "      \"milp_rows\": {},\n",
                "      \"refactorizations\": {},\n",
                "      \"peak_eta_len\": {},\n",
                "      \"fill_in_ratio\": {:.3},\n",
                "      \"devex_resets\": {},\n",
                "      \"bland_activations\": {},\n",
                "      \"columns_generated\": {},\n",
                "      \"pricing_rounds\": {},\n",
                "      \"master_pivots\": {}\n",
            ),
            vars,
            rows,
            self.refactorizations,
            factor.peak_eta_len,
            factor.fill_in_ratio,
            self.devex_resets,
            self.bland_activations,
            self.columns_generated,
            self.pricing_rounds,
            self.master_pivots,
        )
    }
}

/// Renders the sweep snapshot: quick-grid cells/second at one worker and at
/// one worker per CPU.  On a single-CPU machine the automatic worker count
/// resolves to the same single worker as `jobs_1`, so the duplicate
/// measurement is skipped rather than snapshotted as a misleading
/// "parallel" figure.
pub fn sweep_bench_json(quick: bool) -> String {
    let detected_cpus = rayon::current_num_threads();
    let mut modes = vec![("jobs_1", 1usize)];
    if detected_cpus > 1 {
        modes.push(("jobs_auto", 0usize));
    }
    let mut sections = Vec::new();
    let mut cells = 0usize;
    for (label, jobs) in modes {
        let start = Instant::now();
        let report = crate::summary::run_sweep(quick, jobs);
        let seconds = start.elapsed().as_secs_f64();
        cells = report.cells.len();
        let rate = cells as f64 / seconds.max(1e-9);
        sections.push(format!(
            concat!(
                "  \"{}\": {{\n",
                "    \"workers\": {},\n",
                "    \"seconds\": {:.3},\n",
                "    \"cells_per_sec\": {:.2}\n",
                "  }}"
            ),
            label, report.jobs, seconds, rate
        ));
    }
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sweep\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"cells\": {},\n",
            "  \"detected_cpus\": {},\n",
            "{}\n",
            "}}\n"
        ),
        if quick { "quick" } else { "default" },
        cells,
        detected_cpus,
        sections.join(",\n")
    )
}

/// Renders the serving snapshot: the event-level engine's cost on top of
/// the identical aggregate run, and the simulated request throughput that
/// overhead implies.  The engine is batched — each (app, hour) batch is
/// routed, queued and drained in O(1) — so the per-request figure is the
/// batch throughput amortized over the requests the batches carry, not a
/// per-request event loop.  Both runs are single-threaded, so the figure is
/// per core.
pub fn serving_bench_json(quick: bool) -> String {
    let samples = if quick { 3 } else { 7 };
    let config = CdnConfig::new(ZoneArea::Europe).with_site_limit(if quick { 10 } else { 20 });
    let aggregate = CdnSimulator::new(config.clone());
    let event = CdnSimulator::new(config.with_serving(ServingMode::EventLevel));
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();

    let result = event.run_with(&placer);
    let metrics = result
        .serving
        .expect("event-level runs record serving metrics");
    let aggregate_ns = median_ns(samples, || {
        let _ = aggregate.run_with(&placer);
    });
    let event_ns = median_ns(samples, || {
        let _ = event.run_with(&placer);
    });
    let serving_ns = event_ns.saturating_sub(aggregate_ns).max(1);
    let events_per_sec = metrics.requests_total as f64 * 1e9 / serving_ns as f64;

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"samples_per_case\": {},\n",
            "  \"hours\": {},\n",
            "  \"requests_total\": {},\n",
            "  \"aggregate_run_ns_median\": {},\n",
            "  \"event_run_ns_median\": {},\n",
            "  \"serving_overhead_ns\": {},\n",
            "  \"events_per_sec_per_core\": {:.0},\n",
            "  \"p99_ms\": {:.3},\n",
            "  \"drop_percent\": {:.4}\n",
            "}}\n"
        ),
        if quick {
            "eu_10site_quick"
        } else {
            "eu_20site_default"
        },
        samples,
        metrics.hours,
        metrics.requests_total,
        aggregate_ns,
        event_ns,
        serving_ns,
        events_per_sec,
        metrics.p99_ms,
        metrics.drop_percent(),
    )
}

/// Runs the benches and writes `BENCH_solver.json`, `BENCH_sweep.json` and
/// `BENCH_serving.json` into `dir`, creating it if needed.  Returns the
/// written paths.
pub fn write_bench_json(
    dir: &std::path::Path,
    quick: bool,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let solver_path = dir.join("BENCH_solver.json");
    std::fs::write(&solver_path, solver_bench_json(quick))?;
    let sweep_path = dir.join("BENCH_sweep.json");
    std::fs::write(&sweep_path, sweep_bench_json(quick))?;
    let serving_path = dir.join("BENCH_serving.json");
    std::fs::write(&serving_path, serving_bench_json(quick))?;
    Ok(vec![solver_path, sweep_path, serving_path])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_bench_json_is_wellformed_and_reports_speedup() {
        let json = solver_bench_json(true);
        assert!(json.contains("\"bench\": \"solver\""));
        assert!(json.contains("placement_overhead/single_app_regional_decision"));
        assert!(json.contains("solver_ablation/exact_milp_5x5"));
        assert!(json.contains("\"speedup_vs_reference\""));
        assert!(json.contains("\"bb_nodes\""));
        assert!(json.contains("solver_scale/exact_60x15"));
        assert!(json.contains("solver_scale/exact_120x30"));
        assert!(json.contains("solver_scale/exact_200x50"));
        assert!(json.contains("solver_scale/exact_400x100"));
        assert!(json.contains("solver_scale/exact_800x100"));
        assert!(json.contains("\"refactorizations\""));
        assert!(json.contains("\"peak_eta_len\""));
        assert!(json.contains("\"fill_in_ratio\""));
        assert!(json.contains("\"milp_rows\""));
        assert!(json.contains("\"exact_monolithic_ns_median\""));
        assert!(json.contains("\"speedup_vs_monolithic\""));
        assert!(json.contains("\"devex_resets\""));
        assert!(json.contains("\"bland_activations\""));
        assert!(json.contains("\"columns_generated\""));
        assert!(json.contains("\"pricing_rounds\""));
        assert!(json.contains("\"master_pivots\""));
        assert!(json.contains("epoch_replan/monthly_eu_3site_exact"));
        assert!(json.contains("migration_replan/monthly_eu_3site_exact_paper"));
        assert!(json.contains("\"moves\""));
        assert!(json.contains("\"pivots_warm_run\""));
        // Unified schema: every case entry carries the full field set, so
        // the per-case fields appear once per case.
        let case_count = json.matches("\"name\":").count();
        for field in [
            "\"milp_vars\":",
            "\"milp_rows\":",
            "\"refactorizations\":",
            "\"devex_resets\":",
            "\"bland_activations\":",
            "\"columns_generated\":",
            "\"pricing_rounds\":",
            "\"master_pivots\":",
        ] {
            assert_eq!(
                json.matches(field).count(),
                case_count,
                "field {field} missing from some case entries"
            );
        }
        // Balanced braces — a cheap structural sanity check without a JSON
        // parser in the offline environment.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }

    #[test]
    fn serving_bench_json_is_wellformed_and_reports_throughput() {
        let json = serving_bench_json(true);
        assert!(json.contains("\"bench\": \"serving\""));
        assert!(json.contains("\"requests_total\""));
        assert!(json.contains("\"events_per_sec_per_core\""));
        assert!(json.contains("\"serving_overhead_ns\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }

    #[test]
    fn sweep_bench_json_records_cpus_and_never_duplicates_workers() {
        // Built on the quick grid this takes a few seconds; the structural
        // claims are what matter: the detected CPU count is recorded, and
        // `jobs_auto` appears only when it measures something `jobs_1`
        // does not.
        let json = sweep_bench_json(true);
        assert!(json.contains("\"detected_cpus\""));
        assert!(json.contains("\"jobs_1\""));
        let cpus = rayon::current_num_threads();
        assert_eq!(
            json.contains("\"jobs_auto\""),
            cpus > 1,
            "jobs_auto must appear exactly when more than one CPU is available"
        );
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
    }

    #[test]
    fn scale_problem_keeps_slo_sparsity_bounded() {
        let p = scale_problem(15, 4);
        let (apps, servers) = p.size();
        assert_eq!((apps, servers), (60, 15));
        for i in 0..apps {
            let feasible = (0..servers).filter(|&j| p.is_feasible_pair(i, j)).count();
            assert!(
                (3..=5).contains(&feasible),
                "app {i} has {feasible} feasible servers; the corridor \
                 spacing or SLO drifted"
            );
        }
    }

    #[test]
    fn median_ns_is_order_insensitive() {
        let mut calls = 0usize;
        let ns = median_ns(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(ns < 1_000_000_000);
    }
}
