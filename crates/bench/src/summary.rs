//! The scenario grids behind `experiments --sweep` and the deterministic
//! quick summary snapshotted by the golden-output regression test.
//!
//! The quick summary replays the figure-generating sweeps of the paper
//! (Figure 11's area comparison, Figure 12's latency-tolerance sweep,
//! Figure 14's demand/capacity skew) on a reduced site catalog through the
//! sweep engine.  Its rendering is seed-stable and independent of the worker
//! count, so `tests/experiments_golden.rs` can diff it against a checked-in
//! snapshot with numeric tolerances and catch silent drift in any layer
//! under it (datasets, traces, solver, simulator, aggregation).

use carbonedge_core::MigrationCostLevel;
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_grid::{EpochSchedule, ForecasterKind};
use carbonedge_sim::ServingMode;
use carbonedge_sweep::{SweepExecutor, SweepReport, SweepSpec};

/// Times a sweep run and stamps the wall-clock seconds onto the report.
/// The executor itself never reads the clock (its decision logic must stay
/// timing-independent — see the `wall-clock` lint rule), so measurement
/// lives here at the bench edge, next to the code that prints
/// [`SweepReport::footer`].
fn timed(run: impl FnOnce() -> SweepReport) -> SweepReport {
    let started = std::time::Instant::now();
    let mut report = run();
    report.wall_seconds = started.elapsed().as_secs_f64();
    report
}

/// The grid `experiments --sweep` runs: both continents, three latency
/// limits, all three demand/capacity scenarios, CarbonEdge versus the
/// Latency-aware baseline.  `quick` caps the site catalog at 40 sites per
/// continent (the golden-test configuration); the full grid uses 120.
pub fn sweep_spec(quick: bool) -> SweepSpec {
    let spec = SweepSpec::quick_default();
    if quick {
        spec
    } else {
        SweepSpec {
            name: "default-grid".into(),
            ..spec.with_site_limit(Some(120))
        }
    }
}

/// Runs the quick grid and returns its deterministic rendering.
pub fn quick_summary(jobs: usize) -> String {
    let report = run_sweep(true, jobs);
    report.render()
}

/// Runs the `--sweep` grid with `jobs` workers.
pub fn run_sweep(quick: bool, jobs: usize) -> SweepReport {
    timed(|| {
        SweepExecutor::new()
            .with_jobs(jobs)
            .run(&sweep_spec(quick))
            .expect("the built-in sweep grids are valid")
    })
}

/// The grid `experiments --forecast` runs: forecaster (oracle, persistence,
/// 24-hour moving average) crossed with the epoch schedule (monthly,
/// weekly) and both policies, so the regret table isolates what forecast
/// error and re-planning cadence cost in realized carbon.  The deployment
/// runs at ~80% utilization (4 apps per site on single-server sites) —
/// under the paper's lightly-loaded defaults a mis-forecast almost never
/// flips a placement (the zone ranking survives), so the saturated shape is
/// where regret becomes visible.  `quick` keeps the grid to the US on a
/// 25-site cap (the golden-test configuration); the full grid adds Europe
/// and a 100-site cap.
pub fn forecast_spec(quick: bool) -> SweepSpec {
    let areas = if quick {
        vec![ZoneArea::UnitedStates]
    } else {
        vec![ZoneArea::UnitedStates, ZoneArea::Europe]
    };
    SweepSpec::new(if quick {
        "forecast-quick"
    } else {
        "forecast-grid"
    })
    .with_areas(areas)
    .with_site_limit(Some(if quick { 25 } else { 100 }))
    .with_demand(4, 1)
    .with_forecasters(vec![
        ForecasterKind::Oracle,
        ForecasterKind::Persistence,
        ForecasterKind::moving_average_24h(),
    ])
    .with_epochs(vec![EpochSchedule::Monthly, EpochSchedule::Weekly])
}

/// Runs the `--forecast` grid with `jobs` workers.
pub fn run_forecast(quick: bool, jobs: usize) -> SweepReport {
    timed(|| {
        SweepExecutor::new()
            .with_jobs(jobs)
            .run(&forecast_spec(quick))
            .expect("the built-in forecast grids are valid")
    })
}

/// Runs the quick forecast grid and returns the deterministic regret table
/// (snapshotted by the golden-output regression test).
pub fn forecast_summary(jobs: usize) -> String {
    run_forecast(true, jobs).render_forecast_regret()
}

/// The grid `experiments --migration` runs: the re-placement epoch schedule
/// (monthly, weekly, daily) crossed with the migration-cost calibration
/// (free, paper, heavy) and both policies, so the churn table isolates what
/// re-placement cadence buys once moving a service has a price.  The grid
/// is European with a 30 ms latency limit — the wide reach puts near-tied
/// zones in every feasible set, so intensity rankings genuinely flip
/// between epochs and free re-placement churns (hundreds of moves monthly,
/// ~10k daily); at the paper's lightly-loaded request rate each move is
/// worth milligrams while a paper-calibrated move costs ~10 g, so the
/// hysteresis suppresses the churn and the daily savings shrink
/// monotonically as the migration cost rises.  `quick` caps the catalog at
/// 60 sites (the golden-test configuration); the full grid uses 100.
pub fn migration_spec(quick: bool) -> SweepSpec {
    SweepSpec::new(if quick {
        "migration-quick"
    } else {
        "migration-grid"
    })
    .with_areas(vec![ZoneArea::Europe])
    .with_latency_limits(vec![30.0])
    .with_site_limit(Some(if quick { 60 } else { 100 }))
    .with_epochs(vec![
        EpochSchedule::Monthly,
        EpochSchedule::Weekly,
        EpochSchedule::Daily,
    ])
    .with_migrations(MigrationCostLevel::ALL.to_vec())
}

/// Runs the `--migration` grid with `jobs` workers.
pub fn run_migration(quick: bool, jobs: usize) -> SweepReport {
    timed(|| {
        SweepExecutor::new()
            .with_jobs(jobs)
            .run(&migration_spec(quick))
            .expect("the built-in migration grids are valid")
    })
}

/// Runs the quick migration grid and returns the deterministic churn table
/// (snapshotted by the golden-output regression test).
pub fn migration_summary(jobs: usize) -> String {
    run_migration(true, jobs).render_migration()
}

/// The grid `experiments --serving` runs: all three serving modes
/// (aggregate, event-level, event-level with the online drift trigger)
/// crossed with both policies, so the serving table prices carbon-aware
/// placement in tail latency and drops once requests are materialized and
/// queued.  The deployment runs saturated (4 apps per site on single-server
/// sites) with a 30 ms European reach — at the paper's lightly-loaded
/// defaults the queues never fill and every mode serves everything, so the
/// saturated shape is where diurnal peaks and bursts produce real drops and
/// tail inflation.  `quick` caps the catalog at 25 sites (the golden-test
/// configuration); the full grid uses 60.
pub fn serving_spec(quick: bool) -> SweepSpec {
    SweepSpec::new(if quick {
        "serving-quick"
    } else {
        "serving-grid"
    })
    .with_areas(vec![ZoneArea::Europe])
    .with_latency_limits(vec![30.0])
    .with_site_limit(Some(if quick { 25 } else { 60 }))
    .with_demand(4, 1)
    .with_servings(ServingMode::ALL.to_vec())
}

/// Runs the `--serving` grid with `jobs` workers.
pub fn run_serving(quick: bool, jobs: usize) -> SweepReport {
    timed(|| {
        SweepExecutor::new()
            .with_jobs(jobs)
            .run(&serving_spec(quick))
            .expect("the built-in serving grids are valid")
    })
}

/// Runs the quick serving grid and returns the deterministic serving table
/// (snapshotted by the golden-output regression test).
pub fn serving_summary(jobs: usize) -> String {
    run_serving(true, jobs).render_serving()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_grids_are_valid_and_multi_axis() {
        for quick in [true, false] {
            let spec = sweep_spec(quick);
            assert!(spec.validate().is_ok());
            assert!(
                spec.axis_count() >= 3,
                "--sweep must run a >=3-axis grid, got {}",
                spec.axis_count()
            );
        }
        assert_eq!(sweep_spec(true).cells()[0].site_limit, Some(40));
        assert_eq!(sweep_spec(false).cells()[0].site_limit, Some(120));
    }

    #[test]
    fn migration_grids_cross_epoch_migration_and_policy() {
        for quick in [true, false] {
            let spec = migration_spec(quick);
            assert!(spec.validate().is_ok());
            assert_eq!(spec.epochs.len(), 3);
            assert_eq!(spec.migrations.len(), 3);
            assert!(
                spec.migrations.contains(&MigrationCostLevel::Free),
                "the churn table needs the free level as the no-cost anchor"
            );
        }
        assert_eq!(migration_spec(true).cell_count(), 18);
        assert_eq!(migration_spec(true).cells()[0].site_limit, Some(60));
        assert_eq!(migration_spec(false).cells()[0].site_limit, Some(100));
    }

    #[test]
    fn serving_grids_cross_serving_mode_and_policy() {
        for quick in [true, false] {
            let spec = serving_spec(quick);
            assert!(spec.validate().is_ok());
            assert_eq!(spec.servings.len(), 3);
            assert!(
                spec.servings.contains(&ServingMode::Aggregate),
                "the serving grid needs the aggregate mode as the no-queueing anchor"
            );
            assert_eq!(
                (spec.apps_per_site, spec.servers_per_site),
                (4, 1),
                "the serving grid must run saturated or queues never fill"
            );
        }
        assert_eq!(serving_spec(true).cell_count(), 6);
        assert_eq!(serving_spec(true).cells()[0].site_limit, Some(25));
        assert_eq!(serving_spec(false).cells()[0].site_limit, Some(60));
    }

    #[test]
    fn forecast_grids_cross_forecaster_epoch_and_policy() {
        for quick in [true, false] {
            let spec = forecast_spec(quick);
            assert!(spec.validate().is_ok());
            assert_eq!(spec.forecasters.len(), 3);
            assert_eq!(spec.epochs.len(), 2);
            assert!(
                spec.forecasters.contains(&ForecasterKind::Oracle),
                "regret needs the oracle partner"
            );
        }
        assert_eq!(forecast_spec(true).cell_count(), 12);
        assert_eq!(forecast_spec(false).cell_count(), 24);
    }
}
