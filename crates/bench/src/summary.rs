//! The scenario grids behind `experiments --sweep` and the deterministic
//! quick summary snapshotted by the golden-output regression test.
//!
//! The quick summary replays the figure-generating sweeps of the paper
//! (Figure 11's area comparison, Figure 12's latency-tolerance sweep,
//! Figure 14's demand/capacity skew) on a reduced site catalog through the
//! sweep engine.  Its rendering is seed-stable and independent of the worker
//! count, so `tests/experiments_golden.rs` can diff it against a checked-in
//! snapshot with numeric tolerances and catch silent drift in any layer
//! under it (datasets, traces, solver, simulator, aggregation).

use carbonedge_sweep::{SweepExecutor, SweepReport, SweepSpec};

/// The grid `experiments --sweep` runs: both continents, three latency
/// limits, all three demand/capacity scenarios, CarbonEdge versus the
/// Latency-aware baseline.  `quick` caps the site catalog at 40 sites per
/// continent (the golden-test configuration); the full grid uses 120.
pub fn sweep_spec(quick: bool) -> SweepSpec {
    let spec = SweepSpec::quick_default();
    if quick {
        spec
    } else {
        SweepSpec {
            name: "default-grid".into(),
            ..spec.with_site_limit(Some(120))
        }
    }
}

/// Runs the quick grid and returns its deterministic rendering.
pub fn quick_summary(jobs: usize) -> String {
    let report = run_sweep(true, jobs);
    report.render()
}

/// Runs the `--sweep` grid with `jobs` workers.
pub fn run_sweep(quick: bool, jobs: usize) -> SweepReport {
    SweepExecutor::new()
        .with_jobs(jobs)
        .run(&sweep_spec(quick))
        .expect("the built-in sweep grids are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_grids_are_valid_and_multi_axis() {
        for quick in [true, false] {
            let spec = sweep_spec(quick);
            assert!(spec.validate().is_ok());
            assert!(
                spec.axis_count() >= 3,
                "--sweep must run a >=3-axis grid, got {}",
                spec.axis_count()
            );
        }
        assert_eq!(sweep_spec(true).cells()[0].site_limit, Some(40));
        assert_eq!(sweep_spec(false).cells()[0].site_limit, Some(120));
    }
}
