//! Support library for the `experiments` driver binary: the sweep grids the
//! binary runs and the deterministic summary used by the golden-output
//! regression test.

pub mod summary;
