//! placeholder (under construction)
