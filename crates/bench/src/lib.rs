#![forbid(unsafe_code)]
//! Support library for the `experiments` driver binary: the sweep grids the
//! binary runs, the deterministic summary used by the golden-output
//! regression test, and the machine-readable `BENCH_*.json` perf snapshots
//! behind `--bench-json`.

pub mod bench_json;
pub mod summary;
