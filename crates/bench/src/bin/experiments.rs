//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [--sweep] [--forecast] [--migration] [--serving]
//!             [--jobs N] [--bench-json DIR] [--all --out DIR]
//!             [all | fig1 | fig2 | fig3 | fig4 | fig5 | table1 |
//!              fig7 | fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14 |
//!              fig15 | fig16 | fig17]
//! ```
//!
//! Each experiment prints the rows/series the paper reports.  `--quick`
//! restricts the CDN-scale simulations to a subset of edge sites so the full
//! suite finishes quickly; without it the full 496-site catalog is simulated.
//!
//! `--sweep` runs the declarative scenario grid (area × demand scenario ×
//! latency limit × policy) through the parallel sweep engine; with no
//! experiment names it replaces the figure suite, while named figures still
//! run after the sweep.  `--jobs N` sets the worker count (default: one per
//! CPU).  The sweep's aggregated output is deterministic for any job count.
//!
//! `--forecast` runs the forecaster × epoch-schedule grid and prints the
//! forecast-regret table (realized carbon versus the oracle replay per
//! policy × forecaster × epoch); it composes with `--quick`, `--jobs` and
//! named figures exactly like `--sweep`.
//!
//! `--migration` runs the epoch-schedule × migration-cost grid and prints
//! the churn-vs-savings table (moves, migration carbon and net savings per
//! policy × epoch × migration level); it composes with `--quick`, `--jobs`
//! and named figures exactly like `--sweep`.
//!
//! `--serving` runs the serving-mode × policy grid and prints the serving
//! table (tail latency, drop rate and utilization next to carbon savings
//! per policy × serving mode); it composes with `--quick`, `--jobs` and
//! named figures exactly like `--sweep`.
//!
//! `--bench-json DIR` measures the solver, sweep and serving performance
//! snapshots and writes `BENCH_solver.json` / `BENCH_sweep.json` /
//! `BENCH_serving.json` into `DIR`; like `--sweep` it replaces the figure
//! suite unless figures are named explicitly.
//!
//! `--all --out DIR` is the one-command artifact pipeline: every figure and
//! table of the suite plus all four sweep-engine tables and the three
//! `BENCH_*.json` snapshots are written into `DIR` as individual files
//! (figures run in child processes so each one's stdout lands in its own
//! file).  It composes with `--quick` and `--jobs`.

use carbonedge_analysis::mesoscale::{
    region_latency_table, standard_regions_and_traces, RegionSnapshot, RegionYearly,
    TemporalProfile,
};
use carbonedge_analysis::RadiusAnalysis;
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, StudyRegion, ZoneCatalog};
use carbonedge_grid::{EnergySource, HourOfYear};
use carbonedge_net::LatencyModel;
use carbonedge_sim::cdn::{CdnConfig, CdnScenario, CdnSimulator};
use carbonedge_sim::hetero::{run_heterogeneity, HeterogeneityConfig};
use carbonedge_sim::testbed::{run_testbed, TestbedConfig, TestbedWorkload};
use carbonedge_sim::TradeoffSweep;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind, WorkloadProfile};
use std::time::Instant;

const SEED: u64 = 42;

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "table1", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
];

fn print_usage() {
    println!("experiments: regenerate the tables and figures of the CarbonEdge paper");
    println!();
    println!(
        "usage: experiments [--quick] [--sweep] [--forecast] [--migration] [--serving] \
         [--jobs N] [--bench-json DIR] [--all --out DIR] [all | {}]",
        EXPERIMENTS.join(" | ")
    );
    println!();
    println!("  --quick           restrict CDN-scale simulations to a subset of edge sites");
    println!("  --sweep           run the declarative scenario grid through the parallel");
    println!("                    sweep engine (replaces the figure suite unless figures");
    println!("                    are named explicitly, which then run after the sweep)");
    println!("  --forecast        run the forecaster x epoch grid and print the");
    println!("                    forecast-regret table (realized carbon vs the oracle");
    println!("                    replay; composes with --quick/--jobs like --sweep)");
    println!("  --migration       run the epoch x migration-cost grid and print the");
    println!("                    churn-vs-savings table (moves, migration carbon and net");
    println!("                    savings; composes with --quick/--jobs like --sweep)");
    println!("  --serving         run the serving-mode x policy grid and print the");
    println!("                    serving table (tail latency and drops vs carbon");
    println!("                    savings; composes with --quick/--jobs like --sweep)");
    println!("  --jobs N          worker threads for --sweep/--forecast/--migration/");
    println!("                    --serving (default: one per CPU)");
    println!("  --bench-json DIR  measure solver/sweep/serving perf and write");
    println!("                    BENCH_solver.json, BENCH_sweep.json and");
    println!("                    BENCH_serving.json into DIR (replaces the figure");
    println!("                    suite unless figures are named explicitly)");
    println!("  --all --out DIR   write every figure, every sweep-engine table and all");
    println!("                    BENCH_*.json snapshots into DIR as individual files");
    println!("  (no experiment names runs the full suite)");
}

/// Parses a `--<name> DIR` / `--<name>=DIR` flag out of the argument list,
/// removing the consumed tokens.  Shared by `--bench-json` and `--out`.
fn take_dir_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut dir = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a directory"))?;
            dir = Some(value.clone());
            args.drain(i..=i + 1);
        } else if let Some(value) = args[i].strip_prefix(&prefix) {
            dir = Some(value.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(dir)
}

/// Measures the solver and sweep perf snapshots and writes them into `dir`.
fn run_bench_json(dir: &str, quick: bool) {
    header(&format!(
        "Perf snapshots ({} sampling)",
        if quick { "quick" } else { "full" }
    ));
    match carbonedge_bench::bench_json::write_bench_json(std::path::Path::new(dir), quick) {
        Ok(paths) => {
            for path in paths {
                println!("wrote {}", path.display());
            }
        }
        Err(err) => {
            eprintln!("error: could not write bench snapshots to `{dir}`: {err}");
            std::process::exit(1);
        }
    }
}

/// Runs the scenario grid through the sweep engine and prints its report.
fn run_sweep(quick: bool, jobs: usize) {
    header(&format!(
        "Scenario sweep ({})",
        if quick { "quick grid" } else { "default grid" }
    ));
    let report = carbonedge_bench::summary::run_sweep(quick, jobs);
    print!("{}", report.render());
    eprintln!("\n{}", report.footer());
}

/// Runs the forecaster × epoch grid and prints the forecast-regret table.
fn run_forecast(quick: bool, jobs: usize) {
    header(&format!(
        "Forecast regret ({})",
        if quick { "quick grid" } else { "full grid" }
    ));
    let report = carbonedge_bench::summary::run_forecast(quick, jobs);
    print!("{}", report.render_forecast_regret());
    eprintln!("\n{}", report.footer());
}

/// Runs the epoch × migration-cost grid and prints the churn table.
fn run_migration(quick: bool, jobs: usize) {
    header(&format!(
        "Migration churn ({})",
        if quick { "quick grid" } else { "full grid" }
    ));
    let report = carbonedge_bench::summary::run_migration(quick, jobs);
    print!("{}", report.render_migration());
    eprintln!("\n{}", report.footer());
}

/// Runs the serving-mode × policy grid and prints the serving table.
fn run_serving(quick: bool, jobs: usize) {
    header(&format!(
        "Event-level serving ({})",
        if quick { "quick grid" } else { "full grid" }
    ));
    let report = carbonedge_bench::summary::run_serving(quick, jobs);
    print!("{}", report.render_serving());
    eprintln!("\n{}", report.footer());
}

/// Writes one artifact file, exiting with a diagnostic on failure.
fn write_artifact(dir: &std::path::Path, name: &str, contents: &[u8]) {
    let path = dir.join(name);
    if let Err(err) = std::fs::write(&path, contents) {
        eprintln!("error: could not write `{}`: {err}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

/// The `--all --out DIR` artifact pipeline: every figure of the suite (each
/// captured from a child process into its own file), the four sweep-engine
/// tables, and the three `BENCH_*.json` snapshots.
fn run_all_artifacts(dir: &str, quick: bool, jobs: usize) {
    let out = std::path::Path::new(dir);
    if let Err(err) = std::fs::create_dir_all(out) {
        eprintln!("error: could not create `{dir}`: {err}");
        std::process::exit(1);
    }
    header(&format!(
        "Artifact pipeline ({} mode) -> {}",
        if quick { "quick" } else { "full" },
        out.display()
    ));

    // Figures re-run in child processes so each one's stdout lands in its
    // own file without re-plumbing every figure through a writer.
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            eprintln!("error: could not locate the experiments binary: {err}");
            std::process::exit(1);
        }
    };
    for name in EXPERIMENTS {
        let mut command = std::process::Command::new(&exe);
        if quick {
            command.arg("--quick");
        }
        match command.arg(name).output() {
            Ok(output) if output.status.success() => {
                write_artifact(out, &format!("{name}.txt"), &output.stdout);
            }
            Ok(output) => {
                eprintln!(
                    "error: `{name}` exited with {}:\n{}",
                    output.status,
                    String::from_utf8_lossy(&output.stderr)
                );
                std::process::exit(1);
            }
            Err(err) => {
                eprintln!("error: could not run `{name}`: {err}");
                std::process::exit(1);
            }
        }
    }

    // The sweep-engine tables run in-process so they honor `--jobs`.
    let sweep = carbonedge_bench::summary::run_sweep(quick, jobs);
    write_artifact(out, "sweep.txt", sweep.render().as_bytes());
    let forecast = carbonedge_bench::summary::run_forecast(quick, jobs);
    write_artifact(
        out,
        "forecast.txt",
        forecast.render_forecast_regret().as_bytes(),
    );
    let migration = carbonedge_bench::summary::run_migration(quick, jobs);
    write_artifact(
        out,
        "migration.txt",
        migration.render_migration().as_bytes(),
    );
    let serving = carbonedge_bench::summary::run_serving(quick, jobs);
    write_artifact(out, "serving.txt", serving.render_serving().as_bytes());

    run_bench_json(dir, quick);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let jobs = match carbonedge_sweep::take_jobs_flag(&mut args) {
        Ok(jobs) => jobs,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            print_usage();
            std::process::exit(2);
        }
    };
    let bench_json = match take_dir_flag(&mut args, "bench-json") {
        Ok(dir) => dir,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            print_usage();
            std::process::exit(2);
        }
    };
    let out_dir = match take_dir_flag(&mut args, "out") {
        Ok(dir) => dir,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            print_usage();
            std::process::exit(2);
        }
    };
    let quick = args.iter().any(|a| a == "--quick");
    let sweep = args.iter().any(|a| a == "--sweep");
    let forecast = args.iter().any(|a| a == "--forecast");
    let migration = args.iter().any(|a| a == "--migration");
    let serving = args.iter().any(|a| a == "--serving");
    let all_flag = args.iter().any(|a| a == "--all" || a == "all");
    if let Some(dir) = &out_dir {
        if !all_flag {
            eprintln!("error: --out only applies to the `--all` artifact pipeline");
            eprintln!();
            print_usage();
            std::process::exit(2);
        }
        run_all_artifacts(dir, quick, jobs);
        return;
    }
    if args.iter().any(|a| a == "--all") {
        eprintln!("error: --all requires --out DIR (use `all` to print the full suite)");
        eprintln!();
        print_usage();
        std::process::exit(2);
    }
    if jobs != 0 && !sweep && !forecast && !migration && !serving {
        eprintln!(
            "warning: --jobs only affects --sweep/--forecast/--migration/--serving; \
             running the figure suite single-threaded"
        );
    }
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            *a != "--quick"
                && *a != "--sweep"
                && *a != "--forecast"
                && *a != "--migration"
                && *a != "--serving"
        })
        .map(|s| s.as_str())
        .collect();
    if let Some(unknown) = which
        .iter()
        .find(|a| **a != "all" && !EXPERIMENTS.contains(a))
    {
        eprintln!("error: unknown experiment `{unknown}`");
        eprintln!();
        print_usage();
        std::process::exit(2);
    }
    let preamble = Instant::now();
    if sweep {
        run_sweep(quick, jobs);
    }
    if forecast {
        run_forecast(quick, jobs);
    }
    if migration {
        run_migration(quick, jobs);
    }
    if serving {
        run_serving(quick, jobs);
    }
    if let Some(dir) = &bench_json {
        run_bench_json(dir, quick);
    }
    if (sweep || forecast || migration || serving || bench_json.is_some()) && which.is_empty() {
        eprintln!(
            "\n[experiments completed in {:.1} s]",
            preamble.elapsed().as_secs_f64()
        );
        return;
    }
    let run_all = which.is_empty() || which.contains(&"all");
    let should = |name: &str| run_all || which.contains(&name);

    let started = Instant::now();
    if should("fig1") {
        fig1();
    }
    if should("fig2") {
        fig2();
    }
    if should("fig3") {
        fig3();
    }
    if should("fig4") {
        fig4();
    }
    if should("fig5") {
        fig5();
    }
    if should("table1") {
        table1();
    }
    if should("fig7") {
        fig7();
    }
    if should("fig8") || should("fig9") || should("fig10") {
        testbed_figures(should("fig8"), should("fig9"), should("fig10"));
    }
    if should("fig11") {
        fig11(quick);
    }
    if should("fig12") {
        fig12(quick);
    }
    if should("fig13") {
        fig13(quick);
    }
    if should("fig14") {
        fig14(quick);
    }
    if should("fig15") {
        fig15();
    }
    if should("fig16") {
        fig16();
    }
    if should("fig17") {
        fig17();
    }
    eprintln!(
        "\n[experiments completed in {:.1} s]",
        started.elapsed().as_secs_f64()
    );
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Figure 1: energy mix and carbon intensity of four reference zones.
fn fig1() {
    header("Figure 1: energy mix and carbon intensity of four reference zones");
    let catalog = ZoneCatalog::worldwide();
    let traces = catalog.generate_traces(SEED);
    let zones = ["Ontario", "California North", "New York", "Warsaw, PL"];
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8} | {:>14}",
        "zone", "hydro", "solar", "wind", "nuclear", "fossil", "mean gCO2/kWh"
    );
    for name in zones {
        let record = catalog.by_name(name).unwrap();
        let mix = record.profile().mix;
        let trace = &traces[record.id.index()];
        println!(
            "{:<18} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>14.1}",
            name,
            mix.share(EnergySource::Hydro),
            mix.share(EnergySource::Solar),
            mix.share(EnergySource::Wind),
            mix.share(EnergySource::Nuclear),
            mix.fossil_share(),
            trace.mean(),
        );
    }
    println!("\nhourly carbon intensity, July 15-18 (6-hour samples):");
    for name in zones {
        let record = catalog.by_name(name).unwrap();
        let trace = &traces[record.id.index()];
        let series: Vec<String> = (0..16)
            .map(|k| format!("{:.0}", trace.at(HourOfYear::new((195 * 24) + k * 6))))
            .collect();
        println!("  {:<18} {}", name, series.join(" "));
    }
}

/// Figure 2: single-hour carbon-intensity snapshots of the mesoscale regions.
fn fig2() {
    header("Figure 2: mesoscale region snapshots (inter-zone variation)");
    let (_, regions, traces) = standard_regions_and_traces(SEED);
    println!(
        "{:<12} {:>10} | per-zone intensity (g CO2eq/kWh)",
        "region", "variation"
    );
    for region in &regions {
        let (_, snap) = RegionSnapshot::most_varied_hour(region, &traces);
        let zones: Vec<String> = snap
            .intensities
            .iter()
            .map(|(n, v)| format!("{n}={v:.0}"))
            .collect();
        println!(
            "{:<12} {:>9.1}x | {}",
            snap.region,
            snap.variation_factor,
            zones.join(", ")
        );
    }
    println!("(paper reports 2.5x Florida, 7.9x West US, 2.2x Italy, 19.5x Central EU)");
}

/// Figure 3: yearly mean carbon intensity per zone of two regions.
fn fig3() {
    header("Figure 3: yearly mean carbon intensity (West US and Central EU)");
    let (_, regions, traces) = standard_regions_and_traces(SEED);
    for region in &regions {
        if region.region != StudyRegion::WestUs && region.region != StudyRegion::CentralEu {
            continue;
        }
        let yearly = RegionYearly::compute(region, &traces);
        println!(
            "{} (spread {:.1}x; paper: {}):",
            yearly.region,
            yearly.spread,
            if region.region == StudyRegion::WestUs {
                "2.7x"
            } else {
                "10.8x"
            }
        );
        for (name, mean) in &yearly.means {
            println!("  {:<16} {:>8.1} g/kWh", name, mean);
        }
    }
}

/// Figure 4: two-day and monthly carbon-intensity variation in the West US.
fn fig4() {
    header("Figure 4: spatial-temporal variation, West US");
    let (_, regions, traces) = standard_regions_and_traces(SEED);
    let west = regions
        .iter()
        .find(|r| r.region == StudyRegion::WestUs)
        .unwrap();
    let profile = TemporalProfile::compute(west, &traces, 358);
    println!("two-day series (Dec 25-27), 4-hour samples:");
    for (name, series) in &profile.two_day {
        let samples: Vec<String> = series
            .iter()
            .step_by(4)
            .map(|v| format!("{v:.0}"))
            .collect();
        println!("  {:<12} {}", name, samples.join(" "));
    }
    println!("\nmonthly means:");
    for (name, series) in &profile.monthly {
        let samples: Vec<String> = series.iter().map(|v| format!("{v:.0}")).collect();
        println!("  {:<12} {}", name, samples.join(" "));
    }
    println!(
        "max monthly swing: {:.0} g/kWh (paper: ~200 g for Kingman)",
        profile.max_monthly_swing()
    );
}

/// Figure 5: carbon savings within a search radius, across the CDN sites.
fn fig5() {
    header("Figure 5: best carbon saving within radius D across edge sites");
    let catalog = ZoneCatalog::worldwide();
    let sites = EdgeSiteCatalog::akamai_like(&catalog);
    let traces = catalog.generate_traces(SEED);
    let model = LatencyModel::deterministic();
    println!(
        "{:>8} {:>14} {:>14} {:>18}",
        "radius", "saving<20%", "saving>40%", "median latency ms"
    );
    for radius in [200.0, 500.0, 1000.0] {
        let analysis = RadiusAnalysis::run(&sites, &traces, &model, radius);
        println!(
            "{:>6}km {:>14.2} {:>14.2} {:>18.1}",
            radius,
            analysis.fraction_below(20.0),
            analysis.fraction_above(40.0),
            analysis.median_latency_ms()
        );
    }
    println!("(paper: <20% fractions 0.68/0.43/0.22, >40% fractions 0.12/0.27/0.45, median latency 5.3-14.3 ms)");
}

/// Table 1: one-way latency between edge data centers in Florida and Central EU.
fn table1() {
    header("Table 1: one-way network latency (ms)");
    let (_, regions, _) = standard_regions_and_traces(SEED);
    let model = LatencyModel::deterministic();
    for region in &regions {
        if region.region != StudyRegion::Florida && region.region != StudyRegion::CentralEu {
            continue;
        }
        let table = region_latency_table(region, &model);
        println!("\n{}:", region.region.name());
        print!("{:<16}", "");
        for name in table.names() {
            print!("{:>14}", name.split(',').next().unwrap());
        }
        println!();
        for i in 0..table.len() {
            print!("{:<16}", table.names()[i].split(',').next().unwrap());
            for j in 0..table.len() {
                if i == j {
                    print!("{:>14}", "-");
                } else {
                    print!("{:>14.2}", table.one_way(i, j));
                }
            }
            println!();
        }
    }
}

/// Figure 7: profiled energy, memory, and inference time of the ML workloads.
fn fig7() {
    header("Figure 7: workload profiles across devices");
    println!(
        "{:<16} {:<12} {:>12} {:>12} {:>14}",
        "model", "device", "energy J", "memory MB", "inference ms"
    );
    for p in WorkloadProfile::all() {
        println!(
            "{:<16} {:<12} {:>12.3} {:>12.0} {:>14.1}",
            p.model.name(),
            p.device.name(),
            p.energy_per_request_j,
            p.memory_mb,
            p.processing_time_ms
        );
    }
}

/// Figures 8-10: the regional testbed experiments.
fn testbed_figures(fig8: bool, fig9: bool, fig10: bool) {
    let configs = [
        (StudyRegion::Florida, TestbedWorkload::SciCpu),
        (StudyRegion::Florida, TestbedWorkload::ResNet50),
        (StudyRegion::CentralEu, TestbedWorkload::SciCpu),
        (StudyRegion::CentralEu, TestbedWorkload::ResNet50),
    ];
    let results: Vec<_> = configs
        .iter()
        .map(|(r, w)| run_testbed(&TestbedConfig::new(*r, *w)))
        .collect();

    if fig8 {
        header("Figure 8: carbon intensity and emissions across Florida zones (Sci)");
        let fl = &results[0];
        println!("hourly carbon intensity (4-hour samples):");
        for (name, series) in &fl.hourly_intensity {
            let s: Vec<String> = series
                .iter()
                .step_by(4)
                .map(|v| format!("{v:.0}"))
                .collect();
            println!("  {:<14} {}", name, s.join(" "));
        }
        for policy in ["Latency-aware", "CarbonEdge"] {
            let p = fl.policy(policy).unwrap();
            println!("\n{policy} hourly emissions per origin zone (g, 4-hour samples):");
            for (name, series) in &p.hourly_emissions {
                let s: Vec<String> = series
                    .iter()
                    .step_by(4)
                    .map(|v| format!("{v:.1}"))
                    .collect();
                println!("  {:<14} {}", name, s.join(" "));
            }
        }
    }
    if fig9 {
        header("Figure 9: end-to-end response times across Florida zones (ResNet50)");
        let fl = &results[1];
        println!(
            "{:<14} {:>16} {:>16}",
            "origin", "Latency-aware ms", "CarbonEdge ms"
        );
        let la = fl.policy("Latency-aware").unwrap();
        let ce = fl.policy("CarbonEdge").unwrap();
        for ((name, rt_la), (_, rt_ce)) in
            la.response_time_ms.iter().zip(ce.response_time_ms.iter())
        {
            println!("{:<14} {:>16.1} {:>16.1}", name, rt_la, rt_ce);
        }
    }
    if fig10 {
        header("Figure 10: aggregate emissions and latency increases (testbed)");
        println!(
            "{:<12} {:<10} {:>18} {:>16} {:>14} {:>18}",
            "region", "workload", "Latency-aware g", "CarbonEdge g", "saving %", "latency +ms"
        );
        for ((region, workload), result) in configs.iter().zip(results.iter()) {
            let la = result.policy("Latency-aware").unwrap().outcome.carbon_g;
            let ce = result.policy("CarbonEdge").unwrap().outcome.carbon_g;
            println!(
                "{:<12} {:<10} {:>18.1} {:>16.1} {:>14.1} {:>18.1}",
                region.name(),
                workload.name(),
                la,
                ce,
                result.savings.carbon_percent,
                result.savings.latency_increase_ms
            );
        }
        println!("(paper: 39.4% Florida / 78.7% Central EU savings; +6.6 / +10.5 ms)");
    }
}

fn cdn_config(area: ZoneArea, quick: bool) -> CdnConfig {
    let config = CdnConfig::new(area);
    if quick {
        config.with_site_limit(80)
    } else {
        config
    }
}

/// Figure 11: year-long CDN savings, latency increases and load distribution.
fn fig11(quick: bool) {
    header("Figure 11: year-long CDN-scale savings (20 ms RTT limit)");
    println!(
        "{:<8} {:>12} {:>16} {:>22} {:>22}",
        "area", "saving %", "latency +ms", "mean assigned g/kWh", "(Latency-aware g/kWh)"
    );
    for (area, label) in [(ZoneArea::UnitedStates, "US"), (ZoneArea::Europe, "Europe")] {
        let sim = CdnSimulator::new(cdn_config(area, quick));
        let (ce, la, savings) = sim.compare();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<8} {:>12.1} {:>16.1} {:>22.1} {:>22.1}",
            label,
            savings.carbon_percent,
            savings.latency_increase_ms,
            mean(&ce.assigned_intensity),
            mean(&la.assigned_intensity)
        );
    }
    println!("(paper: 49.5% US / 67.8% Europe, ~+10.8 / +10.5 ms)");
}

/// Figure 12: effect of the latency limit on savings and latency increase.
fn fig12(quick: bool) {
    header("Figure 12: effect of latency tolerance (RTT limit sweep)");
    println!(
        "{:<8} {:>10} {:>12} {:>14}",
        "area", "limit ms", "saving %", "latency +ms"
    );
    for (area, label) in [(ZoneArea::UnitedStates, "US"), (ZoneArea::Europe, "Europe")] {
        for limit in [5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
            let sim = CdnSimulator::new(cdn_config(area, quick).with_latency_limit(limit));
            let (_, _, savings) = sim.compare();
            println!(
                "{:<8} {:>10.0} {:>12.1} {:>14.1}",
                label, limit, savings.carbon_percent, savings.latency_increase_ms
            );
        }
    }
    println!("(paper: 28% US / 44.8% EU at 10 ms; diminishing returns beyond ~25 ms)");
}

/// Figure 13: seasonality of savings, latency, intensity and placements.
fn fig13(quick: bool) {
    header("Figure 13: seasonality (monthly savings, latency, intensity, placements)");
    for (area, label) in [(ZoneArea::UnitedStates, "US"), (ZoneArea::Europe, "Europe")] {
        let sim = CdnSimulator::new(cdn_config(area, quick));
        let ce = sim.run(PlacementPolicy::CarbonAware);
        let la = sim.run(PlacementPolicy::LatencyAware);
        let savings: Vec<String> = ce
            .monthly
            .iter()
            .zip(la.monthly.iter())
            .map(|(c, l)| format!("{:.0}", (1.0 - c.carbon_g / l.carbon_g) * 100.0))
            .collect();
        let latency: Vec<String> = ce
            .monthly
            .iter()
            .zip(la.monthly.iter())
            .map(|(c, l)| format!("{:.1}", c.mean_latency_ms - l.mean_latency_ms))
            .collect();
        println!("{label} monthly savings %:   {}", savings.join(" "));
        println!("{label} monthly latency +ms: {}", latency.join(" "));
        if area == ZoneArea::Europe {
            println!("\nmonthly carbon intensity of reference zones (g/kWh):");
            for zone in ["Paris, FR", "Oslo, NO", "Vienna, AT", "Zagreb, HR"] {
                if let Some(series) = sim.monthly_intensity_of(zone) {
                    let s: Vec<String> = series.iter().map(|v| format!("{v:.0}")).collect();
                    println!("  {:<12} {}", zone, s.join(" "));
                }
            }
            println!("\nmonthly applications placed at reference sites:");
            for site in ["Paris, FR", "Oslo, NO", "Vienna, AT", "Zagreb, HR"] {
                if let Some(series) = ce.monthly_placements_for(site) {
                    let s: Vec<String> = series.iter().map(|v| v.to_string()).collect();
                    println!("  {:<12} {}", site, s.join(" "));
                }
            }
        }
    }
}

/// Figure 14: effect of population-skewed demand and capacity.
fn fig14(quick: bool) {
    header("Figure 14: effect of demand and capacity skew");
    println!(
        "{:<8} {:<10} {:>12} {:>14}",
        "area", "scenario", "saving %", "latency +ms"
    );
    for (area, label) in [(ZoneArea::UnitedStates, "US"), (ZoneArea::Europe, "Europe")] {
        for scenario in [
            CdnScenario::Homogeneous,
            CdnScenario::PopulationDemand,
            CdnScenario::PopulationCapacity,
        ] {
            let sim = CdnSimulator::new(cdn_config(area, quick).with_scenario(scenario));
            let (_, _, savings) = sim.compare();
            println!(
                "{:<8} {:<10} {:>12.1} {:>14.1}",
                label,
                scenario.name(),
                savings.carbon_percent,
                savings.latency_increase_ms
            );
        }
    }
    println!("(paper: skew changes US savings by up to ~6%, EU by <1.6%)");
}

/// Figure 15: heterogeneity across devices and policies.
fn fig15() {
    header("Figure 15: carbon and energy across heterogeneous resources");
    let results = run_heterogeneity(&HeterogeneityConfig::default());
    println!(
        "{:<12} {:<16} {:>14} {:>14} {:>12}",
        "cluster", "policy", "carbon g", "energy kJ", "latency ms"
    );
    for r in &results {
        println!(
            "{:<12} {:<16} {:>14.1} {:>14.1} {:>12.1}",
            r.cluster,
            r.policy,
            r.outcome.carbon_g,
            r.outcome.energy_j / 1000.0,
            r.outcome.mean_latency_ms
        );
    }
    println!("(paper: CarbonEdge cuts carbon by 98%/79%/63% vs Latency-/Intensity-/Energy-aware on the heterogeneous cluster)");
}

/// Figure 16: carbon-energy trade-off (alpha sweep).
fn fig16() {
    header("Figure 16: carbon-energy trade-off (alpha sweep)");
    for high in [false, true] {
        let sweep = TradeoffSweep::run(high, &TradeoffSweep::default_alphas());
        println!(
            "\n{} utilization (Latency-aware: {:.1} g, {:.1} kJ):",
            if high { "high" } else { "low" },
            sweep.latency_aware.carbon_g,
            sweep.latency_aware.energy_j / 1000.0
        );
        println!(
            "{:>6} {:>14} {:>14} {:>18}",
            "alpha", "carbon g", "energy kJ", "savings retained"
        );
        for p in &sweep.points {
            let retained = sweep.retained_savings_fraction(p.alpha).unwrap_or(f64::NAN);
            println!(
                "{:>6.1} {:>14.1} {:>14.1} {:>17.0}%",
                p.alpha,
                p.outcome.carbon_g,
                p.outcome.energy_j / 1000.0,
                retained * 100.0
            );
        }
    }
    println!(
        "(paper: alpha=0.1 retains 97.5% of savings while cutting energy 67% at low utilization)"
    );
}

/// Figure 17 / Section 6.5: placement runtime and memory scalability.
fn fig17() {
    header("Figure 17: placement runtime vs number of servers and applications");
    let catalog = ZoneCatalog::worldwide();
    let traces = catalog.generate_traces(SEED);
    let build_problem = |apps: usize, servers: usize| -> PlacementProblem {
        let zone_count = catalog.len();
        let server_list: Vec<ServerSnapshot> = (0..servers)
            .map(|j| {
                let zone = &catalog.records()[j % zone_count];
                ServerSnapshot::new(j, j, zone.id, DeviceKind::A2, zone.location)
                    .with_carbon_intensity(traces[zone.id.index()].mean())
            })
            .collect();
        let app_list: Vec<Application> = (0..apps)
            .map(|i| {
                // Applications originate at zones that host a server, so every
                // application has at least one latency-feasible candidate.
                let zone = &catalog.records()[(i * 7) % servers.min(zone_count)];
                Application::new(AppId(i), ModelKind::ResNet50, 10.0, 40.0, zone.location, 0)
            })
            .collect();
        PlacementProblem::new(server_list, app_list, 1.0)
            .with_latency_model(LatencyModel::deterministic())
    };
    let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();

    println!(
        "{:>10} {:>8} {:>14} {:>16}",
        "servers", "apps", "time ms", "approx mem MB"
    );
    for servers in [100, 200, 300, 400] {
        let problem = build_problem(50, servers);
        let start = Instant::now();
        let _ = placer.place(&problem).unwrap();
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:>10} {:>8} {:>14.1} {:>16.1}",
            servers,
            50,
            elapsed,
            approx_problem_memory_mb(&problem)
        );
    }
    for apps in [20, 60, 100, 140] {
        let problem = build_problem(apps, 400);
        let start = Instant::now();
        let _ = placer.place(&problem).unwrap();
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:>10} {:>8} {:>14.1} {:>16.1}",
            400,
            apps,
            elapsed,
            approx_problem_memory_mb(&problem)
        );
    }
    println!("(paper: 50 apps x 400 servers completes within ~3 s and <200 MB with OR-Tools)");

    let problem = build_problem(1, 5);
    let placer_small = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
    let start = Instant::now();
    let _ = placer_small.place(&problem).unwrap();
    println!(
        "single-application decision on a 5-server regional edge: {:.2} ms (paper: ~3.3 ms)",
        start.elapsed().as_secs_f64() * 1000.0
    );
}

/// Rough memory footprint of the cost/demand matrices used by a placement,
/// in MB (the dominant allocation of the algorithm).
fn approx_problem_memory_mb(problem: &PlacementProblem) -> f64 {
    let (apps, servers) = problem.size();
    let per_pair = 16.0 + 3.0 * 8.0;
    (apps as f64 * servers as f64 * per_pair + servers as f64 * 128.0) / 1.0e6
}
