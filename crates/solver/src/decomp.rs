//! Dantzig–Wolfe column generation for assignment-shaped placement MILPs.
//!
//! The placement MILP built by `carbonedge_core::IncrementalPlacer` is
//! block-structured per application: each app's assignment row and its
//! `x ≤ y` linking columns couple to the rest of the model only through the
//! shared site-capacity rows.  In the Dantzig–Wolfe view each app block's
//! extreme points are simply "place this app on server j", so the master
//! problem's columns *are* the original `x_ij` variables: the assignment
//! rows double as the per-app convexity rows, and the pricing subproblem
//! degenerates to a closed-form argmin over that app's feasible
//! `(site, reduced cost)` pairs — one pass over the inactive columns, no
//! inner simplex.
//!
//! Concretely the **restricted master** is the original model minus the
//! `x ≤ y` linking rows (dropping them is integrally lossless whenever
//! `y = 0` already forces `x = 0` through a capacity row — verified by
//! [`BlockStructure::detect`], which falls back to the monolithic path
//! otherwise), with all but an initial working set of assignment columns
//! pinned to `[0, 0]`.  At the 200×50 corridor scale this cuts the row
//! count from ~1.4k to ~400: the linking rows are the bulk of the matrix
//! and the master never materializes them.
//!
//! Columns are "generated" by relaxing their pinned bounds back to the
//! natural `[0, 1]` — the prepared matrix never changes shape, so every
//! master re-solve is a warm restart in the resident
//! [`SimplexWorkspace`] and the epoch/migration cost-only re-solve
//! contracts (memoized bit-identical re-solves at zero pivots) carry over
//! from the monolithic path unchanged.
//!
//! Integer solutions come from **price-and-branch**: the search mirrors
//! [`crate::branch_bound`] (best-first bound-ordered queue, parent-diff
//! node arena, dual-simplex warm starts after bound fixings) but re-prices
//! inside every node, and integer candidates are verified against the
//! *full original model* — linking rows included — before they become
//! incumbents.
//!
//! Determinism: columns are seeded, priced and activated in ascending
//! variable order, ties break toward the lower index, and nothing here
//! reads a clock; repeated solves of a bit-identical model return the
//! memoized solution with zero pivots.

use crate::branch_bound::{
    BranchBoundSolver, DecompStats, FactorStats, MilpOutcome, MilpSolution, NodeRec, OpenNode,
    PricingStats, NO_VAR,
};
use crate::model::{Comparison, Model, VarKind};
use crate::simplex::{LpOutcome, Prepared, SimplexWorkspace};
use std::collections::{BinaryHeap, HashSet};

/// Feasibility slack used when the greedy seeding packs columns against
/// row capacities and when integer candidates are checked.
const SEED_TOL: f64 = 1e-9;

/// The detected assignment-with-activation block structure of a model.
///
/// Detection is exact and conservative: every row and variable must
/// classify cleanly, and every `x ≤ y` linking row must be integrally
/// implied by a kept capacity row, or `detect` returns `None` and the
/// caller stays on the monolithic path.
#[derive(Debug, Clone)]
pub struct BlockStructure {
    /// Per original row: `true` when the row is an `x ≤ y` linking row the
    /// master drops.
    linking: Vec<bool>,
    /// Per original row: `true` when the row is a per-app convexity row.
    convexity: Vec<bool>,
    /// Per assignment (convexity) row, in row order: that app's candidate
    /// columns in term order.
    apps: Vec<Vec<usize>>,
    /// Every generation-candidate column, ascending.
    x_cols: Vec<usize>,
    /// Activation columns with no `y = 1` pin row, ascending; the crash
    /// basis rests them at their upper bound (matching the greedy
    /// seeding's full-activation capacity assumption).
    unpinned_y: Vec<usize>,
}

/// Row classification used by [`BlockStructure::detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    /// `x − y ≤ 0`: dropped by the master (when integrally implied).
    Linking,
    /// `≤` coupling row kept in the master (capacity, at most one negative
    /// activation coefficient).
    Coupling,
    /// `= 1` row with unit coefficients: a convexity row, or an activation
    /// pin (`y = 1`) kept as a coupling row.
    EqOne,
}

impl BlockStructure {
    /// Classifies `model` as an assignment-shaped placement MILP, or
    /// returns `None` when any row or variable falls outside the shape
    /// (continuous variables, `≥` rows, multi-negative `≤` rows, columns
    /// shared between assignment rows, or a linking row whose drop would
    /// not be integrally lossless).
    pub fn detect(model: &Model) -> Option<Self> {
        let n = model.num_vars();
        let nrows = model.num_constraints();
        if n == 0 || nrows == 0 {
            return None;
        }
        if model.vars().iter().any(|k| !matches!(k, VarKind::Binary)) {
            return None;
        }

        let mut kinds = Vec::with_capacity(nrows);
        for c in model.constraints() {
            let kind = match c.cmp {
                Comparison::GreaterEq => return None,
                Comparison::LessEq => {
                    let negatives = c.expr.terms.iter().filter(|(_, a)| *a < 0.0).count();
                    let two_term_unit = c.rhs == 0.0
                        && c.expr.terms.len() == 2
                        && c.expr.terms.iter().any(|(_, a)| *a == 1.0)
                        && c.expr.terms.iter().any(|(_, a)| *a == -1.0);
                    if two_term_unit {
                        RowKind::Linking
                    } else if negatives <= 1 {
                        RowKind::Coupling
                    } else {
                        return None;
                    }
                }
                Comparison::Equal => {
                    if c.rhs == 1.0
                        && !c.expr.terms.is_empty()
                        && c.expr.terms.iter().all(|(_, a)| *a == 1.0)
                    {
                        RowKind::EqOne
                    } else {
                        return None;
                    }
                }
            };
            kinds.push(kind);
        }

        // Activation variables: negative coefficient in a kept coupling row
        // or on the negative side of a linking row.  `forced` records the
        // `(x, y)` pairs where a kept coupling row already enforces
        // "`y = 0` ⇒ `x = 0`" (lookup-only, so hash order never leaks).
        let mut is_y = vec![false; n];
        let mut forced: HashSet<(usize, usize)> = HashSet::new();
        for (r, c) in model.constraints().iter().enumerate() {
            match kinds[r] {
                RowKind::Linking => {
                    for (v, a) in &c.expr.terms {
                        if *a < 0.0 {
                            is_y[v.index()] = true;
                        }
                    }
                }
                RowKind::Coupling => {
                    let mut y = None;
                    for (v, a) in &c.expr.terms {
                        if *a < 0.0 {
                            is_y[v.index()] = true;
                            y = Some(v.index());
                        }
                    }
                    if let Some(y) = y {
                        for (v, a) in &c.expr.terms {
                            if *a > 0.0 {
                                forced.insert((v.index(), y));
                            }
                        }
                    }
                }
                RowKind::EqOne => {}
            }
        }

        // Convexity rows: `= 1` rows that are not single-term activation
        // pins; every candidate column belongs to exactly one.
        let mut app_of = vec![usize::MAX; n];
        let mut apps: Vec<Vec<usize>> = Vec::new();
        let mut convexity = vec![false; nrows];
        let mut pinned_y = vec![false; n];
        for (r, c) in model.constraints().iter().enumerate() {
            if kinds[r] != RowKind::EqOne {
                continue;
            }
            if c.expr.terms.len() == 1 && is_y[c.expr.terms[0].0.index()] {
                // Activation pin (`y = 1`), kept as a coupling row.
                pinned_y[c.expr.terms[0].0.index()] = true;
                continue;
            }
            let mut cols = Vec::with_capacity(c.expr.terms.len());
            for (v, _) in &c.expr.terms {
                let j = v.index();
                if is_y[j] || app_of[j] != usize::MAX {
                    return None;
                }
                app_of[j] = apps.len();
                cols.push(j);
            }
            convexity[r] = true;
            apps.push(cols);
        }
        if apps.is_empty() {
            return None;
        }

        // A linking row may be dropped only when its `x` is a convexity
        // column and a kept coupling row already forces `x = 0` at `y = 0`
        // (then `x ≤ y` holds at every integer point the master can emit).
        let mut linking = vec![false; nrows];
        for (r, c) in model.constraints().iter().enumerate() {
            if kinds[r] != RowKind::Linking {
                continue;
            }
            let mut x = usize::MAX;
            let mut y = usize::MAX;
            for (v, a) in &c.expr.terms {
                if *a > 0.0 {
                    x = v.index();
                } else {
                    y = v.index();
                }
            }
            if app_of[x] == usize::MAX || !forced.contains(&(x, y)) {
                return None;
            }
            linking[r] = true;
        }

        let mut x_cols: Vec<usize> = apps.iter().flatten().copied().collect();
        x_cols.sort_unstable();
        let unpinned_y = (0..n).filter(|&j| is_y[j] && !pinned_y[j]).collect();
        Some(Self {
            linking,
            convexity,
            apps,
            x_cols,
            unpinned_y,
        })
    }

    /// Number of app (convexity) blocks.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Number of generation-candidate columns.
    pub fn num_candidate_columns(&self) -> usize {
        self.x_cols.len()
    }

    /// Number of linking rows the master drops.
    pub fn num_linking_rows(&self) -> usize {
        self.linking.iter().filter(|&&l| l).count()
    }
}

/// Builds the restricted-master model: identical variables, objective and
/// rows as the original, minus the linking rows.  Variable indices map
/// 1:1, so master solutions need no postsolve.
fn build_master(model: &Model, structure: &BlockStructure) -> Model {
    let mut master = Model::new();
    for kind in model.vars() {
        match kind {
            VarKind::Binary => {
                master.add_binary();
            }
            VarKind::Continuous { lower, upper } => {
                master.add_continuous(*lower, *upper);
            }
        }
    }
    for (v, c) in &model.objective().terms {
        master.set_objective_term(*v, *c);
    }
    for (r, c) in model.constraints().iter().enumerate() {
        if structure.linking[r] {
            continue;
        }
        master.add_constraint(c.expr.clone(), c.cmp, c.rhs, c.name.clone());
    }
    master
}

/// Persistent scratch state of the decomposition path: the restricted
/// master's prepared matrix and simplex workspace, the column activation
/// flags, and the branch-and-price node arena.  Lives inside
/// `MilpWorkspace` so successive solves reuse the resident basis exactly
/// like the monolithic path does.
#[derive(Debug, Default)]
pub struct DecompState {
    prep: Prepared,
    simplex: SimplexWorkspace,
    /// Whether `prep`/`simplex` have been loaded at least once.
    loaded: bool,
    /// Per structural column: whether the restricted master may use it
    /// (bounds `[0, 1]`) or it is still pinned to `[0, 0]`.  Monotone
    /// within and across solves of one model; rebuilt on structure change.
    active: Vec<bool>,
    /// Pricing scratch: columns selected for activation this round.
    to_activate: Vec<usize>,
    nodes: Vec<NodeRec>,
    open: BinaryHeap<OpenNode>,
    touched: Vec<u32>,
    binaries: Vec<usize>,
    candidate: Vec<f64>,
    incumbent: Vec<f64>,
    /// Memoized previous solution (see `MilpWorkspace::last_solution`):
    /// returned with zero pivots when the model and configuration are
    /// bit-identical, which keeps same-model re-solves exact fixed points.
    last_solution: Option<MilpSolution>,
    last_max_nodes: usize,
    last_tolerance: f64,
}

impl DecompState {
    /// Drops the resident master basis and activation set so the next
    /// solve cold-starts (allocations are kept).
    pub fn discard_warm_start(&mut self) {
        self.loaded = false;
        self.last_solution = None;
    }

    /// Applies a node's branching diffs onto the master workspace, undoing
    /// the previous node's diffs first (mirror of
    /// `MilpWorkspace::apply_bounds`; branch variables are always active
    /// columns, so resetting them restores the natural `[0, 1]`).
    fn apply_bounds(&mut self, node: u32) {
        for &v in &self.touched {
            self.simplex.reset_var_bounds(&self.prep, v as usize);
        }
        self.touched.clear();
        let mut cur = node;
        loop {
            let rec = self.nodes[cur as usize];
            if rec.var != NO_VAR {
                self.simplex
                    .set_var_bounds(rec.var as usize, rec.fixed, rec.fixed);
                self.touched.push(rec.var);
            }
            if rec.parent == NO_VAR {
                break;
            }
            cur = rec.parent;
        }
    }

    /// Activates a pinned column: relaxes its master bounds back to the
    /// natural `[0, 1]`.
    fn activate(&mut self, j: usize, stats: &mut DecompStats) {
        if !self.active[j] {
            self.active[j] = true;
            self.simplex.set_var_bounds(j, 0.0, 1.0);
            stats.columns_generated += 1;
        }
    }
}

/// Deterministic greedy seeding of the initial working set: walking the
/// apps in row order, each app activates its cheapest column that still
/// fits the remaining `≤`-row slack (assuming every activation variable at
/// 1, i.e. maximum capacity), plus its unconditionally cheapest column so
/// the convexity row always has somewhere to rest.  Ties break toward the
/// earlier term.
/// `true` when column `j`'s demands fit in the per-row residuals.
fn column_fits(prep: &Prepared, remaining: &[f64], j: usize) -> bool {
    prep.col(j)
        .all(|(r, a)| a <= 0.0 || a <= remaining[r] + SEED_TOL)
}

/// Deducts (or, with `sign = -1.0`, restores) column `j`'s demands from
/// the per-row residuals.
fn deduct_column(prep: &Prepared, remaining: &mut [f64], j: usize, sign: f64) {
    for (r, a) in prep.col(j) {
        if a > 0.0 && remaining[r].is_finite() {
            remaining[r] -= sign * a;
        }
    }
}

/// Tries to place stranded app `k` by a deterministic single swap: evict
/// one earlier-fitted app `b` to an alternative column of its own block so
/// that one of `k`'s columns fits in the freed residual.  Apps, columns and
/// alternatives are scanned in ascending order, so the first success is a
/// deterministic function of the model.  Returns `k`'s new column and
/// updates `fitted` / `remaining` in place.
fn repair_stranded(
    prep: &Prepared,
    apps: &[Vec<usize>],
    remaining: &mut [f64],
    fitted: &mut [Option<usize>],
    k: usize,
) -> Option<usize> {
    for &ja in &apps[k] {
        for b in 0..fitted.len() {
            let Some(jb) = fitted[b] else { continue };
            if b == k {
                continue;
            }
            deduct_column(prep, remaining, jb, -1.0);
            if column_fits(prep, remaining, ja) {
                deduct_column(prep, remaining, ja, 1.0);
                let alt = apps[b]
                    .iter()
                    .copied()
                    .find(|&j| j != jb && column_fits(prep, remaining, j));
                if let Some(jb_new) = alt {
                    deduct_column(prep, remaining, jb_new, 1.0);
                    fitted[b] = Some(jb_new);
                    fitted[k] = Some(ja);
                    return Some(ja);
                }
                deduct_column(prep, remaining, ja, -1.0);
            }
            deduct_column(prep, remaining, jb, 1.0);
        }
    }
    None
}

/// Activates the initial working set of columns and returns the greedy
/// integral assignment (one fitted column per app) when one was found —
/// the crash-basis plan.  `None` means at least one app could not be
/// packed even after the swap repair; the master then starts from the
/// full-activation-safe working set and the cold dual walk.
fn seed_columns(
    master: &Model,
    structure: &BlockStructure,
    st: &mut DecompState,
    stats: &mut DecompStats,
) -> Option<Vec<usize>> {
    // Remaining slack per master row under full activation: `rhs` plus the
    // magnitude of every negative (activation) coefficient for `≤` rows;
    // other rows never constrain the greedy.
    let mut remaining: Vec<f64> = master
        .constraints()
        .iter()
        .map(|c| match c.cmp {
            Comparison::LessEq => {
                let activation: f64 = c
                    .expr
                    .terms
                    .iter()
                    .filter(|(_, a)| *a < 0.0)
                    .map(|(_, a)| -a)
                    .sum();
                c.rhs + activation
            }
            _ => f64::INFINITY,
        })
        .collect();

    let mut fitted: Vec<Option<usize>> = vec![None; structure.apps.len()];
    let mut stranded: Vec<usize> = Vec::new();
    for (k, app) in structure.apps.iter().enumerate() {
        let mut cheapest: Option<(usize, f64)> = None;
        let mut fitting: Option<(usize, f64)> = None;
        for &j in app {
            let cost = st.prep.col_cost(j);
            if cheapest.is_none_or(|(_, best)| cost < best) {
                cheapest = Some((j, cost));
            }
            if column_fits(&st.prep, &remaining, j) && fitting.is_none_or(|(_, best)| cost < best) {
                fitting = Some((j, cost));
            }
        }
        if let Some((j, _)) = fitting {
            deduct_column(&st.prep, &mut remaining, j, 1.0);
            fitted[k] = Some(j);
            st.activate(j, stats);
            if let Some((j, _)) = cheapest {
                st.activate(j, stats);
            }
        } else {
            // Congested neighborhood: nothing fits in the greedy residual,
            // so pinning this app to its cheapest column alone could leave
            // the restricted master infeasible (forcing a full-activation
            // rescue).  Activating the whole block — a handful of columns —
            // keeps the master feasible whenever the full master is.
            stranded.push(k);
            for &j in app {
                st.activate(j, stats);
            }
        }
    }
    for &k in &stranded {
        repair_stranded(&st.prep, &structure.apps, &mut remaining, &mut fitted, k)?;
    }
    // A repair may have re-fitted an app onto a column outside the working
    // set; make sure every planned column is active.
    let plan: Vec<usize> = fitted.into_iter().collect::<Option<Vec<usize>>>()?;
    for &j in &plan {
        if !st.active[j] {
            st.activate(j, stats);
        }
    }
    Some(plan)
}

/// Builds the crash-basis column list for the master rows: each convexity
/// row seats its app's planned column, each `y = 1` pin row seats its
/// activation variable, and every coupling row keeps its slack.  Row `r`'s
/// slack is column `num_vars + r` in the prepared master.
fn crash_basis(model: &Model, structure: &BlockStructure, plan: &[usize]) -> Vec<usize> {
    let n = model.num_vars();
    let mut basic = Vec::with_capacity(model.num_constraints());
    let mut app = 0usize;
    for (r, c) in model.constraints().iter().enumerate() {
        if structure.linking[r] {
            continue;
        }
        let master_row = basic.len();
        if structure.convexity[r] {
            basic.push(plan[app]);
            app += 1;
        } else if c.cmp == Comparison::Equal {
            basic.push(c.expr.terms[0].0.index());
        } else {
            basic.push(n + master_row);
        }
    }
    basic
}

/// Solves one node's LP relaxation to *full-master* optimality by column
/// generation: solve the restricted master, price every pinned column
/// against the master duals, activate all improving columns, repeat.  An
/// infeasible restricted master activates every remaining column once
/// before the verdict is trusted (the full master is a relaxation of the
/// original model under the same fixings, so full-master infeasibility
/// soundly prunes the node).
fn node_lp(
    solver: &BranchBoundSolver,
    structure: &BlockStructure,
    st: &mut DecompState,
    stats: &mut DecompStats,
    pricing: &mut PricingStats,
) -> LpOutcome {
    let mut rescued = false;
    loop {
        let outcome = solver.lp.solve_workspace(&st.prep, &mut st.simplex);
        stats.master_pivots += st.simplex.last_pivots();
        pricing.absorb(&st.simplex);
        match outcome {
            LpOutcome::Optimal => {}
            LpOutcome::Infeasible if !rescued => {
                rescued = true;
                let mut any = false;
                for &j in &structure.x_cols {
                    if !st.active[j] {
                        st.activate(j, stats);
                        any = true;
                    }
                }
                if !any {
                    return LpOutcome::Infeasible;
                }
                continue;
            }
            other => return other,
        }
        stats.pricing_rounds += 1;
        st.to_activate.clear();
        {
            let duals = st.simplex.duals();
            let prep = &st.prep;
            for &j in &structure.x_cols {
                if st.active[j] {
                    continue;
                }
                let mut rc = prep.col_cost(j);
                for (r, a) in prep.col(j) {
                    rc -= duals[r] * a;
                }
                if rc < -solver.lp.tolerance {
                    st.to_activate.push(j);
                }
            }
        }
        if st.to_activate.is_empty() {
            return LpOutcome::Optimal;
        }
        for idx in 0..st.to_activate.len() {
            let j = st.to_activate[idx];
            st.activate(j, stats);
        }
    }
}

/// Branch-and-price over the restricted master.  Mirrors
/// `BranchBoundSolver::search` — best-first queue, parent-diff arena,
/// root-basis snapshot for the re-solve fixed point — with column
/// generation inside every node and incumbents verified against the full
/// original model (linking rows included).
pub(crate) fn solve_decomposed(
    solver: &BranchBoundSolver,
    model: &Model,
    structure: &BlockStructure,
    st: &mut DecompState,
) -> MilpSolution {
    let master = build_master(model, structure);
    let mut stats = DecompStats::default();
    let mut pricing = PricingStats::default();

    if st.loaded && st.prep.matches_structure(&master) {
        if st.prep.refresh_costs(&master) {
            st.simplex.invalidate_duals();
            st.last_solution = None;
        } else if st.last_max_nodes == solver.max_nodes && st.last_tolerance == solver.tolerance {
            // Bit-identical master and configuration: the previous result
            // is still the answer; no simplex or pricing work is needed.
            if let Some(cached) = &st.last_solution {
                let mut solution = cached.clone();
                solution.pivots = 0;
                solution.factor = FactorStats::default();
                solution.pricing = PricingStats::default();
                solution.decomp = Some(DecompStats::default());
                return solution;
            }
        }
        for &v in &st.touched {
            st.simplex.reset_var_bounds(&st.prep, v as usize);
        }
        st.touched.clear();
    } else {
        st.prep.load(&master);
        st.simplex.reset(&st.prep);
        st.loaded = true;
        st.last_solution = None;
        st.active.clear();
        st.active.resize(master.num_vars(), true);
        for &j in &structure.x_cols {
            st.active[j] = false;
            st.simplex.set_var_bounds(j, 0.0, 0.0);
        }
        if let Some(plan) = seed_columns(&master, structure, st, &mut stats) {
            // The greedy seeding doubled as an integral, capacity-feasible
            // assignment: seat it as the starting basis (block triangular,
            // fill-in free) so the first master solve opens in phase-2 a
            // few pivots from the optimum instead of cold dual-walking the
            // whole row count.
            let basic = crash_basis(model, structure, &plan);
            st.simplex
                .install_crash_basis(&st.prep, &basic, &structure.unpinned_y);
        }
    }
    st.simplex.reset_factor_stats();
    st.nodes.clear();
    st.open.clear();
    st.binaries.clear();
    st.binaries
        .extend(master.binary_vars().iter().map(|v| v.index()));
    st.incumbent.clear();

    st.nodes.push(NodeRec {
        parent: NO_VAR,
        var: NO_VAR,
        fixed: 0.0,
    });
    st.open.push(OpenNode {
        bound: f64::NEG_INFINITY,
        seq: 0,
        node: 0,
    });
    let mut seq = 1u32;

    let mut have_incumbent = false;
    let mut best_obj = f64::INFINITY;
    let mut nodes = 0usize;
    let mut exhausted = true;

    while let Some(open) = st.open.pop() {
        if nodes >= solver.max_nodes {
            exhausted = false;
            break;
        }
        if have_incumbent && open.bound >= best_obj - solver.tolerance {
            break;
        }
        nodes += 1;

        st.apply_bounds(open.node);
        let outcome = node_lp(solver, structure, st, &mut stats, &mut pricing);
        match outcome {
            LpOutcome::Optimal => {}
            _ => continue,
        }
        let obj = st.simplex.objective(&st.prep);
        if open.node == 0 {
            // Remember the fully-priced root-optimal basis; re-installed
            // after the search so a repeated solve replays identically.
            st.simplex.snapshot_basis();
        }
        if have_incumbent && obj >= best_obj - solver.tolerance {
            continue;
        }

        match solver.most_fractional_binary(&st.binaries, st.simplex.values()) {
            None => {
                st.candidate.clear();
                st.candidate.extend_from_slice(st.simplex.values());
                for &b in &st.binaries {
                    st.candidate[b] = st.candidate[b].round();
                }
                // Verify against the *original* model: the dropped linking
                // rows are re-checked here, so no master artifact can ever
                // become an incumbent.
                if model.is_feasible(&st.candidate, 1e-5) {
                    let candidate_obj = model.objective_value(&st.candidate);
                    if !have_incumbent || candidate_obj < best_obj - solver.tolerance {
                        have_incumbent = true;
                        best_obj = candidate_obj;
                        st.incumbent.clear();
                        st.incumbent.extend_from_slice(&st.candidate);
                    }
                }
            }
            Some(branch_var) => {
                for fixed in [1.0, 0.0] {
                    let idx = st.nodes.len() as u32;
                    st.nodes.push(NodeRec {
                        parent: open.node,
                        var: branch_var as u32,
                        fixed,
                    });
                    st.open.push(OpenNode {
                        bound: obj,
                        seq,
                        node: idx,
                    });
                    seq += 1;
                }
            }
        }
    }

    // Rest on the fully-priced root-optimal basis (see
    // `BranchBoundSolver::search` for the fixed-point rationale).
    if nodes > 1 {
        for &v in &st.touched {
            st.simplex.reset_var_bounds(&st.prep, v as usize);
        }
        st.touched.clear();
        st.simplex.restore_basis(&st.prep);
    }

    let factor = FactorStats {
        refactorizations: st.simplex.refactor_count(),
        peak_eta_len: st.simplex.peak_eta_len(),
        fill_in_ratio: st.simplex.fill_in_ratio(),
    };
    let pivots = stats.master_pivots;
    let solution = if have_incumbent {
        MilpSolution {
            outcome: if exhausted {
                MilpOutcome::Optimal
            } else {
                MilpOutcome::Feasible
            },
            objective: best_obj,
            values: st.incumbent.clone(),
            nodes,
            pivots,
            factor,
            pricing,
            decomp: Some(stats),
        }
    } else {
        MilpSolution {
            outcome: if exhausted {
                MilpOutcome::Infeasible
            } else {
                MilpOutcome::NodeLimit
            },
            objective: f64::INFINITY,
            values: vec![],
            nodes,
            pivots,
            factor,
            pricing,
            decomp: Some(stats),
        }
    };
    st.last_solution = Some(solution.clone());
    st.last_max_nodes = solver.max_nodes;
    st.last_tolerance = solver.tolerance;
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearExpr;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    /// A miniature placement MILP in the exact shape `build_model_from_costs`
    /// emits: assignment rows, per-server capacity rows with activation,
    /// `x ≤ y` linking rows, and optional `y = 1` pins.
    fn placement_model(
        costs: &[&[Option<f64>]],
        demand: f64,
        capacity: f64,
        activation: &[f64],
        pinned: &[bool],
    ) -> Model {
        let apps = costs.len();
        let servers = activation.len();
        let mut m = Model::new();
        let mut x = vec![vec![None; servers]; apps];
        for (i, row) in costs.iter().enumerate() {
            for (j, cost) in row.iter().enumerate() {
                if let Some(c) = cost {
                    let v = m.add_binary();
                    m.set_objective_term(v, *c);
                    x[i][j] = Some(v);
                }
            }
        }
        let y: Vec<_> = (0..servers)
            .map(|j| {
                let v = m.add_binary();
                m.set_objective_term(v, activation[j]);
                v
            })
            .collect();
        for (j, &pin) in pinned.iter().enumerate() {
            if pin {
                m.add_constraint(
                    LinearExpr::new().with(y[j], 1.0),
                    Comparison::Equal,
                    1.0,
                    format!("pin{j}"),
                );
            }
        }
        for (i, row) in x.iter().enumerate() {
            let mut expr = LinearExpr::new();
            for v in row.iter().flatten() {
                expr.add(*v, 1.0);
            }
            m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
        }
        for (j, &yv) in y.iter().enumerate() {
            let mut expr = LinearExpr::new();
            for row in &x {
                if let Some(v) = row[j] {
                    expr.add(v, demand);
                }
            }
            if expr.terms.is_empty() {
                continue;
            }
            expr.add(yv, -capacity);
            m.add_constraint(expr, Comparison::LessEq, 0.0, format!("cap{j}"));
        }
        for (i, row) in x.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    m.add_constraint(
                        LinearExpr::new().with(*v, 1.0).with(y[j], -1.0),
                        Comparison::LessEq,
                        0.0,
                        format!("link{i}_{j}"),
                    );
                }
            }
        }
        m
    }

    fn forced_decomp() -> BranchBoundSolver {
        let mut solver = BranchBoundSolver::new();
        solver.decomp_min_vars = 0;
        solver
    }

    fn forced_monolithic() -> BranchBoundSolver {
        let mut solver = BranchBoundSolver::new();
        solver.decomp_min_vars = usize::MAX;
        solver
    }

    #[test]
    fn detects_placement_shape_and_counts_blocks() {
        let costs: &[&[Option<f64>]] = &[
            &[Some(1.0), Some(5.0), None],
            &[Some(4.0), Some(2.0), Some(9.0)],
            &[None, Some(3.0), Some(1.0)],
        ];
        let m = placement_model(costs, 1.0, 2.0, &[0.5, 0.5, 0.5], &[true, false, true]);
        let s = BlockStructure::detect(&m).expect("placement shape must be detected");
        assert_eq!(s.num_apps(), 3);
        assert_eq!(s.num_candidate_columns(), 7);
        assert_eq!(s.num_linking_rows(), 7);
    }

    #[test]
    fn rejects_models_outside_the_shape() {
        // Continuous variable.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0);
        m.add_constraint(LinearExpr::new().with(x, 1.0), Comparison::Equal, 1.0, "r");
        assert!(BlockStructure::detect(&m).is_none());

        // `≥` row.
        let mut m = Model::new();
        let a = m.add_binary();
        m.add_constraint(
            LinearExpr::new().with(a, 1.0),
            Comparison::GreaterEq,
            1.0,
            "r",
        );
        assert!(BlockStructure::detect(&m).is_none());

        // Knapsack: a `≤` row but no convexity row.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.set_objective_term(a, -3.0);
        m.set_objective_term(b, -4.0);
        m.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 2.0),
            Comparison::LessEq,
            2.0,
            "cap",
        );
        assert!(BlockStructure::detect(&m).is_none());

        // Linking row whose drop is NOT implied: x never appears in a
        // capacity row with its y, so `y = 0` would not force `x = 0`.
        let mut m = Model::new();
        let x = m.add_binary();
        let y = m.add_binary();
        m.set_objective_term(x, 1.0);
        m.set_objective_term(y, 1.0);
        m.add_constraint(LinearExpr::new().with(x, 1.0), Comparison::Equal, 1.0, "a");
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, -1.0),
            Comparison::LessEq,
            0.0,
            "link",
        );
        assert!(BlockStructure::detect(&m).is_none());
    }

    #[test]
    fn decomposition_matches_monolithic_on_a_small_placement() {
        let costs: &[&[Option<f64>]] = &[
            &[Some(1.0), Some(10.0)],
            &[Some(1.0), Some(10.0)],
            &[Some(1.0), Some(10.0)],
        ];
        // Capacity 2 apps per server forces a split; activation favors
        // leaving the expensive server off when possible.
        let m = placement_model(costs, 1.0, 2.0, &[0.5, 0.5], &[false, false]);
        let d = forced_decomp().solve(&m);
        let mono = forced_monolithic().solve(&m);
        assert_eq!(d.outcome, MilpOutcome::Optimal);
        assert_eq!(mono.outcome, MilpOutcome::Optimal);
        assert!(
            approx(d.objective, mono.objective),
            "decomp {} monolithic {}",
            d.objective,
            mono.objective
        );
        assert!(m.is_feasible(&d.values, 1e-6));
        let stats = d.decomp.expect("decomposition stats must be present");
        assert!(stats.pricing_rounds >= 1);
        assert!(stats.columns_generated >= 3, "each app needs a column");
        assert_eq!(stats.master_pivots, d.pivots);
        assert_eq!(mono.decomp, None);
    }

    #[test]
    fn infeasible_placement_is_detected_on_the_decomposition_path() {
        // Two apps, one server, capacity for a single app.
        let costs: &[&[Option<f64>]] = &[&[Some(1.0)], &[Some(2.0)]];
        let m = placement_model(costs, 1.0, 1.0, &[0.0], &[false]);
        let d = forced_decomp().solve(&m);
        assert_eq!(d.outcome, MilpOutcome::Infeasible);
        assert!(!d.has_solution());
    }

    #[test]
    fn repeated_solves_are_memoized_fixed_points() {
        let costs: &[&[Option<f64>]] = &[
            &[Some(3.0), Some(1.0), Some(2.0)],
            &[Some(2.0), Some(3.0), Some(1.0)],
            &[Some(1.0), Some(2.0), Some(3.0)],
            &[Some(2.0), Some(2.0), Some(2.0)],
        ];
        let m = placement_model(costs, 1.0, 2.0, &[1.0, 1.0, 1.0], &[false, false, false]);
        let solver = forced_decomp();
        let first = solver.solve(&m);
        assert_eq!(first.outcome, MilpOutcome::Optimal);
        let again = solver.solve(&m);
        assert_eq!(again.outcome, first.outcome);
        assert_eq!(again.objective, first.objective, "bit-identical objective");
        assert_eq!(again.values, first.values, "bit-identical values");
        assert_eq!(again.pivots, 0, "memoized re-solve must do no work");
        assert_eq!(again.decomp, Some(DecompStats::default()));
        // A fresh solver agrees exactly (deterministic column ordering).
        let fresh = forced_decomp().solve(&m);
        assert_eq!(fresh.objective, first.objective);
        assert_eq!(fresh.values, first.values);
    }

    #[test]
    fn cost_only_resolves_warm_restart_and_stay_exact() {
        let costs: &[&[Option<f64>]] = &[
            &[Some(3.0), Some(1.0)],
            &[Some(2.0), Some(3.0)],
            &[Some(1.0), Some(2.0)],
        ];
        let m = placement_model(costs, 1.0, 2.0, &[1.0, 1.0], &[false, false]);
        let solver = forced_decomp();
        let first = solver.solve(&m);
        assert_eq!(first.outcome, MilpOutcome::Optimal);

        // Shift the costs (the epoch re-solve pattern): same structure,
        // different objective.  The warm path must agree with a cold one.
        let mut shifted = placement_model(costs, 1.0, 2.0, &[1.0, 1.0], &[false, false]);
        let terms: Vec<_> = shifted.objective().terms.clone();
        for (v, _) in terms {
            shifted.set_objective_term(v, 0.25);
        }
        let warm = solver.solve(&shifted);
        let cold = forced_decomp().solve(&shifted);
        assert_eq!(warm.outcome, MilpOutcome::Optimal);
        assert!(
            approx(warm.objective, cold.objective),
            "warm {} cold {}",
            warm.objective,
            cold.objective
        );
        assert!(shifted.is_feasible(&warm.values, 1e-6));
    }

    #[test]
    fn duplicate_columns_and_ties_stay_deterministic() {
        // Two identical servers and identical costs everywhere: every
        // optimum is tied, so only deterministic ordering keeps repeated
        // and fresh solves aligned.
        let costs: &[&[Option<f64>]] = &[
            &[Some(1.0), Some(1.0)],
            &[Some(1.0), Some(1.0)],
            &[Some(1.0), Some(1.0)],
        ];
        let m = placement_model(costs, 1.0, 2.0, &[1.0, 1.0], &[false, false]);
        let a = forced_decomp().solve(&m);
        let b = forced_decomp().solve(&m);
        assert_eq!(a.values, b.values);
        assert_eq!(a.objective, b.objective);
        let mono = forced_monolithic().solve(&m);
        assert!(approx(a.objective, mono.objective));
    }

    #[test]
    fn automatic_path_choice_follows_the_threshold() {
        let costs: &[&[Option<f64>]] = &[&[Some(1.0), Some(2.0)], &[Some(2.0), Some(1.0)]];
        let m = placement_model(costs, 1.0, 2.0, &[0.0, 0.0], &[false, false]);
        // Below the default threshold the monolithic path runs…
        let auto = BranchBoundSolver::new().solve(&m);
        assert_eq!(auto.decomp, None);
        // …while a zero threshold routes the same model through
        // decomposition with an identical objective.
        let forced = forced_decomp().solve(&m);
        assert!(forced.decomp.is_some());
        assert!(approx(auto.objective, forced.objective));
    }
}
