//! A small modeling layer for mixed binary/continuous linear programs.

/// Identifier of a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

impl VarId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// A continuous variable with lower and upper bounds.
    Continuous {
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// A binary (0/1) variable.
    Binary,
}

impl VarKind {
    /// Bounds of the variable in its LP relaxation.
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            VarKind::Continuous { lower, upper } => (*lower, *upper),
            VarKind::Binary => (0.0, 1.0),
        }
    }
}

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Left-hand side ≤ right-hand side.
    LessEq,
    /// Left-hand side ≥ right-hand side.
    GreaterEq,
    /// Left-hand side = right-hand side.
    Equal,
}

/// A sparse linear expression: a sum of `coefficient * variable` terms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearExpr {
    /// The `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
}

impl LinearExpr {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term, merging coefficients with any existing term on the same
    /// variable — repeated `add`s of one `VarId` never push duplicate terms.
    /// A term whose merged coefficient cancels to exactly zero is removed,
    /// keeping the expression canonical (duplicate or zero terms would make
    /// equal expressions compare unequal and defeat emptiness checks on
    /// constraint builders).
    pub fn add(&mut self, var: VarId, coeff: f64) -> &mut Self {
        if let Some(pos) = self.terms.iter().position(|(v, _)| *v == var) {
            self.terms[pos].1 += coeff;
            if self.terms[pos].1 == 0.0 {
                self.terms.remove(pos);
            }
        } else if coeff != 0.0 {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Builder-style term addition.
    pub fn with(mut self, var: VarId, coeff: f64) -> Self {
        self.add(var, coeff);
        self
    }

    /// Evaluates the expression at an assignment (indexed by variable id).
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|(v, c)| c * values[v.index()]).sum()
    }
}

/// A linear constraint `expr <cmp> rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left-hand side expression.
    pub expr: LinearExpr,
    /// Comparison sense.
    pub cmp: Comparison,
    /// Right-hand side constant.
    pub rhs: f64,
    /// Optional human-readable name for diagnostics.
    pub name: String,
}

impl Constraint {
    /// Whether the constraint holds at an assignment, within tolerance.
    pub fn is_satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.evaluate(values);
        match self.cmp {
            Comparison::LessEq => lhs <= self.rhs + tol,
            Comparison::GreaterEq => lhs >= self.rhs - tol,
            Comparison::Equal => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A minimization model over continuous and binary variables with linear
/// constraints — the subset of OR-Tools functionality the paper's placement
/// policy needs.
#[derive(Debug, Clone, Default)]
pub struct Model {
    vars: Vec<VarKind>,
    objective: LinearExpr,
    constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a binary variable.
    pub fn add_binary(&mut self) -> VarId {
        self.vars.push(VarKind::Binary);
        VarId(self.vars.len() - 1)
    }

    /// Adds a bounded continuous variable.  Panics if `lower > upper`.
    pub fn add_continuous(&mut self, lower: f64, upper: f64) -> VarId {
        assert!(lower <= upper, "invalid variable bounds");
        self.vars.push(VarKind::Continuous { lower, upper });
        VarId(self.vars.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variable kinds in id order.
    pub fn vars(&self) -> &[VarKind] {
        &self.vars
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The minimization objective.
    pub fn objective(&self) -> &LinearExpr {
        &self.objective
    }

    /// Sets an objective coefficient (adds to any existing coefficient).
    pub fn set_objective_term(&mut self, var: VarId, coeff: f64) {
        self.objective.add(var, coeff);
    }

    /// Adds a constraint; returns its index.
    pub fn add_constraint(
        &mut self,
        expr: LinearExpr,
        cmp: Comparison,
        rhs: f64,
        name: impl Into<String>,
    ) -> usize {
        self.constraints.push(Constraint {
            expr,
            cmp,
            rhs,
            name: name.into(),
        });
        self.constraints.len() - 1
    }

    /// Objective value at an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.evaluate(values)
    }

    /// Whether an assignment satisfies all constraints and variable bounds.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (i, kind) in self.vars.iter().enumerate() {
            let (lo, hi) = kind.bounds();
            if values[i] < lo - tol || values[i] > hi + tol {
                return false;
            }
            if matches!(kind, VarKind::Binary) {
                let frac = (values[i] - values[i].round()).abs();
                if frac > tol {
                    return false;
                }
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(values, tol))
    }

    /// Indices of the binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, VarKind::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knapsack_model() -> Model {
        // max 3a + 4b st a + 2b <= 2, binary  (as minimization of -obj)
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.set_objective_term(a, -3.0);
        m.set_objective_term(b, -4.0);
        m.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 2.0),
            Comparison::LessEq,
            2.0,
            "capacity",
        );
        m
    }

    #[test]
    fn variables_get_sequential_ids() {
        let mut m = Model::new();
        assert_eq!(m.add_binary(), VarId(0));
        assert_eq!(m.add_continuous(0.0, 5.0), VarId(1));
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn expr_merges_duplicate_terms_and_evaluates() {
        let mut e = LinearExpr::new();
        e.add(VarId(0), 2.0).add(VarId(0), 3.0).add(VarId(1), 1.0);
        assert_eq!(e.terms.len(), 2);
        assert_eq!(e.evaluate(&[1.0, 4.0]), 9.0);
    }

    #[test]
    fn repeated_add_of_same_var_never_duplicates_terms() {
        // Regression: repeated `add` of one VarId must merge coefficients
        // rather than pushing a second `(var, coeff)` term — duplicates would
        // double-count the variable in `evaluate` and in the simplex tableau.
        let mut e = LinearExpr::new();
        for _ in 0..10 {
            e.add(VarId(7), 1.0);
        }
        assert_eq!(e.terms, vec![(VarId(7), 10.0)]);
        // The builder-style path funnels through the same merge.
        let built = LinearExpr::new()
            .with(VarId(0), 2.0)
            .with(VarId(1), 1.0)
            .with(VarId(0), 3.0);
        assert_eq!(built.terms, vec![(VarId(0), 5.0), (VarId(1), 1.0)]);
        assert_eq!(built.evaluate(&[1.0, 10.0]), 15.0);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let mut e = LinearExpr::new();
        e.add(VarId(0), 2.5).add(VarId(1), 1.0).add(VarId(0), -2.5);
        assert_eq!(e.terms, vec![(VarId(1), 1.0)]);
        // An explicit zero-coefficient add is a no-op.
        e.add(VarId(2), 0.0);
        assert_eq!(e.terms.len(), 1);
        // Cancelled expressions compare equal to freshly built ones.
        assert_eq!(e, LinearExpr::new().with(VarId(1), 1.0));
    }

    #[test]
    fn objective_terms_merge_through_the_model() {
        let mut m = Model::new();
        let v = m.add_binary();
        m.set_objective_term(v, 1.5);
        m.set_objective_term(v, 2.5);
        assert_eq!(m.objective().terms, vec![(v, 4.0)]);
    }

    #[test]
    fn constraint_satisfaction_by_sense() {
        let expr = LinearExpr::new().with(VarId(0), 1.0);
        let le = Constraint {
            expr: expr.clone(),
            cmp: Comparison::LessEq,
            rhs: 1.0,
            name: String::new(),
        };
        let ge = Constraint {
            expr: expr.clone(),
            cmp: Comparison::GreaterEq,
            rhs: 1.0,
            name: String::new(),
        };
        let eq = Constraint {
            expr,
            cmp: Comparison::Equal,
            rhs: 1.0,
            name: String::new(),
        };
        assert!(le.is_satisfied(&[0.5], 1e-9));
        assert!(!le.is_satisfied(&[1.5], 1e-9));
        assert!(ge.is_satisfied(&[1.5], 1e-9));
        assert!(!ge.is_satisfied(&[0.5], 1e-9));
        assert!(eq.is_satisfied(&[1.0], 1e-9));
        assert!(!eq.is_satisfied(&[0.5], 1e-9));
    }

    #[test]
    fn feasibility_checks_bounds_and_integrality() {
        let m = knapsack_model();
        assert!(m.is_feasible(&[0.0, 1.0], 1e-9));
        assert!(m.is_feasible(&[1.0, 0.0], 1e-9));
        // Violates capacity.
        assert!(!m.is_feasible(&[1.0, 1.0], 1e-9));
        // Fractional binary.
        assert!(!m.is_feasible(&[0.5, 0.0], 1e-9));
        // Wrong length.
        assert!(!m.is_feasible(&[0.0], 1e-9));
    }

    #[test]
    fn objective_value_evaluates() {
        let m = knapsack_model();
        assert_eq!(m.objective_value(&[0.0, 1.0]), -4.0);
        assert_eq!(m.objective_value(&[1.0, 0.0]), -3.0);
    }

    #[test]
    fn binary_vars_listing() {
        let mut m = Model::new();
        m.add_binary();
        m.add_continuous(0.0, 1.0);
        m.add_binary();
        assert_eq!(m.binary_vars(), vec![VarId(0), VarId(2)]);
    }

    #[test]
    fn continuous_bounds_respected_in_feasibility() {
        let mut m = Model::new();
        let x = m.add_continuous(1.0, 2.0);
        m.set_objective_term(x, 1.0);
        assert!(m.is_feasible(&[1.5], 1e-9));
        assert!(!m.is_feasible(&[0.5], 1e-9));
        assert!(!m.is_feasible(&[2.5], 1e-9));
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        Model::new().add_continuous(2.0, 1.0);
    }
}
