//! Specialized solver for the incremental placement problem.
//!
//! The paper's placement problem (Eq. 7) is a generalized assignment problem
//! with fixed server-activation charges: each application must be assigned
//! to exactly one feasible server, multi-dimensional server capacities must
//! be respected, and opening a previously-off server adds its activation
//! carbon.  For testbed-sized instances the generic branch-and-bound solver
//! is exact; at CDN scale (hundreds of servers, dozens of applications per
//! batch) this module provides a regret-based greedy construction followed
//! by local search, which the tests validate against exhaustive enumeration
//! on small instances.

/// One instance of the placement problem in solver-neutral form.
#[derive(Debug, Clone)]
pub struct AssignmentProblem {
    /// `cost[i][j]`: cost of running application `i` on server `j`, or
    /// `None` when the pair is infeasible (latency violation or
    /// incompatible hardware).
    pub cost: Vec<Vec<Option<f64>>>,
    /// `demand[i][j][k]`: demand of application `i` on server `j` in
    /// resource dimension `k` (only read when the pair is feasible).
    pub demand: Vec<Vec<Vec<f64>>>,
    /// `capacity[j][k]`: available capacity of server `j` in dimension `k`.
    pub capacity: Vec<Vec<f64>>,
    /// `activation_cost[j]`: extra cost incurred the first time an
    /// application is placed on server `j` while it is closed.
    pub activation_cost: Vec<f64>,
    /// `open[j]`: whether server `j` is already powered on.
    pub open: Vec<bool>,
}

impl AssignmentProblem {
    /// Number of applications.
    pub fn num_apps(&self) -> usize {
        self.cost.len()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.capacity.len()
    }

    /// Validates internal dimensions; returns an error string when shapes
    /// are inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        let servers = self.num_servers();
        if self.activation_cost.len() != servers || self.open.len() != servers {
            return Err("activation/open length mismatch".into());
        }
        for (i, row) in self.cost.iter().enumerate() {
            if row.len() != servers {
                return Err(format!("cost row {i} has wrong length"));
            }
        }
        if self.demand.len() != self.num_apps() {
            return Err("demand outer length mismatch".into());
        }
        let dims = self.capacity.first().map(|c| c.len()).unwrap_or(0);
        if self.capacity.iter().any(|c| c.len() != dims) {
            return Err("capacity dimension mismatch".into());
        }
        for (i, row) in self.demand.iter().enumerate() {
            if row.len() != servers {
                return Err(format!("demand row {i} has wrong length"));
            }
            for d in row {
                if d.len() != dims {
                    return Err(format!("demand dims mismatch for app {i}"));
                }
            }
        }
        Ok(())
    }

    fn fits(&self, app: usize, server: usize, used: &[Vec<f64>]) -> bool {
        self.demand[app][server]
            .iter()
            .zip(used[server].iter().zip(self.capacity[server].iter()))
            .all(|(d, (u, c))| u + d <= c + 1e-9)
    }

    /// Total cost of an assignment vector (operational + activation),
    /// or `None` if the assignment is infeasible.
    pub fn evaluate(&self, assignment: &[Option<usize>]) -> Option<f64> {
        if assignment.len() != self.num_apps() {
            return None;
        }
        let dims = self.capacity.first().map(|c| c.len()).unwrap_or(0);
        let mut used = vec![vec![0.0; dims]; self.num_servers()];
        let mut opened = vec![false; self.num_servers()];
        let mut total = 0.0;
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { return None };
            let cost = self.cost[i][*j]?;
            if !self.fits(i, *j, &used) {
                return None;
            }
            for (k, d) in self.demand[i][*j].iter().enumerate() {
                used[*j][k] += d;
            }
            total += cost;
            if !self.open[*j] && !opened[*j] {
                opened[*j] = true;
                total += self.activation_cost[*j];
            }
        }
        Some(total)
    }
}

/// The result of an assignment solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentSolution {
    /// Chosen server per application (`None` when the heuristic could not
    /// place the application feasibly).
    pub assignment: Vec<Option<usize>>,
    /// Total cost of the placed applications (operational + activation).
    pub cost: f64,
    /// Applications left unassigned.
    pub unassigned: Vec<usize>,
    /// Servers newly opened by this solution.
    pub newly_opened: Vec<usize>,
}

impl AssignmentSolution {
    /// Whether every application was placed.
    pub fn is_complete(&self) -> bool {
        self.unassigned.is_empty()
    }
}

/// Regret-greedy + local-search heuristic, with exhaustive enumeration for
/// tiny instances.
#[derive(Debug, Clone)]
pub struct AssignmentSolver {
    /// Maximum number of local-search improvement passes.
    pub local_search_passes: usize,
    /// Instances with at most this many `servers^apps` combinations are
    /// solved exactly by enumeration.
    pub exhaustive_limit: u64,
    /// Batches larger than this many applications skip the O(n²·m) regret
    /// ordering and fall back to a simple cheapest-feasible greedy pass,
    /// keeping CDN-scale batches (hundreds of applications over hundreds of
    /// servers) fast.
    pub regret_limit: usize,
}

impl Default for AssignmentSolver {
    fn default() -> Self {
        Self {
            local_search_passes: 8,
            exhaustive_limit: 20_000,
            regret_limit: 200,
        }
    }
}

/// Cached best/second-best marginal costs of one application, kept
/// consistent with [`State::marginal`] (see there for the exactness
/// argument).  `second_c` is `f64::INFINITY` when only one server is
/// feasible, matching the cold scan's "no second candidate" regret.
#[derive(Debug, Clone, Copy)]
enum Top2 {
    /// The cached entry may be stale; the next lookup rescans the row.
    Dirty,
    /// No feasible server remains for this application.
    Infeasible,
    /// `(best_j, best_c, second_c)` exactly as a fresh full scan would
    /// compute them.
    Cached(usize, f64, f64),
}

struct State<'p> {
    problem: &'p AssignmentProblem,
    assignment: Vec<Option<usize>>,
    used: Vec<Vec<f64>>,
    app_count_per_server: Vec<usize>,
    /// `marginal[i * servers + j]`: cached marginal cost of placing app `i`
    /// on server `j` in the *current* state (`NAN` = infeasible).  Placing
    /// or unplacing an application changes `used`/`app_count` for exactly
    /// one server, so every mutation refreshes exactly one column instead
    /// of the cold path's full `apps × servers` rescan per round.  The
    /// cached values are produced by the same `marginal_cost` arithmetic
    /// the cold scan runs, so every comparison made against them is
    /// bit-identical to an uncached solve.
    marginal: Vec<f64>,
    /// Per-app best/second cache over `marginal`, invalidated only when a
    /// column update could disturb it.
    top2: Vec<Top2>,
    /// Scratch for [`Self::total_cost`], reused across calls.
    opened_scratch: Vec<bool>,
}

impl<'p> State<'p> {
    fn new(problem: &'p AssignmentProblem) -> Self {
        let dims = problem.capacity.first().map(|c| c.len()).unwrap_or(0);
        let apps = problem.num_apps();
        let servers = problem.num_servers();
        let mut state = Self {
            problem,
            assignment: vec![None; apps],
            used: vec![vec![0.0; dims]; servers],
            app_count_per_server: vec![0; servers],
            marginal: vec![f64::NAN; apps * servers],
            top2: vec![Top2::Dirty; apps],
            opened_scratch: vec![false; servers],
        };
        for i in 0..apps {
            for j in 0..servers {
                let c = state.marginal_cost(i, j).unwrap_or(f64::NAN);
                state.marginal[i * servers + j] = c;
            }
        }
        state
    }

    fn server_is_open(&self, j: usize) -> bool {
        self.problem.open[j] || self.app_count_per_server[j] > 0
    }

    /// Marginal cost of placing app i on server j given the current state.
    fn marginal_cost(&self, i: usize, j: usize) -> Option<f64> {
        let base = self.problem.cost[i][j]?;
        if !self.problem.fits(i, j, &self.used) {
            return None;
        }
        let activation = if self.server_is_open(j) {
            0.0
        } else {
            self.problem.activation_cost[j]
        };
        Some(base + activation)
    }

    /// Refreshes the cached marginal column of server `j` after its
    /// capacity or open state changed, invalidating any top-2 entry the
    /// change could disturb: the column was its best server, or the old or
    /// new value reaches into the cached top-2 range.
    fn refresh_column(&mut self, j: usize) {
        let servers = self.problem.num_servers();
        for i in 0..self.problem.num_apps() {
            let old = self.marginal[i * servers + j];
            let new = self.marginal_cost(i, j).unwrap_or(f64::NAN);
            if old.to_bits() == new.to_bits() {
                continue;
            }
            self.marginal[i * servers + j] = new;
            match self.top2[i] {
                Top2::Dirty => {}
                Top2::Infeasible => {
                    if !new.is_nan() {
                        self.top2[i] = Top2::Dirty;
                    }
                }
                Top2::Cached(best_j, _, second_c) => {
                    // NaN comparisons are false, so an infeasible old/new
                    // value never dirties through the value checks alone.
                    if j == best_j || old <= second_c || new <= second_c {
                        self.top2[i] = Top2::Dirty;
                    }
                }
            }
        }
    }

    /// The best and second-best marginal costs of app `i`, exactly as the
    /// cold per-round scan computes them: `best` keeps the first server
    /// attaining the strict running minimum, `second` is the minimum over
    /// the remaining values.  Returns `None` when no server is feasible.
    fn top2(&mut self, i: usize) -> Option<(usize, f64, f64)> {
        if let Top2::Dirty = self.top2[i] {
            self.top2[i] = self.rescan_top2(i);
        }
        match self.top2[i] {
            Top2::Cached(best_j, best_c, second_c) => Some((best_j, best_c, second_c)),
            Top2::Infeasible => None,
            Top2::Dirty => unreachable!("entry was just rescanned"),
        }
    }

    fn rescan_top2(&self, i: usize) -> Top2 {
        let servers = self.problem.num_servers();
        let row = &self.marginal[i * servers..(i + 1) * servers];
        let mut best: Option<(usize, f64)> = None;
        let mut second: Option<f64> = None;
        for (j, &c) in row.iter().enumerate() {
            if c.is_nan() {
                continue;
            }
            match best {
                Some((_, bc)) if c >= bc => {
                    if second.is_none_or(|s| c < s) {
                        second = Some(c);
                    }
                }
                _ => {
                    if let Some((_, bc)) = best {
                        second = Some(bc);
                    }
                    best = Some((j, c));
                }
            }
        }
        match best {
            Some((bj, bc)) => Top2::Cached(bj, bc, second.unwrap_or(f64::INFINITY)),
            None => Top2::Infeasible,
        }
    }

    /// The cheapest feasible server for app `i` (first index on ties), read
    /// from the cached marginal column — the same result a fresh
    /// `marginal_cost` scan in ascending server order produces.
    fn best_server(&self, i: usize) -> Option<(usize, f64)> {
        let servers = self.problem.num_servers();
        let row = &self.marginal[i * servers..(i + 1) * servers];
        let mut best: Option<(usize, f64)> = None;
        for (j, &c) in row.iter().enumerate() {
            if !c.is_nan() && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((j, c));
            }
        }
        best
    }

    fn place(&mut self, i: usize, j: usize) {
        debug_assert!(self.assignment[i].is_none());
        for (k, d) in self.problem.demand[i][j].iter().enumerate() {
            self.used[j][k] += d;
        }
        self.app_count_per_server[j] += 1;
        self.assignment[i] = Some(j);
        self.refresh_column(j);
    }

    fn unplace(&mut self, i: usize) {
        if let Some(j) = self.assignment[i].take() {
            for (k, d) in self.problem.demand[i][j].iter().enumerate() {
                self.used[j][k] -= d;
            }
            self.app_count_per_server[j] -= 1;
            self.refresh_column(j);
        }
    }

    fn total_cost(&mut self) -> f64 {
        let mut total = 0.0;
        self.opened_scratch.fill(false);
        for (i, a) in self.assignment.iter().enumerate() {
            if let Some(j) = a {
                total += self.problem.cost[i][*j].unwrap_or(0.0);
                if !self.problem.open[*j] && !self.opened_scratch[*j] {
                    self.opened_scratch[*j] = true;
                    total += self.problem.activation_cost[*j];
                }
            }
        }
        total
    }
}

impl AssignmentSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the assignment problem.
    pub fn solve(&self, problem: &AssignmentProblem) -> AssignmentSolution {
        problem.validate().expect("malformed assignment problem");
        let apps = problem.num_apps();
        let servers = problem.num_servers();
        if apps == 0 || servers == 0 {
            return AssignmentSolution {
                assignment: vec![None; apps],
                cost: 0.0,
                unassigned: (0..apps).collect(),
                newly_opened: vec![],
            };
        }

        // Exact enumeration for tiny instances.
        let combos = (servers as u64).checked_pow(apps as u32);
        if let Some(combos) = combos {
            if combos <= self.exhaustive_limit {
                if let Some(sol) = self.solve_exhaustive(problem) {
                    return sol;
                }
            }
        }

        let mut state = State::new(problem);
        if apps > self.regret_limit {
            self.greedy_construct_simple(&mut state);
        } else {
            self.greedy_construct(&mut state);
        }
        self.local_search(&mut state);
        self.finish(state)
    }

    /// Cheapest-feasible greedy in application order; O(apps · servers).
    fn greedy_construct_simple(&self, state: &mut State<'_>) {
        for i in 0..state.problem.num_apps() {
            if let Some((j, _)) = state.best_server(i) {
                state.place(i, j);
            }
        }
    }

    fn greedy_construct(&self, state: &mut State<'_>) {
        let apps = state.problem.num_apps();
        let mut remaining: Vec<usize> = (0..apps).collect();
        while !remaining.is_empty() {
            // For each remaining app read the cached best and second-best
            // marginal cost; pick the app with the largest regret
            // (difference).  The cache holds exactly the values a fresh
            // scan would compute, so the chosen (app, server) matches the
            // uncached construction bit for bit.
            let mut chosen: Option<(usize, usize, f64)> = None; // (pos, server, regret)
            for (pos, &i) in remaining.iter().enumerate() {
                let Some((bj, bc, second)) = state.top2(i) else {
                    continue;
                };
                let regret = if second.is_finite() {
                    second - bc
                } else {
                    f64::INFINITY
                };
                let better = match &chosen {
                    None => true,
                    Some((_, _, r)) => regret > *r,
                };
                if better {
                    chosen = Some((pos, bj, regret));
                }
            }
            match chosen {
                Some((pos, server, _)) => {
                    let app = remaining.remove(pos);
                    state.place(app, server);
                }
                None => break, // nothing placeable anymore
            }
        }
    }

    fn local_search(&self, state: &mut State<'_>) {
        for _ in 0..self.local_search_passes {
            let mut improved = false;
            for i in 0..state.problem.num_apps() {
                let Some(current) = state.assignment[i] else {
                    continue;
                };
                let before = state.total_cost();
                state.unplace(i);
                // The cheapest feasible server for i in the reduced state.
                let best = state.best_server(i);
                match best {
                    Some((j, _)) => {
                        state.place(i, j);
                        let after = state.total_cost();
                        if after < before - 1e-9 {
                            improved = true;
                        } else if j != current {
                            // Revert if no strict improvement.
                            state.unplace(i);
                            state.place(i, current);
                        }
                    }
                    None => {
                        // Should not happen since `current` was feasible; restore.
                        state.place(i, current);
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    fn finish(&self, mut state: State<'_>) -> AssignmentSolution {
        let problem = state.problem;
        let assignment = state.assignment.clone();
        let cost = state.total_cost();
        let unassigned = assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut newly_opened: Vec<usize> = assignment
            .iter()
            .flatten()
            .copied()
            .filter(|j| !problem.open[*j])
            .collect();
        newly_opened.sort_unstable();
        newly_opened.dedup();
        AssignmentSolution {
            assignment,
            cost,
            unassigned,
            newly_opened,
        }
    }

    fn solve_exhaustive(&self, problem: &AssignmentProblem) -> Option<AssignmentSolution> {
        let apps = problem.num_apps();
        let servers = problem.num_servers();
        let mut best: Option<(f64, Vec<Option<usize>>)> = None;
        let total = (servers as u64).pow(apps as u32);
        for code in 0..total {
            let mut c = code;
            let mut assignment = Vec::with_capacity(apps);
            for _ in 0..apps {
                assignment.push(Some((c % servers as u64) as usize));
                c /= servers as u64;
            }
            if let Some(cost) = problem.evaluate(&assignment) {
                if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                    best = Some((cost, assignment));
                }
            }
        }
        let (cost, assignment) = best?;
        let mut newly_opened: Vec<usize> = assignment
            .iter()
            .flatten()
            .copied()
            .filter(|j| !problem.open[*j])
            .collect();
        newly_opened.sort_unstable();
        newly_opened.dedup();
        Some(AssignmentSolution {
            assignment,
            cost,
            unassigned: vec![],
            newly_opened,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn simple_problem() -> AssignmentProblem {
        // 2 apps, 2 servers, one resource dimension.
        AssignmentProblem {
            cost: vec![vec![Some(10.0), Some(1.0)], vec![Some(2.0), Some(8.0)]],
            demand: vec![vec![vec![1.0], vec![1.0]], vec![vec![1.0], vec![1.0]]],
            capacity: vec![vec![2.0], vec![2.0]],
            activation_cost: vec![0.0, 0.0],
            open: vec![true, true],
        }
    }

    #[test]
    fn picks_cheapest_assignment() {
        let sol = AssignmentSolver::new().solve(&simple_problem());
        assert!(sol.is_complete());
        assert_eq!(sol.assignment, vec![Some(1), Some(0)]);
        assert!((sol.cost - 3.0).abs() < 1e-9);
    }

    #[test]
    fn respects_capacity() {
        let mut p = simple_problem();
        // Both apps prefer server 1 but it only fits one.
        p.cost = vec![vec![Some(10.0), Some(1.0)], vec![Some(10.0), Some(2.0)]];
        p.capacity = vec![vec![2.0], vec![1.0]];
        let sol = AssignmentSolver::new().solve(&p);
        assert!(sol.is_complete());
        let cost = p.evaluate(&sol.assignment).unwrap();
        // Optimum: app1 -> server1 (2), app0 -> server0 (10) = 12, or
        // app0 -> server1 (1) + app1 -> server0 (10) = 11.
        assert!((cost - 11.0).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn activation_cost_consolidates_servers() {
        // Two apps; server 0 slightly more expensive per app but open,
        // server 1 cheaper per app but has a huge activation cost.
        let p = AssignmentProblem {
            cost: vec![vec![Some(5.0), Some(4.0)], vec![Some(5.0), Some(4.0)]],
            demand: vec![vec![vec![1.0], vec![1.0]], vec![vec![1.0], vec![1.0]]],
            capacity: vec![vec![2.0], vec![2.0]],
            activation_cost: vec![0.0, 100.0],
            open: vec![true, false],
        };
        let sol = AssignmentSolver::new().solve(&p);
        assert_eq!(sol.assignment, vec![Some(0), Some(0)]);
        assert!(sol.newly_opened.is_empty());
        assert!((sol.cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn activation_cost_paid_once() {
        // Cheap closed server worth opening for both apps.
        let p = AssignmentProblem {
            cost: vec![vec![Some(50.0), Some(1.0)], vec![Some(50.0), Some(1.0)]],
            demand: vec![vec![vec![1.0], vec![1.0]], vec![vec![1.0], vec![1.0]]],
            capacity: vec![vec![2.0], vec![2.0]],
            activation_cost: vec![0.0, 10.0],
            open: vec![true, false],
        };
        let sol = AssignmentSolver::new().solve(&p);
        assert_eq!(sol.assignment, vec![Some(1), Some(1)]);
        assert_eq!(sol.newly_opened, vec![1]);
        assert!((sol.cost - 12.0).abs() < 1e-9, "cost {}", sol.cost);
    }

    #[test]
    fn infeasible_pairs_are_avoided() {
        let p = AssignmentProblem {
            cost: vec![vec![None, Some(3.0)], vec![Some(2.0), None]],
            demand: vec![vec![vec![1.0], vec![1.0]], vec![vec![1.0], vec![1.0]]],
            capacity: vec![vec![1.0], vec![1.0]],
            activation_cost: vec![0.0, 0.0],
            open: vec![true, true],
        };
        let sol = AssignmentSolver::new().solve(&p);
        assert_eq!(sol.assignment, vec![Some(1), Some(0)]);
        assert!(sol.is_complete());
    }

    #[test]
    fn overloaded_instance_reports_unassigned() {
        // Two apps, one server with capacity for one; force the heuristic
        // path by raising the exhaustive limit threshold artificially low.
        let p = AssignmentProblem {
            cost: vec![vec![Some(1.0)], vec![Some(1.0)]],
            demand: vec![vec![vec![1.0]], vec![vec![1.0]]],
            capacity: vec![vec![1.0]],
            activation_cost: vec![0.0],
            open: vec![true],
        };
        let solver = AssignmentSolver {
            exhaustive_limit: 0,
            ..AssignmentSolver::new()
        };
        let sol = solver.solve(&p);
        assert_eq!(sol.unassigned.len(), 1);
        assert!(!sol.is_complete());
    }

    #[test]
    fn evaluate_rejects_capacity_violation_and_infeasible_pairs() {
        let p = simple_problem();
        assert!(p.evaluate(&[Some(0), Some(0)]).is_some());
        let mut tight = p.clone();
        tight.capacity = vec![vec![1.0], vec![2.0]];
        assert!(tight.evaluate(&[Some(0), Some(0)]).is_none());
        let mut infeasible = p.clone();
        infeasible.cost[0][0] = None;
        assert!(infeasible.evaluate(&[Some(0), Some(1)]).is_none());
        assert!(p.evaluate(&[Some(0)]).is_none());
        assert!(p.evaluate(&[None, Some(1)]).is_none());
    }

    #[test]
    fn empty_problem_is_handled() {
        let p = AssignmentProblem {
            cost: vec![],
            demand: vec![],
            capacity: vec![],
            activation_cost: vec![],
            open: vec![],
        };
        let sol = AssignmentSolver::new().solve(&p);
        assert_eq!(sol.cost, 0.0);
        assert!(sol.assignment.is_empty());
    }

    #[test]
    fn validate_catches_shape_errors() {
        let mut p = simple_problem();
        p.activation_cost = vec![0.0];
        assert!(p.validate().is_err());
        let mut p2 = simple_problem();
        p2.cost[0] = vec![Some(1.0)];
        assert!(p2.validate().is_err());
        assert!(simple_problem().validate().is_ok());
    }

    #[test]
    fn heuristic_matches_exhaustive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        for _case in 0..20 {
            let apps = rng.gen_range(2..5);
            let servers = rng.gen_range(2..4);
            let p = AssignmentProblem {
                cost: (0..apps)
                    .map(|_| {
                        (0..servers)
                            .map(|_| {
                                if rng.gen_bool(0.9) {
                                    Some(rng.gen_range(1.0..50.0))
                                } else {
                                    None
                                }
                            })
                            .collect()
                    })
                    .collect(),
                demand: (0..apps)
                    .map(|_| {
                        (0..servers)
                            .map(|_| vec![rng.gen_range(0.5..2.0)])
                            .collect()
                    })
                    .collect(),
                capacity: (0..servers)
                    .map(|_| vec![rng.gen_range(2.0..5.0)])
                    .collect(),
                activation_cost: (0..servers).map(|_| rng.gen_range(0.0..20.0)).collect(),
                open: (0..servers).map(|_| rng.gen_bool(0.5)).collect(),
            };
            // Exact (exhaustive) solution through the normal entry point.
            let exact = AssignmentSolver::new().solve(&p);
            // Heuristic-only solution.
            let heuristic = AssignmentSolver {
                exhaustive_limit: 0,
                ..AssignmentSolver::new()
            }
            .solve(&p);
            if exact.is_complete() && heuristic.is_complete() {
                // The heuristic may be suboptimal but never better than exact,
                // and should be within 30% on these tiny instances.
                assert!(heuristic.cost >= exact.cost - 1e-6);
                assert!(
                    heuristic.cost <= exact.cost * 1.3 + 1e-6,
                    "heuristic {} vs exact {}",
                    heuristic.cost,
                    exact.cost
                );
            }
        }
    }

    #[test]
    fn larger_instance_is_solved_quickly_and_feasibly() {
        let mut rng = StdRng::seed_from_u64(99);
        let apps = 50;
        let servers = 40;
        let p = AssignmentProblem {
            cost: (0..apps)
                .map(|_| {
                    (0..servers)
                        .map(|_| Some(rng.gen_range(1.0..100.0)))
                        .collect()
                })
                .collect(),
            demand: (0..apps)
                .map(|_| {
                    (0..servers)
                        .map(|_| vec![rng.gen_range(0.1..0.4), rng.gen_range(100.0..500.0)])
                        .collect()
                })
                .collect(),
            capacity: (0..servers).map(|_| vec![1.0, 16_000.0]).collect(),
            activation_cost: (0..servers).map(|_| rng.gen_range(0.0..50.0)).collect(),
            open: (0..servers).map(|i| i % 2 == 0).collect(),
        };
        let sol = AssignmentSolver::new().solve(&p);
        assert!(sol.is_complete());
        assert!(p.evaluate(&sol.assignment).is_some());
    }
}
