//! Sparse LU factorization of a simplex basis with product-form updates.
//!
//! The revised simplex in [`crate::simplex`] needs three linear-algebra
//! primitives per pivot: FTRAN (`w = B^-1 a`), BTRAN (`y^T = c^T B^-1`) and
//! a rank-one basis exchange.  The previous implementation kept a dense
//! row-major `m x m` basis inverse — quadratic memory and per-pivot work.
//! This module replaces it with
//!
//! * a **sparse LU factorization** `B = L U` (modulo row/column
//!   permutations) computed by Markowitz-style pivoting: singleton rows and
//!   columns are eliminated first (zero fill), and the residual "bump" is
//!   pivoted by minimum column count × minimum row count under a relative
//!   stability threshold, which keeps fill-in near the nonzero count of the
//!   basis itself for the placement models this crate produces
//!   (assignment + capacity + linking rows, whose optimal bases are mostly
//!   slack and near-triangular), and
//! * a **product-form eta file**: each basis exchange appends one sparse
//!   eta vector (the classic product-form update, the simpler sibling of
//!   Forrest–Tomlin) instead of touching `m^2` inverse entries.  FTRAN
//!   applies the eta file after the LU solve, BTRAN applies it transposed
//!   before, so both solves cost `O(nnz(L) + nnz(U) + nnz(etas))`.
//!
//! The eta file degrades solve cost as it grows, so [`BasisFactor`] also
//! owns the **refactorization cadence**: [`BasisFactor::needs_refactor`]
//! fires either after [`REFACTOR_EVERY`] updates or as soon as the
//! accumulated eta fill exceeds [`REFACTOR_FILL_LIMIT`] times the LU's own
//! nonzero count — an adaptive trigger that refactorizes dense, fill-heavy
//! pivot sequences long before the fixed pivot cap.

/// Entries below this magnitude are dropped during elimination
/// (cancellation noise, not structural nonzeros).
const DROP_EPS: f64 = 1e-12;
/// Pivot magnitude below which the basis counts as numerically singular.
const SING_EPS: f64 = 1e-11;
/// Relative (per-column) threshold a bump pivot must clear, trading a
/// little fill-in control for numerical stability.
const STABILITY: f64 = 0.01;

/// Hard cap: refactorize after this many eta updates regardless of fill.
pub const REFACTOR_EVERY: usize = 128;
/// Adaptive trigger: refactorize once the eta-file nonzeros exceed this
/// multiple of the LU factor's own nonzeros — dense pivot sequences hit
/// this long before [`REFACTOR_EVERY`].
pub const REFACTOR_FILL_LIMIT: usize = 4;

/// Sparse LU factors of a basis matrix plus the product-form eta file of
/// updates applied since the last factorization.  All storage is reused
/// across factorizations; after warm-up no path allocates.
#[derive(Debug, Clone, Default)]
pub struct BasisFactor {
    m: usize,
    /// Constraint row eliminated at step `k`.
    pivot_row: Vec<usize>,
    /// Basis slot (column of `B`) eliminated at step `k`.
    pivot_slot: Vec<usize>,
    /// `L` multipliers per step: `(row, l)` in `l_row`/`l_val`, step `k`
    /// spanning `l_ptr[k]..l_ptr[k + 1]`.
    l_ptr: Vec<usize>,
    l_row: Vec<usize>,
    l_val: Vec<f64>,
    /// Off-diagonal `U` entries per step: `(slot, u)` in `u_slot`/`u_val`,
    /// step `k` spanning `u_ptr[k]..u_ptr[k + 1]`; diagonals in `u_diag`.
    u_ptr: Vec<usize>,
    u_slot: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// Product-form eta file: update `e` pivots on slot `eta_piv[e]` with
    /// diagonal `eta_piv_val[e]` and off-diagonal `(slot, val)` entries in
    /// `eta_slot`/`eta_val` spanning `eta_ptr[e]..eta_ptr[e + 1]`.
    eta_ptr: Vec<usize>,
    eta_slot: Vec<usize>,
    eta_val: Vec<f64>,
    eta_piv: Vec<usize>,
    eta_piv_val: Vec<f64>,
    /// Nonzeros of the basis matrix last factorized (fill-in denominator).
    basis_nnz: usize,
    // Factorization scratch (reused, never observable).
    wrows: Vec<Vec<(usize, f64)>>,
    wcols: Vec<Vec<usize>>,
    row_cnt: Vec<usize>,
    col_cnt: Vec<usize>,
    row_done: Vec<bool>,
    col_done: Vec<bool>,
    spa_val: Vec<f64>,
    spa_used: Vec<bool>,
    spa_new: Vec<bool>,
    touch: Vec<usize>,
    row_q: Vec<usize>,
    col_q: Vec<usize>,
}

impl BasisFactor {
    /// Creates an empty factorization; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dimension of the factored basis.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Number of eta updates applied since the last factorization.
    pub fn eta_count(&self) -> usize {
        self.eta_piv.len()
    }

    /// Total nonzeros in the eta file.
    pub fn eta_nnz(&self) -> usize {
        self.eta_slot.len() + self.eta_piv.len()
    }

    /// Total nonzeros in the LU factors (including `U`'s diagonal).
    pub fn lu_nnz(&self) -> usize {
        self.l_val.len() + self.u_val.len() + self.m
    }

    /// Fill-in ratio of the last factorization: LU nonzeros over basis
    /// nonzeros (1.0 means zero fill).
    pub fn fill_ratio(&self) -> f64 {
        self.lu_nnz() as f64 / self.basis_nnz.max(1) as f64
    }

    /// Whether the eta file has grown enough that the next pivot should
    /// refactorize: the fixed [`REFACTOR_EVERY`] update cap, or the
    /// adaptive [`REFACTOR_FILL_LIMIT`] fill trigger, whichever fires
    /// first.
    pub fn needs_refactor(&self) -> bool {
        self.eta_count() >= REFACTOR_EVERY
            || self.eta_nnz() > REFACTOR_FILL_LIMIT * self.lu_nnz().max(self.m)
    }

    fn clear_factors(&mut self, m: usize) {
        self.m = m;
        self.pivot_row.clear();
        self.pivot_slot.clear();
        self.l_ptr.clear();
        self.l_ptr.push(0);
        self.l_row.clear();
        self.l_val.clear();
        self.u_ptr.clear();
        self.u_ptr.push(0);
        self.u_slot.clear();
        self.u_val.clear();
        self.u_diag.clear();
        self.eta_ptr.clear();
        self.eta_ptr.push(0);
        self.eta_slot.clear();
        self.eta_val.clear();
        self.eta_piv.clear();
        self.eta_piv_val.clear();
    }

    /// Installs the factorization of the identity basis (the slack basis).
    pub fn reset_identity(&mut self, m: usize) {
        self.clear_factors(m);
        for k in 0..m {
            self.pivot_row.push(k);
            self.pivot_slot.push(k);
            self.u_diag.push(1.0);
            self.l_ptr.push(0);
            self.u_ptr.push(0);
        }
        self.basis_nnz = m;
    }

    /// Installs the factorization of a diagonal basis (slack columns with
    /// activated `±1` artificial columns).
    pub fn reset_diagonal(&mut self, diag: &[f64]) {
        self.reset_identity(diag.len());
        self.u_diag.copy_from_slice(diag);
    }

    /// Factorizes the basis given column-wise (CSC) with column `k` being
    /// basis slot `k`.  Returns `false` when the matrix is numerically
    /// singular; the previous factors are destroyed either way, so the
    /// caller must reinstall a valid basis on failure.
    pub fn factorize(
        &mut self,
        m: usize,
        col_ptr: &[usize],
        row_idx: &[usize],
        vals: &[f64],
    ) -> bool {
        self.clear_factors(m);
        self.basis_nnz = 0;
        if m == 0 {
            return true;
        }

        // Working matrix: exact row lists plus (lazily validated) column
        // row-lists and active nonzero counts.
        self.wrows.resize_with(m, Vec::new);
        self.wcols.resize_with(m, Vec::new);
        for r in 0..m {
            self.wrows[r].clear();
            self.wcols[r].clear();
        }
        self.row_cnt.clear();
        self.row_cnt.resize(m, 0);
        self.col_cnt.clear();
        self.col_cnt.resize(m, 0);
        self.row_done.clear();
        self.row_done.resize(m, false);
        self.col_done.clear();
        self.col_done.resize(m, false);
        self.spa_val.clear();
        self.spa_val.resize(m, 0.0);
        self.spa_used.clear();
        self.spa_used.resize(m, false);
        self.spa_new.clear();
        self.spa_new.resize(m, false);
        self.row_q.clear();
        self.col_q.clear();

        for s in 0..m {
            for p in col_ptr[s]..col_ptr[s + 1] {
                let v = vals[p];
                if v != 0.0 {
                    let r = row_idx[p];
                    self.wrows[r].push((s, v));
                    self.wcols[s].push(r);
                    self.basis_nnz += 1;
                }
            }
        }
        for r in 0..m {
            self.row_cnt[r] = self.wrows[r].len();
            match self.row_cnt[r] {
                0 => return false, // structurally singular
                1 => self.row_q.push(r),
                _ => {}
            }
        }
        for s in 0..m {
            self.col_cnt[s] = self.wcols[s].len();
            match self.col_cnt[s] {
                0 => return false,
                1 => self.col_q.push(s),
                _ => {}
            }
        }

        for _ in 0..m {
            let Some((pr, ps)) = self.select_pivot() else {
                return false;
            };
            if !self.eliminate(pr, ps) {
                return false;
            }
        }
        true
    }

    /// Picks the next pivot: column singletons, then row singletons (both
    /// zero-fill), then the Markowitz-style bump rule.
    fn select_pivot(&mut self) -> Option<(usize, usize)> {
        while let Some(s) = self.col_q.pop() {
            if self.col_done[s] || self.col_cnt[s] != 1 {
                continue;
            }
            let r = self.active_col_rows(s).next()?;
            return Some((r, s));
        }
        while let Some(r) = self.row_q.pop() {
            if self.row_done[r] || self.row_cnt[r] != 1 {
                continue;
            }
            let s = self.wrows[r].first().map(|&(s, _)| s)?;
            return Some((r, s));
        }
        // Bump: slot with the fewest active entries, then within it the row
        // with the fewest active entries whose pivot clears the stability
        // threshold.
        let mut best_slot: Option<(usize, usize)> = None; // (count, slot)
        for s in 0..self.m {
            if self.col_done[s] {
                continue;
            }
            let cnt = self.col_cnt[s];
            if cnt == 0 {
                return None; // active empty column: singular
            }
            if best_slot.is_none_or(|(c, _)| cnt < c) {
                best_slot = Some((cnt, s));
                if cnt == 2 {
                    break;
                }
            }
        }
        let (_, s) = best_slot?;
        let col_max = self
            .active_col_rows(s)
            .map(|r| self.row_value(r, s).abs())
            .fold(0.0f64, f64::max);
        if col_max < SING_EPS {
            return None;
        }
        let mut best: Option<(usize, usize)> = None; // (row_cnt, row)
        for r in self.active_col_rows(s).collect::<Vec<_>>() {
            if self.row_value(r, s).abs() >= STABILITY * col_max {
                let cnt = self.row_cnt[r];
                if best.is_none_or(|(c, _)| cnt < c) {
                    best = Some((cnt, r));
                }
            }
        }
        best.map(|(_, r)| (r, s))
    }

    /// Active rows holding a nonzero in slot `s` (validated against the
    /// exact row lists, since `wcols` may hold stale entries).
    fn active_col_rows(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        self.wcols[s]
            .iter()
            .copied()
            .filter(move |&r| !self.row_done[r] && self.wrows[r].iter().any(|&(t, _)| t == s))
    }

    fn row_value(&self, r: usize, s: usize) -> f64 {
        self.wrows[r]
            .iter()
            .find(|&&(t, _)| t == s)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Records step `k = pivot count` at `(row pr, slot ps)` and eliminates
    /// slot `ps` from every other active row.
    fn eliminate(&mut self, pr: usize, ps: usize) -> bool {
        let prow = std::mem::take(&mut self.wrows[pr]);
        let apiv = match prow.iter().find(|&&(s, _)| s == ps) {
            Some(&(_, v)) if v.abs() >= SING_EPS => v,
            _ => {
                self.wrows[pr] = prow;
                return false;
            }
        };
        self.pivot_row.push(pr);
        self.pivot_slot.push(ps);
        self.u_diag.push(apiv);
        for &(s, v) in &prow {
            if s != ps {
                self.u_slot.push(s);
                self.u_val.push(v);
            }
        }
        self.u_ptr.push(self.u_slot.len());
        self.row_done[pr] = true;
        self.col_done[ps] = true;
        for &(s, _) in &prow {
            if s != ps && !self.col_done[s] {
                self.col_cnt[s] -= 1;
                if self.col_cnt[s] == 1 {
                    self.col_q.push(s);
                }
            }
        }

        // Update every active row holding slot `ps`.
        let col_rows = std::mem::take(&mut self.wcols[ps]);
        for r in col_rows {
            if self.row_done[r] {
                continue;
            }
            let Some(pos) = self.wrows[r].iter().position(|&(s, _)| s == ps) else {
                continue; // stale column entry
            };
            let mut row = std::mem::take(&mut self.wrows[r]);
            let l = row[pos].1 / apiv;
            self.l_row.push(r);
            self.l_val.push(l);
            row.swap_remove(pos);
            // Sparse accumulate: row <- row - l * prow (minus the pivot).
            self.touch.clear();
            for &(s, v) in &row {
                self.spa_val[s] = v;
                self.spa_used[s] = true;
                self.touch.push(s);
            }
            for &(s, v) in &prow {
                if s == ps {
                    continue;
                }
                if !self.spa_used[s] {
                    self.spa_used[s] = true;
                    self.spa_new[s] = true;
                    self.touch.push(s);
                }
                self.spa_val[s] -= l * v;
            }
            row.clear();
            for t in 0..self.touch.len() {
                let s = self.touch[t];
                let v = self.spa_val[s];
                let is_new = self.spa_new[s];
                self.spa_val[s] = 0.0;
                self.spa_used[s] = false;
                self.spa_new[s] = false;
                if v.abs() > DROP_EPS {
                    row.push((s, v));
                    if is_new {
                        self.col_cnt[s] += 1;
                        self.wcols[s].push(r);
                    }
                } else if !is_new {
                    self.col_cnt[s] -= 1;
                    if self.col_cnt[s] == 1 && !self.col_done[s] {
                        self.col_q.push(s);
                    }
                }
            }
            self.row_cnt[r] = row.len();
            if self.row_cnt[r] == 1 {
                self.row_q.push(r);
            }
            self.wrows[r] = row;
        }
        self.l_ptr.push(self.l_row.len());
        self.wrows[pr] = prow;
        true
    }

    /// FTRAN: solves `B x = v` where `v` is indexed by constraint row
    /// (destroyed in place) and the solution lands in `out`, indexed by
    /// basis slot.
    pub fn ftran(&self, v: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        for k in 0..m {
            let t = v[self.pivot_row[k]];
            if t != 0.0 {
                for p in self.l_ptr[k]..self.l_ptr[k + 1] {
                    v[self.l_row[p]] -= self.l_val[p] * t;
                }
            }
        }
        for k in (0..m).rev() {
            let mut t = v[self.pivot_row[k]];
            for p in self.u_ptr[k]..self.u_ptr[k + 1] {
                t -= self.u_val[p] * out[self.u_slot[p]];
            }
            out[self.pivot_slot[k]] = t / self.u_diag[k];
        }
        for e in 0..self.eta_piv.len() {
            let r = self.eta_piv[e];
            let t = out[r];
            if t != 0.0 {
                out[r] = t * self.eta_piv_val[e];
                for p in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                    out[self.eta_slot[p]] += self.eta_val[p] * t;
                }
            }
        }
    }

    /// BTRAN: solves `y^T B = c^T` where `c` is indexed by basis slot
    /// (destroyed in place) and the solution lands in `out`, indexed by
    /// constraint row.
    pub fn btran(&self, c: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        for e in (0..self.eta_piv.len()).rev() {
            let r = self.eta_piv[e];
            let mut t = c[r] * self.eta_piv_val[e];
            for p in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                t += self.eta_val[p] * c[self.eta_slot[p]];
            }
            c[r] = t;
        }
        for k in 0..m {
            let z = c[self.pivot_slot[k]] / self.u_diag[k];
            out[self.pivot_row[k]] = z;
            if z != 0.0 {
                for p in self.u_ptr[k]..self.u_ptr[k + 1] {
                    c[self.u_slot[p]] -= self.u_val[p] * z;
                }
            }
        }
        for k in (0..m).rev() {
            let mut t = out[self.pivot_row[k]];
            for p in self.l_ptr[k]..self.l_ptr[k + 1] {
                t -= self.l_val[p] * out[self.l_row[p]];
            }
            out[self.pivot_row[k]] = t;
        }
    }

    /// Product-form update after a basis exchange: slot `r` now holds a
    /// column whose FTRAN image is `w` (so `w[r]` is the pivot element).
    /// Appends one eta vector; returns `false` on a vanishing pivot.
    pub fn update(&mut self, r: usize, w: &[f64]) -> bool {
        let piv = w[r];
        if piv == 0.0 {
            return false;
        }
        let inv = 1.0 / piv;
        self.eta_piv.push(r);
        self.eta_piv_val.push(inv);
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                self.eta_slot.push(i);
                self.eta_val.push(-wi * inv);
            }
        }
        self.eta_ptr.push(self.eta_slot.len());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense Gaussian elimination oracle for `A x = b`.
    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let m = b.len();
        let mut aug: Vec<Vec<f64>> = a
            .iter()
            .zip(b.iter())
            .map(|(row, &rhs)| {
                let mut r = row.clone();
                r.push(rhs);
                r
            })
            .collect();
        for col in 0..m {
            let piv = (col..m)
                .max_by(|&i, &j| aug[i][col].abs().total_cmp(&aug[j][col].abs()))
                .unwrap();
            aug.swap(col, piv);
            let inv = 1.0 / aug[col][col];
            for v in aug[col][col..].iter_mut() {
                *v *= inv;
            }
            let pivot_row = aug[col].clone();
            for (row, r) in aug.iter_mut().enumerate() {
                if row != col && r[col] != 0.0 {
                    let f = r[col];
                    for (v, &pv) in r[col..].iter_mut().zip(&pivot_row[col..]) {
                        *v -= f * pv;
                    }
                }
            }
        }
        (0..m).map(|i| aug[i][m]).collect()
    }

    /// Converts a dense column-major test matrix to CSC.
    fn to_csc(cols: &[Vec<f64>]) -> (usize, Vec<usize>, Vec<usize>, Vec<f64>) {
        let m = cols.len();
        let mut ptr = vec![0usize];
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for col in cols {
            for (r, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    rows.push(r);
                    vals.push(v);
                }
            }
            ptr.push(rows.len());
        }
        (m, ptr, rows, vals)
    }

    /// Row-major view of a column-major matrix (for the dense oracle).
    fn rows_of(cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let m = cols.len();
        (0..m)
            .map(|r| (0..m).map(|c| cols[c][r]).collect())
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-8, "{a:?} vs {b:?}");
        }
    }

    /// A fixed, structurally interesting 5x5 test basis: two slack-style
    /// singleton columns, a dense-ish bump, and off-diagonal couplings.
    fn sample_cols() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0],
            vec![2.0, 3.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, -2.0, 0.0, 0.5],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, -1.0, 4.0, 0.0, 2.0],
        ]
    }

    fn xorshift(state: &mut u64) -> f64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn ftran_matches_dense_solve() {
        let cols = sample_cols();
        let (m, ptr, rows, vals) = to_csc(&cols);
        let mut f = BasisFactor::new();
        assert!(f.factorize(m, &ptr, &rows, &vals));
        let b = vec![1.0, -2.0, 0.5, 3.0, 0.0];
        let mut v = b.clone();
        let mut out = vec![0.0; m];
        f.ftran(&mut v, &mut out);
        assert_close(&out, &dense_solve(&rows_of(&cols), &b));
    }

    #[test]
    fn btran_matches_dense_transpose_solve() {
        let cols = sample_cols();
        let (m, ptr, rows, vals) = to_csc(&cols);
        let mut f = BasisFactor::new();
        assert!(f.factorize(m, &ptr, &rows, &vals));
        let c = vec![0.5, 1.0, -1.0, 2.0, 0.25];
        let mut cv = c.clone();
        let mut out = vec![0.0; m];
        f.btran(&mut cv, &mut out);
        // Transpose of the column-major matrix is its row-major form.
        assert_close(&out, &dense_solve(&cols.to_vec(), &c));
    }

    #[test]
    fn random_matrices_round_trip_against_dense_oracle() {
        let mut state = 0x9e3779b97f4a7c15u64;
        for trial in 0..50 {
            let m = 3 + (trial % 6);
            // Diagonally-anchored random sparse matrix: always nonsingular
            // enough for the oracle comparison to be meaningful.
            let mut cols = vec![vec![0.0; m]; m];
            for (j, col) in cols.iter_mut().enumerate() {
                col[j] = 1.0 + xorshift(&mut state).abs();
                for (i, slot) in col.iter_mut().enumerate() {
                    if i != j && xorshift(&mut state) > 0.4 {
                        *slot = xorshift(&mut state);
                    }
                }
            }
            let (m, ptr, rows, vals) = to_csc(&cols);
            let mut f = BasisFactor::new();
            assert!(f.factorize(m, &ptr, &rows, &vals), "trial {trial}");
            let b: Vec<f64> = (0..m).map(|_| xorshift(&mut state)).collect();
            let mut v = b.clone();
            let mut out = vec![0.0; m];
            f.ftran(&mut v, &mut out);
            assert_close(&out, &dense_solve(&rows_of(&cols), &b));
            let mut cv = b.clone();
            f.btran(&mut cv, &mut out);
            assert_close(&out, &dense_solve(&cols.to_vec(), &b));
        }
    }

    #[test]
    fn eta_update_matches_refactorization() {
        let mut cols = sample_cols();
        let (m, ptr, rows, vals) = to_csc(&cols);
        let mut f = BasisFactor::new();
        assert!(f.factorize(m, &ptr, &rows, &vals));
        // Replace slot 1's column and apply the product-form update.
        let newcol = vec![0.0, 2.0, 1.0, 0.0, -1.0];
        let mut v = newcol.clone();
        let mut w = vec![0.0; m];
        f.ftran(&mut v, &mut w);
        assert!(f.update(1, &w));
        assert_eq!(f.eta_count(), 1);
        cols[1] = newcol;
        let b = vec![0.3, 1.0, -0.7, 2.0, 0.9];
        let mut bv = b.clone();
        let mut out = vec![0.0; m];
        f.ftran(&mut bv, &mut out);
        assert_close(&out, &dense_solve(&rows_of(&cols), &b));
        let mut cv = b.clone();
        f.btran(&mut cv, &mut out);
        assert_close(&out, &dense_solve(&cols.to_vec(), &b));
    }

    #[test]
    fn identity_and_diagonal_resets() {
        let mut f = BasisFactor::new();
        f.reset_identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut v = b.clone();
        let mut out = vec![0.0; 4];
        f.ftran(&mut v, &mut out);
        assert_close(&out, &b);
        f.reset_diagonal(&[1.0, -1.0, 1.0, -1.0]);
        let mut v = b.clone();
        f.ftran(&mut v, &mut out);
        assert_close(&out, &[1.0, -2.0, 3.0, -4.0]);
        let mut c = b.clone();
        f.btran(&mut c, &mut out);
        assert_close(&out, &[1.0, -2.0, 3.0, -4.0]);
    }

    #[test]
    fn singular_basis_is_rejected() {
        // Duplicate columns.
        let cols = vec![
            vec![1.0, 2.0, 0.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 1.0],
        ];
        let (m, ptr, rows, vals) = to_csc(&cols);
        let mut f = BasisFactor::new();
        assert!(!f.factorize(m, &ptr, &rows, &vals));
        // Structurally empty column.
        let cols = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        let (m, ptr, rows, vals) = to_csc(&cols);
        assert!(!f.factorize(m, &ptr, &rows, &vals));
    }

    #[test]
    fn adaptive_fill_trigger_fires_before_the_pivot_cap() {
        // An identity basis has lu_nnz == m; dense eta updates blow past
        // the fill limit after a handful of pivots, far before the
        // REFACTOR_EVERY cap.
        let m = 16;
        let mut f = BasisFactor::new();
        f.reset_identity(m);
        let w: Vec<f64> = (0..m).map(|i| 1.0 + i as f64 * 0.1).collect();
        let mut updates = 0;
        while !f.needs_refactor() {
            assert!(f.update(updates % m, &w));
            updates += 1;
            assert!(updates <= REFACTOR_EVERY, "fill trigger never fired");
        }
        assert!(
            updates <= REFACTOR_FILL_LIMIT + 2,
            "dense updates should trip the fill trigger almost immediately, took {updates}"
        );
        assert!(updates < REFACTOR_EVERY);
        // Sparse eta updates only hit the pivot-count cap — pick a
        // dimension large enough that the fill budget (a multiple of the
        // basis size) outlasts REFACTOR_EVERY single-nonzero etas.
        let m = 2 * REFACTOR_EVERY / REFACTOR_FILL_LIMIT;
        f.reset_identity(m);
        let mut sparse_w = vec![0.0; m];
        sparse_w[3] = 2.0;
        let mut updates = 0;
        while !f.needs_refactor() {
            assert!(f.update(3, &sparse_w));
            updates += 1;
        }
        assert_eq!(updates, REFACTOR_EVERY);
    }

    #[test]
    fn fill_ratio_reports_lu_over_basis_nonzeros() {
        let cols = sample_cols();
        let (m, ptr, rows, vals) = to_csc(&cols);
        let mut f = BasisFactor::new();
        assert!(f.factorize(m, &ptr, &rows, &vals));
        assert!(f.fill_ratio() >= 1.0 - 1e-12, "ratio {}", f.fill_ratio());
        assert!(f.lu_nnz() >= 5);
        assert_eq!(f.eta_count(), 0);
    }
}
