#![forbid(unsafe_code)]
//! Optimization substrate for CarbonEdge.
//!
//! The paper solves its carbon-aware placement MILP with Google OR-Tools
//! (Section 5.1).  This crate is the from-scratch replacement:
//!
//! * [`model`] — a small modeling layer for mixed binary/continuous linear
//!   programs (variables, linear constraints, minimization objective);
//! * [`simplex`] — a bounded-variable **revised** simplex for the LP
//!   relaxation: bounds live in the basis logic (nonbasic-at-lower/upper),
//!   feasibility comes from a proper phase-1 instead of a Big-M penalty,
//!   devex pricing picks entering columns, and a bounded dual simplex
//!   provides warm restarts after bound changes;
//! * [`factor`] — the sparse linear algebra under the simplex: a
//!   Markowitz-ordered sparse LU factorization of the basis with
//!   product-form eta updates per pivot and an adaptive refactorization
//!   trigger, making FTRAN/BTRAN cost `O(nnz)` instead of `O(m^2)`;
//! * [`mod@presolve`] — model reductions applied before large solves (empty
//!   and redundant rows, singleton-row bound tightening, fixed-variable
//!   substitution, dominated binary columns in assignment rows) with a
//!   postsolve mapping back to full-model solutions;
//! * [`branch_bound`] — an exact branch-and-bound MILP solver over the
//!   binary variables: best-first node selection from a bound-ordered
//!   priority queue, compact parent-diff node records, and dual-simplex
//!   warm starts in a scratch workspace shared across nodes and solves;
//! * [`decomp`] — a Dantzig–Wolfe column-generation path for
//!   assignment-shaped placement MILPs: the restricted master drops the
//!   `x ≤ y` linking rows and activates columns on demand via bound
//!   relaxation, pricing is a closed-form pass over the inactive columns,
//!   and integer answers come from price-and-branch; `BranchBoundSolver`
//!   routes large block-structured models here automatically;
//! * [`assignment`] — a specialized solver for the incremental placement
//!   problem (a generalized assignment problem with server-activation
//!   costs): greedy construction with regret ordering plus local search,
//!   and an exhaustive exact solver for tiny instances used to validate it;
//! * [`mod@reference`] — the pre-rewrite dense Big-M tableau simplex and
//!   cold-start branch-and-bound, retained **only** as differential-test
//!   oracles and as the "before" side of `BENCH_solver.json`.
//!
//! The placement policies in `carbonedge-core` use the exact solver for
//! small instances and the assignment heuristic at CDN scale; benches in
//! `carbonedge-bench` compare the paths (the solver ablation called out in
//! DESIGN.md) and measure the revised-vs-reference speedup.

pub mod assignment;
pub mod branch_bound;
pub mod decomp;
pub mod factor;
pub mod model;
pub mod presolve;
pub mod reference;
pub mod simplex;

pub use assignment::{AssignmentProblem, AssignmentSolution, AssignmentSolver};
pub use branch_bound::{
    BranchBoundSolver, DecompStats, FactorStats, MilpOutcome, MilpSolution, MilpWorkspace,
    PricingStats,
};
pub use decomp::{BlockStructure, DecompState};
pub use factor::BasisFactor;
pub use model::{Comparison, Constraint, LinearExpr, Model, VarId, VarKind};
pub use presolve::{presolve, PresolveOutcome, PresolvedModel};
pub use reference::{DenseSimplexSolver, ReferenceBranchBound};
pub use simplex::{LpOutcome, LpSolution, Prepared, SimplexSolver, SimplexWorkspace};
