//! Optimization substrate for CarbonEdge.
//!
//! The paper solves its carbon-aware placement MILP with Google OR-Tools
//! (Section 5.1).  This crate is the from-scratch replacement:
//!
//! * [`model`] — a small modeling layer for mixed binary/continuous linear
//!   programs (variables, linear constraints, minimization objective);
//! * [`simplex`] — a dense Big-M primal simplex solver for the LP
//!   relaxation;
//! * [`branch_bound`] — an exact branch-and-bound MILP solver over the
//!   binary variables, using the simplex relaxation for bounds;
//! * [`assignment`] — a specialized solver for the incremental placement
//!   problem (a generalized assignment problem with server-activation
//!   costs): greedy construction with regret ordering plus local search,
//!   and an exhaustive exact solver for tiny instances used to validate it.
//!
//! The placement policies in `carbonedge-core` use the exact solver for
//! small instances and the assignment heuristic at CDN scale; benches in
//! `carbonedge-bench` compare the two (the solver ablation called out in
//! DESIGN.md).

pub mod assignment;
pub mod branch_bound;
pub mod model;
pub mod simplex;

pub use assignment::{AssignmentProblem, AssignmentSolution, AssignmentSolver};
pub use branch_bound::{BranchBoundSolver, MilpOutcome, MilpSolution};
pub use model::{Comparison, Constraint, LinearExpr, Model, VarId, VarKind};
pub use simplex::{LpOutcome, LpSolution, SimplexSolver};
