//! Exact branch-and-bound MILP solver over binary variables.
//!
//! The solver repeatedly solves LP relaxations with the simplex solver,
//! branches on the most fractional binary variable, and prunes nodes whose
//! relaxation bound cannot beat the incumbent.  It is exact given enough
//! nodes; a node limit turns it into an anytime solver that reports the best
//! incumbent found (mirroring how OR-Tools is used with a time limit in the
//! paper's placement service).

use crate::model::Model;
use crate::simplex::{LpOutcome, SimplexSolver};

/// Status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpOutcome {
    /// Proven optimal integer solution.
    Optimal,
    /// A feasible integer solution was found but optimality was not proven
    /// within the node limit.
    Feasible,
    /// No feasible integer solution exists (or none was found and the search
    /// space was exhausted).
    Infeasible,
    /// The node limit was reached without finding any integer solution.
    NodeLimit,
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Solve status.
    pub outcome: MilpOutcome,
    /// Best objective value found.
    pub objective: f64,
    /// Variable values of the best solution (empty when none found).
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

impl MilpSolution {
    /// Whether a usable integer solution is available.
    pub fn has_solution(&self) -> bool {
        matches!(self.outcome, MilpOutcome::Optimal | MilpOutcome::Feasible)
    }
}

/// Branch-and-bound solver configuration.
#[derive(Debug, Clone)]
pub struct BranchBoundSolver {
    /// LP relaxation solver.
    pub lp: SimplexSolver,
    /// Maximum number of nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
}

impl Default for BranchBoundSolver {
    fn default() -> Self {
        Self {
            lp: SimplexSolver::new(),
            max_nodes: 50_000,
            tolerance: 1e-6,
        }
    }
}

struct Node {
    overrides: Vec<Option<(f64, f64)>>,
    bound: f64,
}

impl BranchBoundSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with a node limit (anytime behaviour).
    pub fn with_node_limit(max_nodes: usize) -> Self {
        Self {
            max_nodes,
            ..Self::default()
        }
    }

    fn most_fractional_binary(&self, model: &Model, values: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for v in model.binary_vars() {
            let val = values[v.index()];
            let frac = (val - val.round()).abs();
            if frac > self.tolerance {
                let distance_to_half = (val - 0.5).abs();
                match best {
                    Some((_, d)) if d <= distance_to_half => {}
                    _ => best = Some((v.index(), distance_to_half)),
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Solves the MILP to optimality (or best effort within the node limit).
    pub fn solve(&self, model: &Model) -> MilpSolution {
        let n = model.num_vars();
        let root = Node {
            overrides: vec![None; n],
            bound: f64::NEG_INFINITY,
        };
        let mut stack = vec![root];
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;
        let mut exhausted = true;

        while let Some(node) = stack.pop() {
            if nodes >= self.max_nodes {
                exhausted = false;
                break;
            }
            nodes += 1;

            // Prune by bound.
            if let Some((best_obj, _)) = &incumbent {
                if node.bound >= *best_obj - self.tolerance {
                    continue;
                }
            }

            let relax = self.lp.solve_with_bounds(model, &node.overrides);
            match relax.outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => {
                    // An unbounded relaxation of a bounded-binary problem can
                    // only come from unbounded continuous variables; treat the
                    // node as unusable.
                    continue;
                }
                LpOutcome::IterationLimit => continue,
                LpOutcome::Optimal => {}
            }
            if let Some((best_obj, _)) = &incumbent {
                if relax.objective >= *best_obj - self.tolerance {
                    continue;
                }
            }

            match self.most_fractional_binary(model, &relax.values) {
                None => {
                    // Integer feasible: round binaries exactly and keep if improving.
                    let mut values = relax.values.clone();
                    for v in model.binary_vars() {
                        values[v.index()] = values[v.index()].round();
                    }
                    if model.is_feasible(&values, 1e-5) {
                        let obj = model.objective_value(&values);
                        let improves = incumbent
                            .as_ref()
                            .is_none_or(|(best, _)| obj < *best - self.tolerance);
                        if improves {
                            incumbent = Some((obj, values));
                        }
                    }
                }
                Some(branch_var) => {
                    // Branch: x = 0 and x = 1 children.
                    for fixed in [1.0, 0.0] {
                        let mut overrides = node.overrides.clone();
                        overrides[branch_var] = Some((fixed, fixed));
                        stack.push(Node {
                            overrides,
                            bound: relax.objective,
                        });
                    }
                }
            }
        }

        match incumbent {
            Some((objective, values)) => MilpSolution {
                outcome: if exhausted {
                    MilpOutcome::Optimal
                } else {
                    MilpOutcome::Feasible
                },
                objective,
                values,
                nodes,
            },
            None => MilpSolution {
                outcome: if exhausted {
                    MilpOutcome::Infeasible
                } else {
                    MilpOutcome::NodeLimit
                },
                objective: f64::INFINITY,
                values: vec![],
                nodes,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Comparison, LinearExpr, Model};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= 8  (as minimization)
        // best: a + c = 14 (weight 8); a+b = 16 weight 9 infeasible -> optimum a,c.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective_term(a, -10.0);
        m.set_objective_term(b, -6.0);
        m.set_objective_term(c, -4.0);
        m.add_constraint(
            LinearExpr::new().with(a, 5.0).with(b, 4.0).with(c, 3.0),
            Comparison::LessEq,
            8.0,
            "w",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        assert!(approx(sol.objective, -14.0), "obj {}", sol.objective);
        assert!(approx(sol.values[a.index()], 1.0));
        assert!(approx(sol.values[b.index()], 0.0));
        assert!(approx(sol.values[c.index()], 1.0));
    }

    #[test]
    fn assignment_with_capacity_is_exact() {
        // 3 apps, 2 servers; server capacity 2 apps; costs force splitting.
        let costs = [[1.0, 10.0], [1.0, 10.0], [1.0, 10.0]];
        let mut m = Model::new();
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for &cost in &costs[i] {
                let v = m.add_binary();
                m.set_objective_term(v, cost);
                x[i].push(v);
            }
            let expr = LinearExpr::new().with(x[i][0], 1.0).with(x[i][1], 1.0);
            m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
        }
        for j in 0..2 {
            let mut expr = LinearExpr::new();
            for row in &x {
                expr.add(row[j], 1.0);
            }
            m.add_constraint(expr, Comparison::LessEq, 2.0, format!("cap{j}"));
        }
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        // Two apps on cheap server (cost 1 each) + one forced to server 2 (10).
        assert!(approx(sol.objective, 12.0), "obj {}", sol.objective);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn infeasible_milp_detected() {
        // Two apps must each be assigned but single server capacity is 1.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.add_constraint(LinearExpr::new().with(a, 1.0), Comparison::Equal, 1.0, "a1");
        m.add_constraint(LinearExpr::new().with(b, 1.0), Comparison::Equal, 1.0, "a2");
        m.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 1.0),
            Comparison::LessEq,
            1.0,
            "cap",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Infeasible);
        assert!(!sol.has_solution());
    }

    #[test]
    fn fixed_charge_activation_structure() {
        // One app can go to server A (op cost 10, activation 1) or server B
        // (op cost 1, activation 100).  y_j >= x_j links activation.
        let mut m = Model::new();
        let xa = m.add_binary();
        let xb = m.add_binary();
        let ya = m.add_binary();
        let yb = m.add_binary();
        m.set_objective_term(xa, 10.0);
        m.set_objective_term(xb, 1.0);
        m.set_objective_term(ya, 1.0);
        m.set_objective_term(yb, 100.0);
        m.add_constraint(
            LinearExpr::new().with(xa, 1.0).with(xb, 1.0),
            Comparison::Equal,
            1.0,
            "assign",
        );
        m.add_constraint(
            LinearExpr::new().with(xa, 1.0).with(ya, -1.0),
            Comparison::LessEq,
            0.0,
            "linkA",
        );
        m.add_constraint(
            LinearExpr::new().with(xb, 1.0).with(yb, -1.0),
            Comparison::LessEq,
            0.0,
            "linkB",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        // Choosing A costs 11, choosing B costs 101 -> A wins.
        assert!(approx(sol.objective, 11.0), "obj {}", sol.objective);
        assert!(approx(sol.values[xa.index()], 1.0));
    }

    #[test]
    fn node_limit_produces_anytime_result() {
        let mut m = Model::new();
        // A slightly larger knapsack to force branching.
        let vals = [12.0, 7.0, 11.0, 8.0, 9.0, 6.0, 7.0, 5.0];
        let weights = [4.0, 3.0, 5.0, 3.0, 4.0, 2.0, 3.0, 2.0];
        let vars: Vec<_> = (0..vals.len()).map(|_| m.add_binary()).collect();
        let mut cap = LinearExpr::new();
        for (i, v) in vars.iter().enumerate() {
            m.set_objective_term(*v, -vals[i]);
            cap.add(*v, weights[i]);
        }
        m.add_constraint(cap, Comparison::LessEq, 10.0, "w");
        let limited = BranchBoundSolver::with_node_limit(3).solve(&m);
        assert!(limited.nodes <= 3);
        let full = BranchBoundSolver::new().solve(&m);
        assert_eq!(full.outcome, MilpOutcome::Optimal);
        if limited.has_solution() {
            assert!(limited.objective >= full.objective - 1e-6);
        }
    }

    #[test]
    fn continuous_and_binary_mix() {
        // min 5y + x  s.t. x >= 3 - 10*(1-y) i.e. x + 10y >= 3... simpler:
        // x in [0, 10], y binary, x + 2y >= 3 -> either y=1 (cost 5 + x=1) = 6,
        // or y=0 x=3 -> 3.  Optimum 3.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        let y = m.add_binary();
        m.set_objective_term(x, 1.0);
        m.set_objective_term(y, 5.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 2.0),
            Comparison::GreaterEq,
            3.0,
            "cover",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        assert!(approx(sol.objective, 3.0), "obj {}", sol.objective);
    }

    #[test]
    fn optimum_matches_exhaustive_enumeration_on_random_instances() {
        // Small random generalized-assignment instances; brute force vs B&B.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _case in 0..5 {
            let apps = 4;
            let servers = 3;
            let costs: Vec<Vec<f64>> = (0..apps)
                .map(|_| (0..servers).map(|_| rng.gen_range(1.0..20.0)).collect())
                .collect();
            let demand: Vec<f64> = (0..apps).map(|_| rng.gen_range(1.0..3.0)).collect();
            let capacity = 5.0;

            let mut m = Model::new();
            let mut x = vec![vec![]; apps];
            for i in 0..apps {
                for &cost in &costs[i] {
                    let v = m.add_binary();
                    m.set_objective_term(v, cost);
                    x[i].push(v);
                }
                let mut expr = LinearExpr::new();
                for &v in &x[i] {
                    expr.add(v, 1.0);
                }
                m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
            }
            for j in 0..servers {
                let mut expr = LinearExpr::new();
                for (row, &d) in x.iter().zip(demand.iter()) {
                    expr.add(row[j], d);
                }
                m.add_constraint(expr, Comparison::LessEq, capacity, format!("cap{j}"));
            }
            let sol = BranchBoundSolver::new().solve(&m);

            // Brute force over all server^apps assignments.
            let mut best = f64::INFINITY;
            for code in 0..servers.pow(apps as u32) {
                let mut c = code;
                let mut load = vec![0.0; servers];
                let mut cost = 0.0;
                for i in 0..apps {
                    let j = c % servers;
                    c /= servers;
                    load[j] += demand[i];
                    cost += costs[i][j];
                }
                if load.iter().all(|l| *l <= capacity + 1e-9) {
                    best = best.min(cost);
                }
            }
            assert_eq!(sol.outcome, MilpOutcome::Optimal);
            assert!(
                approx(sol.objective, best),
                "bb {} brute {}",
                sol.objective,
                best
            );
        }
    }
}
