//! Exact branch-and-bound MILP solver over binary variables, warm-started
//! and allocation-free per node.
//!
//! The solver explores nodes **best-first** from a bound-ordered priority
//! queue.  Each node is a compact diff against its parent — `(variable,
//! fixed value)` plus a parent pointer into a node arena — instead of a
//! cloned bound-override vector, and every LP relaxation is solved in one
//! shared [`SimplexWorkspace`]: after a bound tightening the previous
//! optimal basis stays **dual feasible** (reduced costs do not depend on
//! bounds), so the relaxation restarts with a handful of dual-simplex
//! pivots rather than a cold solve.  A node limit turns the solver into an
//! anytime solver that reports the best incumbent found (mirroring how
//! OR-Tools is used with a time limit in the paper's placement service).
//!
//! The workspace persists inside the solver behind a mutex, so successive
//! `solve` calls — e.g. the per-epoch placements of
//! `carbonedge_core::IncrementalPlacer` — reuse all buffers without
//! reallocating.

use crate::decomp::{solve_decomposed, BlockStructure, DecompState};
use crate::model::Model;
use crate::presolve::{presolve, PresolveOutcome};
use crate::simplex::{LpOutcome, Prepared, SimplexSolver, SimplexWorkspace};
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpOutcome {
    /// Proven optimal integer solution.
    Optimal,
    /// A feasible integer solution was found but optimality was not proven
    /// within the node limit.
    Feasible,
    /// No feasible integer solution exists (or none was found and the search
    /// space was exhausted).
    Infeasible,
    /// The node limit was reached without finding any integer solution.
    NodeLimit,
}

/// Basis-factorization statistics of one MILP solve — the sparse-LU
/// observability surfaced alongside `pivots` in `BENCH_solver.json`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FactorStats {
    /// Number of full basis refactorizations (the initial factorization of
    /// a cold solve counts as one).
    pub refactorizations: usize,
    /// Peak length of the product-form eta file between refactorizations.
    pub peak_eta_len: usize,
    /// LU nonzeros over basis-matrix nonzeros at the last refactorization
    /// (1.0 = no fill-in; 0.0 when no factorization ran, e.g. a pure
    /// warm restart).
    pub fill_in_ratio: f64,
}

/// Pricing-ladder statistics of one MILP solve: how often the devex
/// reference framework was reset and how often the Dantzig→Bland
/// anti-cycling fallback fired.  Both were previously invisible; surfacing
/// them alongside [`FactorStats`] lets the bench snapshots show when the
/// pricing machinery is struggling rather than striding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PricingStats {
    /// Devex reference-weight resets (weights drifted past the ceiling and
    /// were re-unified) summed across every LP solve of the search.
    pub devex_resets: usize,
    /// Dantzig→Bland fallback activations (one per degenerate streak that
    /// exceeded the Bland threshold) summed across every LP solve.
    pub bland_activations: usize,
}

impl PricingStats {
    /// Accumulates the most recent LP solve's counters from a workspace.
    pub(crate) fn absorb(&mut self, simplex: &SimplexWorkspace) {
        self.devex_resets += simplex.last_devex_resets();
        self.bland_activations += simplex.last_bland_activations();
    }
}

/// Column-generation statistics of a decomposition-path MILP solve
/// (`None` on the monolithic path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecompStats {
    /// Columns activated in the restricted master across the whole search
    /// (initial greedy seeding plus pricing rounds).
    pub columns_generated: usize,
    /// Pricing passes over the inactive columns (including final passes
    /// that proved optimality by finding nothing to activate).
    pub pricing_rounds: usize,
    /// Simplex pivots spent inside the restricted master LP (equals
    /// [`MilpSolution::pivots`] on the decomposition path — the pricing
    /// subproblems are closed-form and pivot-free).
    pub master_pivots: usize,
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Solve status.
    pub outcome: MilpOutcome,
    /// Best objective value found.
    pub objective: f64,
    /// Variable values of the best solution (empty when none found).
    pub values: Vec<f64>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots (primal and dual) across all nodes.
    pub pivots: usize,
    /// Basis-factorization statistics of the solve.
    pub factor: FactorStats,
    /// Pricing-ladder statistics of the solve.
    pub pricing: PricingStats,
    /// Column-generation statistics when the solve ran on the
    /// Dantzig–Wolfe decomposition path; `None` on the monolithic path.
    pub decomp: Option<DecompStats>,
}

impl MilpSolution {
    /// Whether a usable integer solution is available.
    pub fn has_solution(&self) -> bool {
        matches!(self.outcome, MilpOutcome::Optimal | MilpOutcome::Feasible)
    }
}

/// Sentinel for "no parent" / "no branching decision" (the root node).
pub(crate) const NO_VAR: u32 = u32::MAX;

/// One arena entry: the branching decision that distinguishes this node
/// from its parent.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRec {
    pub(crate) parent: u32,
    pub(crate) var: u32,
    pub(crate) fixed: f64,
}

/// Heap entry; ordered so the *smallest* relaxation bound pops first
/// (ties broken by insertion order for determinism).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenNode {
    pub(crate) bound: f64,
    pub(crate) seq: u32,
    pub(crate) node: u32,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for OpenNode {}

impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the lowest bound is "greatest".
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scratch arena shared by every node of a search and across successive
/// searches: prepared matrix, simplex workspace, node records, open queue
/// and incumbent buffers.
#[derive(Debug, Default)]
pub struct MilpWorkspace {
    prep: Prepared,
    simplex: SimplexWorkspace,
    /// Whether `prep`/`simplex` have been loaded at least once.
    loaded: bool,
    nodes: Vec<NodeRec>,
    open: BinaryHeap<OpenNode>,
    touched: Vec<u32>,
    binaries: Vec<usize>,
    candidate: Vec<f64>,
    incumbent: Vec<f64>,
    /// Simplex pivots accumulated across every solve routed through this
    /// workspace via [`BranchBoundSolver::solve`] — the per-run warm-start
    /// work a caller (e.g. the epoch re-placement engine) can surface.
    accumulated_pivots: usize,
    /// Factorization work accumulated across every solve routed through
    /// [`BranchBoundSolver::solve`]: refactorization counts sum, the peak
    /// eta length is the running maximum, and the fill-in ratio tracks the
    /// most recent solve that actually factorized.
    accumulated_factor: FactorStats,
    /// Pricing-ladder counters accumulated across every solve routed
    /// through [`BranchBoundSolver::solve`].
    accumulated_pricing: PricingStats,
    /// Column-generation counters accumulated across every
    /// decomposition-path solve routed through [`BranchBoundSolver::solve`]
    /// (all zero when every solve took the monolithic path).
    accumulated_decomp: DecompStats,
    /// Variable/row counts of the most recent model solved through this
    /// workspace (the raw model, before presolve or decomposition).
    last_dims: (usize, usize),
    /// Scratch state of the Dantzig–Wolfe decomposition path (restricted
    /// master, activation flags, node arena) — persistent for the same
    /// warm-restart reasons as the monolithic fields above.
    decomp: DecompState,
    /// Memoized result of the previous search, returned verbatim (with
    /// zero pivots, since no simplex work runs) when the next model is
    /// bit-identical — matrix, right-hand sides, bounds *and* costs — and
    /// the solver configuration is unchanged.  This is what makes a
    /// same-model re-solve an exact fixed point even on degenerate models
    /// with tied optimal vertices, where replaying the search from a
    /// (numerically different) eta-file state could land on another tie.
    last_solution: Option<MilpSolution>,
    last_max_nodes: usize,
    last_tolerance: f64,
}

impl MilpWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops any resident basis so the next solve cold-starts (buffers and
    /// their allocations are kept).  Callers that interleave solves of
    /// *different* problem streams — e.g. a sweep worker moving to another
    /// cell — use this to keep results independent of which stream a
    /// worker happened to serve before.
    pub fn discard_warm_start(&mut self) {
        self.loaded = false;
        self.last_solution = None;
        self.decomp.discard_warm_start();
    }

    /// Applies a node's bound diffs (the chain of branching decisions up to
    /// the root) onto the simplex workspace, undoing the previous node's
    /// diffs first.  O(depth) and allocation-free.
    fn apply_bounds(&mut self, node: u32) {
        for &v in &self.touched {
            self.simplex.reset_var_bounds(&self.prep, v as usize);
        }
        self.touched.clear();
        let mut cur = node;
        loop {
            let rec = self.nodes[cur as usize];
            if rec.var != NO_VAR {
                self.simplex
                    .set_var_bounds(rec.var as usize, rec.fixed, rec.fixed);
                self.touched.push(rec.var);
            }
            if rec.parent == NO_VAR {
                break;
            }
            cur = rec.parent;
        }
    }
}

/// Branch-and-bound solver configuration plus its reusable workspace.
#[derive(Debug)]
pub struct BranchBoundSolver {
    /// LP relaxation solver.
    pub lp: SimplexSolver,
    /// Maximum number of nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
    /// Models with at least this many variables run the [`presolve`] pass
    /// before the search; smaller models (the warm-restarted epoch and
    /// migration re-solve streams) go straight to the simplex so their
    /// resident-basis warm starts survive byte-for-byte.
    pub presolve_min_vars: usize,
    /// Models with at least this many variables are tried on the
    /// Dantzig–Wolfe decomposition path ([`crate::decomp`]) first: if the
    /// model has the assignment-with-activation block structure the
    /// column-generation master solves it with far fewer rows, otherwise
    /// the solve falls through to presolve + monolithic search.  Set to
    /// `usize::MAX` to force the monolithic path, `0` to force
    /// decomposition onto any detectable model (bench overrides).
    pub decomp_min_vars: usize,
    /// Scratch arena reused across nodes and across successive solves.
    workspace: Mutex<MilpWorkspace>,
}

/// Default [`BranchBoundSolver::presolve_min_vars`]: comfortably above the
/// exact-path placement models (`IncrementalPlacer` caps those at ~46
/// variables) so only the large cold instances pay for — and profit from —
/// the reductions.
pub const PRESOLVE_MIN_VARS: usize = 256;

/// Default [`BranchBoundSolver::decomp_min_vars`]: the same threshold as
/// presolve — below it the linking rows are few enough that the monolithic
/// warm-restart machinery wins; at or above it the row count is dominated
/// by `x ≤ y` links the decomposition master drops entirely.
pub const DECOMP_MIN_VARS: usize = 256;

impl Default for BranchBoundSolver {
    fn default() -> Self {
        Self {
            lp: SimplexSolver::new(),
            max_nodes: 50_000,
            tolerance: 1e-6,
            presolve_min_vars: PRESOLVE_MIN_VARS,
            decomp_min_vars: DECOMP_MIN_VARS,
            workspace: Mutex::new(MilpWorkspace::new()),
        }
    }
}

impl Clone for BranchBoundSolver {
    /// Clones the configuration; the clone gets its own fresh workspace.
    fn clone(&self) -> Self {
        Self {
            lp: self.lp.clone(),
            max_nodes: self.max_nodes,
            tolerance: self.tolerance,
            presolve_min_vars: self.presolve_min_vars,
            decomp_min_vars: self.decomp_min_vars,
            workspace: Mutex::new(MilpWorkspace::new()),
        }
    }
}

impl BranchBoundSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with a node limit (anytime behaviour).
    pub fn with_node_limit(max_nodes: usize) -> Self {
        Self {
            max_nodes,
            ..Self::default()
        }
    }

    pub(crate) fn most_fractional_binary(
        &self,
        binaries: &[usize],
        values: &[f64],
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for &vi in binaries {
            let val = values[vi];
            let frac = (val - val.round()).abs();
            if frac > self.tolerance {
                let distance_to_half = (val - 0.5).abs();
                match best {
                    Some((_, d)) if d <= distance_to_half => {}
                    _ => best = Some((vi, distance_to_half)),
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Drops the internal workspace's resident basis so the next solve
    /// cold-starts from a canonical state (allocations are kept).
    pub fn discard_warm_start(&self) {
        self.workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .discard_warm_start();
    }

    /// Solves the MILP to optimality (or best effort within the node
    /// limit), reusing the solver's internal workspace.
    pub fn solve(&self, model: &Model) -> MilpSolution {
        let mut ws = self
            .workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let solution = self.solve_with_workspace(model, &mut ws);
        ws.accumulated_pivots += solution.pivots;
        ws.accumulated_factor.refactorizations += solution.factor.refactorizations;
        ws.accumulated_factor.peak_eta_len = ws
            .accumulated_factor
            .peak_eta_len
            .max(solution.factor.peak_eta_len);
        if solution.factor.fill_in_ratio > 0.0 {
            ws.accumulated_factor.fill_in_ratio = solution.factor.fill_in_ratio;
        }
        ws.accumulated_pricing.devex_resets += solution.pricing.devex_resets;
        ws.accumulated_pricing.bland_activations += solution.pricing.bland_activations;
        if let Some(decomp) = solution.decomp {
            ws.accumulated_decomp.columns_generated += decomp.columns_generated;
            ws.accumulated_decomp.pricing_rounds += decomp.pricing_rounds;
            ws.accumulated_decomp.master_pivots += decomp.master_pivots;
        }
        ws.last_dims = (model.num_vars(), model.num_constraints());
        solution
    }

    /// Total simplex pivots across every [`Self::solve`] call on this
    /// solver's internal workspace.  Reading the counter before and after a
    /// stream of placements gives the per-run pivot count — e.g. the
    /// epoch-to-epoch warm-restart work of a year-long simulation.
    /// (Callers driving `solve_with_workspace` directly track their own
    /// counts from [`MilpSolution::pivots`].)
    pub fn accumulated_pivots(&self) -> usize {
        self.workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .accumulated_pivots
    }

    /// Factorization statistics accumulated across every [`Self::solve`]
    /// call on this solver's internal workspace (refactorizations sum, peak
    /// eta length is the running maximum, fill-in ratio is the most recent
    /// solve that factorized).
    pub fn accumulated_factor_stats(&self) -> FactorStats {
        self.workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .accumulated_factor
    }

    /// Pricing-ladder statistics accumulated across every [`Self::solve`]
    /// call on this solver's internal workspace.
    pub fn accumulated_pricing_stats(&self) -> PricingStats {
        self.workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .accumulated_pricing
    }

    /// Column-generation statistics accumulated across every [`Self::solve`]
    /// call on this solver's internal workspace (all zero when every solve
    /// took the monolithic path).
    pub fn accumulated_decomp_stats(&self) -> DecompStats {
        self.workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .accumulated_decomp
    }

    /// `(variables, rows)` of the most recent model solved through
    /// [`Self::solve`] — the raw model, before presolve or decomposition.
    pub fn last_model_dims(&self) -> (usize, usize) {
        self.workspace
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .last_dims
    }

    /// Solves the MILP in a caller-provided workspace (for callers that
    /// manage their own scratch arenas or want to avoid the internal lock).
    ///
    /// When the model has the same constraint matrix, right-hand sides and
    /// bounds as the previous solve, the resident simplex basis is reused:
    /// identical costs warm-start the root through the dual simplex (often
    /// zero pivots), changed costs restart primal phase-2 from the old
    /// optimum — the repeated re-optimization pattern of a placement
    /// service re-solving as carbon intensities shift epoch to epoch.
    pub fn solve_with_workspace(&self, model: &Model, ws: &mut MilpWorkspace) -> MilpSolution {
        // The decomposition path is checked on the *raw* model, before
        // presolve: the structure detection wants the assignment rows and
        // `x ≤ y` links exactly as the placement builder emitted them, and
        // the master performs its own (cheaper) reduction by dropping the
        // linking rows outright.
        if model.num_vars() >= self.decomp_min_vars {
            if let Some(structure) = BlockStructure::detect(model) {
                return solve_decomposed(self, model, &structure, &mut ws.decomp);
            }
        }
        if model.num_vars() < self.presolve_min_vars {
            return self.search(model, ws);
        }
        match presolve(model) {
            PresolveOutcome::Infeasible => MilpSolution {
                outcome: MilpOutcome::Infeasible,
                objective: f64::INFINITY,
                values: vec![],
                nodes: 0,
                pivots: 0,
                factor: FactorStats::default(),
                pricing: PricingStats::default(),
                decomp: None,
            },
            PresolveOutcome::Reduced(pm) => {
                let mut solution = self.search(&pm.model, ws);
                if solution.has_solution() {
                    solution.values = pm.postsolve(&solution.values);
                    solution.objective = pm.full_objective(solution.objective);
                }
                solution
            }
        }
    }

    /// The branch-and-bound search itself, on a model that has already been
    /// presolved (or is small enough to skip presolve).
    fn search(&self, model: &Model, ws: &mut MilpWorkspace) -> MilpSolution {
        if ws.loaded && ws.prep.matches_structure(model) {
            if ws.prep.refresh_costs(model) {
                ws.simplex.invalidate_duals();
                ws.last_solution = None;
            } else if ws.last_max_nodes == self.max_nodes && ws.last_tolerance == self.tolerance {
                // Bit-identical model and configuration: the previous
                // result is still the answer, and no simplex work is
                // needed to reproduce it.
                if let Some(cached) = &ws.last_solution {
                    let mut solution = cached.clone();
                    solution.pivots = 0;
                    solution.factor = FactorStats::default();
                    solution.pricing = PricingStats::default();
                    return solution;
                }
            }
            // Undo the previous search's branching diffs so the root sees
            // natural bounds again.
            for &v in &ws.touched {
                ws.simplex.reset_var_bounds(&ws.prep, v as usize);
            }
        } else {
            ws.prep.load(model);
            ws.simplex.reset(&ws.prep);
            ws.loaded = true;
            ws.last_solution = None;
        }
        ws.simplex.reset_factor_stats();
        ws.nodes.clear();
        ws.open.clear();
        ws.touched.clear();
        ws.binaries.clear();
        ws.binaries
            .extend(model.binary_vars().iter().map(|v| v.index()));
        ws.incumbent.clear();

        ws.nodes.push(NodeRec {
            parent: NO_VAR,
            var: NO_VAR,
            fixed: 0.0,
        });
        ws.open.push(OpenNode {
            bound: f64::NEG_INFINITY,
            seq: 0,
            node: 0,
        });
        let mut seq = 1u32;

        let mut have_incumbent = false;
        let mut best_obj = f64::INFINITY;
        let mut nodes = 0usize;
        let mut pivots = 0usize;
        let mut pricing = PricingStats::default();
        let mut exhausted = true;

        while let Some(open) = ws.open.pop() {
            if nodes >= self.max_nodes {
                exhausted = false;
                break;
            }
            // Best-first: once the lowest open bound cannot beat the
            // incumbent, no remaining node can — the whole tree is pruned.
            if have_incumbent && open.bound >= best_obj - self.tolerance {
                break;
            }
            nodes += 1;

            ws.apply_bounds(open.node);
            let outcome = self.lp.solve_workspace(&ws.prep, &mut ws.simplex);
            pivots += ws.simplex.last_pivots();
            pricing.absorb(&ws.simplex);
            match outcome {
                LpOutcome::Optimal => {}
                // Infeasible nodes are pruned; unbounded relaxations of a
                // bounded-binary problem can only come from unbounded
                // continuous variables and make the node unusable, as does
                // an iteration limit.
                _ => continue,
            }
            let obj = ws.simplex.objective(&ws.prep);
            if open.node == 0 {
                // Remember the root-optimal basis; the search re-installs
                // it after exploring the tree so a repeated solve of the
                // same model replays identically (see below).
                ws.simplex.snapshot_basis();
            }
            if have_incumbent && obj >= best_obj - self.tolerance {
                continue;
            }

            match self.most_fractional_binary(&ws.binaries, ws.simplex.values()) {
                None => {
                    // Integer feasible: round binaries exactly and keep if
                    // improving (buffers reused, no per-incumbent clone).
                    ws.candidate.clear();
                    ws.candidate.extend_from_slice(ws.simplex.values());
                    for &b in &ws.binaries {
                        ws.candidate[b] = ws.candidate[b].round();
                    }
                    if model.is_feasible(&ws.candidate, 1e-5) {
                        let candidate_obj = model.objective_value(&ws.candidate);
                        if !have_incumbent || candidate_obj < best_obj - self.tolerance {
                            have_incumbent = true;
                            best_obj = candidate_obj;
                            ws.incumbent.clear();
                            ws.incumbent.extend_from_slice(&ws.candidate);
                        }
                    }
                }
                Some(branch_var) => {
                    // Two children, each a one-entry diff against this node.
                    for fixed in [1.0, 0.0] {
                        let idx = ws.nodes.len() as u32;
                        ws.nodes.push(NodeRec {
                            parent: open.node,
                            var: branch_var as u32,
                            fixed,
                        });
                        ws.open.push(OpenNode {
                            bound: obj,
                            seq,
                            node: idx,
                        });
                        seq += 1;
                    }
                }
            }
        }

        // Leave the workspace resting on the *root-optimal* basis rather
        // than whichever node the search happened to process last: undo the
        // remaining branching diffs and re-install the snapshot taken when
        // the root was solved.  A repeated solve of the same model then
        // warm-restarts from an already optimal basis (zero pivots, same
        // vertex) and replays the search identically — the re-solve fixed
        // point the warm-start contract promises even on degenerate models
        // with tied optima.
        if nodes > 1 {
            for &v in &ws.touched {
                ws.simplex.reset_var_bounds(&ws.prep, v as usize);
            }
            ws.touched.clear();
            ws.simplex.restore_basis(&ws.prep);
        }

        let factor = FactorStats {
            refactorizations: ws.simplex.refactor_count(),
            peak_eta_len: ws.simplex.peak_eta_len(),
            fill_in_ratio: ws.simplex.fill_in_ratio(),
        };
        let solution = if have_incumbent {
            MilpSolution {
                outcome: if exhausted {
                    MilpOutcome::Optimal
                } else {
                    MilpOutcome::Feasible
                },
                objective: best_obj,
                values: ws.incumbent.clone(),
                nodes,
                pivots,
                factor,
                pricing,
                decomp: None,
            }
        } else {
            MilpSolution {
                outcome: if exhausted {
                    MilpOutcome::Infeasible
                } else {
                    MilpOutcome::NodeLimit
                },
                objective: f64::INFINITY,
                values: vec![],
                nodes,
                pivots,
                factor,
                pricing,
                decomp: None,
            }
        };
        ws.last_solution = Some(solution.clone());
        ws.last_max_nodes = self.max_nodes;
        ws.last_tolerance = self.tolerance;
        solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Comparison, LinearExpr, Model};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= 8  (as minimization)
        // best: a + c = 14 (weight 8); a+b = 16 weight 9 infeasible -> optimum a,c.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective_term(a, -10.0);
        m.set_objective_term(b, -6.0);
        m.set_objective_term(c, -4.0);
        m.add_constraint(
            LinearExpr::new().with(a, 5.0).with(b, 4.0).with(c, 3.0),
            Comparison::LessEq,
            8.0,
            "w",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        assert!(approx(sol.objective, -14.0), "obj {}", sol.objective);
        assert!(approx(sol.values[a.index()], 1.0));
        assert!(approx(sol.values[b.index()], 0.0));
        assert!(approx(sol.values[c.index()], 1.0));
    }

    #[test]
    fn assignment_with_capacity_is_exact() {
        // 3 apps, 2 servers; server capacity 2 apps; costs force splitting.
        let costs = [[1.0, 10.0], [1.0, 10.0], [1.0, 10.0]];
        let mut m = Model::new();
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for &cost in &costs[i] {
                let v = m.add_binary();
                m.set_objective_term(v, cost);
                x[i].push(v);
            }
            let expr = LinearExpr::new().with(x[i][0], 1.0).with(x[i][1], 1.0);
            m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
        }
        for j in 0..2 {
            let mut expr = LinearExpr::new();
            for row in &x {
                expr.add(row[j], 1.0);
            }
            m.add_constraint(expr, Comparison::LessEq, 2.0, format!("cap{j}"));
        }
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        // Two apps on cheap server (cost 1 each) + one forced to server 2 (10).
        assert!(approx(sol.objective, 12.0), "obj {}", sol.objective);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn infeasible_milp_detected() {
        // Two apps must each be assigned but single server capacity is 1.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.add_constraint(LinearExpr::new().with(a, 1.0), Comparison::Equal, 1.0, "a1");
        m.add_constraint(LinearExpr::new().with(b, 1.0), Comparison::Equal, 1.0, "a2");
        m.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 1.0),
            Comparison::LessEq,
            1.0,
            "cap",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Infeasible);
        assert!(!sol.has_solution());
    }

    #[test]
    fn fixed_charge_activation_structure() {
        // One app can go to server A (op cost 10, activation 1) or server B
        // (op cost 1, activation 100).  y_j >= x_j links activation.
        let mut m = Model::new();
        let xa = m.add_binary();
        let xb = m.add_binary();
        let ya = m.add_binary();
        let yb = m.add_binary();
        m.set_objective_term(xa, 10.0);
        m.set_objective_term(xb, 1.0);
        m.set_objective_term(ya, 1.0);
        m.set_objective_term(yb, 100.0);
        m.add_constraint(
            LinearExpr::new().with(xa, 1.0).with(xb, 1.0),
            Comparison::Equal,
            1.0,
            "assign",
        );
        m.add_constraint(
            LinearExpr::new().with(xa, 1.0).with(ya, -1.0),
            Comparison::LessEq,
            0.0,
            "linkA",
        );
        m.add_constraint(
            LinearExpr::new().with(xb, 1.0).with(yb, -1.0),
            Comparison::LessEq,
            0.0,
            "linkB",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        // Choosing A costs 11, choosing B costs 101 -> A wins.
        assert!(approx(sol.objective, 11.0), "obj {}", sol.objective);
        assert!(approx(sol.values[xa.index()], 1.0));
    }

    #[test]
    fn node_limit_produces_anytime_result() {
        let mut m = Model::new();
        // A slightly larger knapsack to force branching.
        let vals = [12.0, 7.0, 11.0, 8.0, 9.0, 6.0, 7.0, 5.0];
        let weights = [4.0, 3.0, 5.0, 3.0, 4.0, 2.0, 3.0, 2.0];
        let vars: Vec<_> = (0..vals.len()).map(|_| m.add_binary()).collect();
        let mut cap = LinearExpr::new();
        for (i, v) in vars.iter().enumerate() {
            m.set_objective_term(*v, -vals[i]);
            cap.add(*v, weights[i]);
        }
        m.add_constraint(cap, Comparison::LessEq, 10.0, "w");
        let limited = BranchBoundSolver::with_node_limit(3).solve(&m);
        assert!(limited.nodes <= 3);
        let full = BranchBoundSolver::new().solve(&m);
        assert_eq!(full.outcome, MilpOutcome::Optimal);
        if limited.has_solution() {
            assert!(limited.objective >= full.objective - 1e-6);
        }
    }

    #[test]
    fn continuous_and_binary_mix() {
        // x in [0, 10], y binary, x + 2y >= 3 -> either y=1 (cost 5 + x=1) = 6,
        // or y=0 x=3 -> 3.  Optimum 3.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        let y = m.add_binary();
        m.set_objective_term(x, 1.0);
        m.set_objective_term(y, 5.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 2.0),
            Comparison::GreaterEq,
            3.0,
            "cover",
        );
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        assert!(approx(sol.objective, 3.0), "obj {}", sol.objective);
    }

    #[test]
    fn optimum_matches_exhaustive_enumeration_on_random_instances() {
        // Small random generalized-assignment instances; brute force vs B&B.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _case in 0..5 {
            let apps = 4;
            let servers = 3;
            let costs: Vec<Vec<f64>> = (0..apps)
                .map(|_| (0..servers).map(|_| rng.gen_range(1.0..20.0)).collect())
                .collect();
            let demand: Vec<f64> = (0..apps).map(|_| rng.gen_range(1.0..3.0)).collect();
            let capacity = 5.0;

            let mut m = Model::new();
            let mut x = vec![vec![]; apps];
            for i in 0..apps {
                for &cost in &costs[i] {
                    let v = m.add_binary();
                    m.set_objective_term(v, cost);
                    x[i].push(v);
                }
                let mut expr = LinearExpr::new();
                for &v in &x[i] {
                    expr.add(v, 1.0);
                }
                m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
            }
            for j in 0..servers {
                let mut expr = LinearExpr::new();
                for (row, &d) in x.iter().zip(demand.iter()) {
                    expr.add(row[j], d);
                }
                m.add_constraint(expr, Comparison::LessEq, capacity, format!("cap{j}"));
            }
            let sol = BranchBoundSolver::new().solve(&m);

            // Brute force over all server^apps assignments.
            let mut best = f64::INFINITY;
            for code in 0..servers.pow(apps as u32) {
                let mut c = code;
                let mut load = vec![0.0; servers];
                let mut cost = 0.0;
                for i in 0..apps {
                    let j = c % servers;
                    c /= servers;
                    load[j] += demand[i];
                    cost += costs[i][j];
                }
                if load.iter().all(|l| *l <= capacity + 1e-9) {
                    best = best.min(cost);
                }
            }
            assert_eq!(sol.outcome, MilpOutcome::Optimal);
            assert!(
                approx(sol.objective, best),
                "bb {} brute {}",
                sol.objective,
                best
            );
        }
    }

    #[test]
    fn repeated_solves_reuse_the_workspace_and_agree() {
        // The same solver instance must produce identical results across
        // models of different shapes (the workspace is re-seeded per solve).
        let solver = BranchBoundSolver::new();
        let mut knapsack = Model::new();
        let a = knapsack.add_binary();
        let b = knapsack.add_binary();
        knapsack.set_objective_term(a, -3.0);
        knapsack.set_objective_term(b, -4.0);
        knapsack.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 2.0),
            Comparison::LessEq,
            2.0,
            "cap",
        );
        let first = solver.solve(&knapsack);

        let mut other = Model::new();
        let p = other.add_binary();
        let q = other.add_binary();
        let r = other.add_binary();
        other.set_objective_term(p, -1.0);
        other.set_objective_term(q, -2.0);
        other.set_objective_term(r, -3.0);
        other.add_constraint(
            LinearExpr::new().with(p, 1.0).with(q, 1.0).with(r, 1.0),
            Comparison::LessEq,
            2.0,
            "pick2",
        );
        let middle = solver.solve(&other);
        assert_eq!(middle.outcome, MilpOutcome::Optimal);
        assert!(approx(middle.objective, -5.0), "obj {}", middle.objective);

        // Back to the first model on the dirty workspace: identical result.
        let again = solver.solve(&knapsack);
        assert_eq!(first, again);
        // A fresh clone (fresh workspace) also agrees.
        let fresh = solver.clone().solve(&knapsack);
        assert_eq!(first, fresh);
    }

    #[test]
    fn pivot_statistics_are_reported() {
        let mut m = Model::new();
        let vals = [12.0, 7.0, 11.0, 8.0, 9.0];
        let weights = [4.0, 3.0, 5.0, 3.0, 4.0];
        let vars: Vec<_> = (0..vals.len()).map(|_| m.add_binary()).collect();
        let mut cap = LinearExpr::new();
        for (i, v) in vars.iter().enumerate() {
            m.set_objective_term(*v, -vals[i]);
            cap.add(*v, weights[i]);
        }
        m.add_constraint(cap, Comparison::LessEq, 9.0, "w");
        let sol = BranchBoundSolver::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        assert!(sol.nodes >= 1);
        assert!(sol.pivots >= 1, "expected at least one simplex pivot");
    }

    #[test]
    fn accumulated_pivots_track_solves_on_the_internal_workspace() {
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.set_objective_term(a, -3.0);
        m.set_objective_term(b, -2.0);
        m.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 1.0),
            Comparison::LessEq,
            1.0,
            "pick-one",
        );
        let solver = BranchBoundSolver::new();
        assert_eq!(solver.accumulated_pivots(), 0);
        let first = solver.solve(&m);
        assert_eq!(solver.accumulated_pivots(), first.pivots);
        let second = solver.solve(&m);
        assert_eq!(
            solver.accumulated_pivots(),
            first.pivots + second.pivots,
            "counter must accumulate across solves"
        );
        // A clone starts with a fresh workspace and a fresh counter.
        assert_eq!(solver.clone().accumulated_pivots(), 0);
    }
}
