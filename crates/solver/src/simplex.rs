//! A bounded-variable revised simplex solver for LP relaxations.
//!
//! The solver handles the models produced by [`crate::model::Model`]: a
//! linear minimization objective over bounded continuous (and relaxed
//! binary) variables with `<=`, `>=` and `=` constraints.  Unlike the
//! retained [`crate::reference::DenseSimplexSolver`] oracle it
//!
//! * treats variable bounds `l <= x <= u` **natively** in the basis logic
//!   (nonbasic variables rest at their lower *or* upper bound) instead of
//!   materializing every finite upper bound as an extra constraint row,
//! * reaches feasibility with a proper **phase-1** (artificial variables
//!   priced at unit cost, then pinned to zero) instead of the numerically
//!   fragile Big-M penalty,
//! * keeps the basis as a **sparse LU factorization** ([`crate::factor`]):
//!   Markowitz-ordered refactorization plus product-form eta updates per
//!   pivot, so FTRAN/BTRAN cost `O(nnz)` instead of the `O(m^2)` of the
//!   dense basis inverse this solver used to carry,
//! * prices entering columns with **devex** reference weights (falling
//!   back to Bland's rule after long degenerate streaks, preserving the
//!   anti-cycling guarantee), and
//! * supports **warm restarts** via the bounded **dual simplex**: any
//!   optimal basis stays dual feasible under pure bound changes (reduced
//!   costs do not depend on bounds), which is exactly what branch-and-bound
//!   needs after fixing a binary variable.
//!
//! All scratch state lives in a [`SimplexWorkspace`] so repeated solves —
//! thousands of branch-and-bound nodes, successive placement calls — are
//! allocation-free after the first.

use crate::factor::BasisFactor;
use crate::model::{Comparison, Model, VarKind};

/// The status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was exceeded.
    IterationLimit,
}

/// The result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve status.
    pub outcome: LpOutcome,
    /// Objective value (meaningful only when `outcome == Optimal`).
    pub objective: f64,
    /// Variable values in model order (meaningful only when optimal).
    pub values: Vec<f64>,
    /// Number of simplex pivots performed.
    pub iterations: usize,
}

/// Nonbasic-at-lower-bound marker.
const AT_LOWER: u8 = 0;
/// Nonbasic-at-upper-bound marker.
const AT_UPPER: u8 = 1;
/// Basic marker.
const BASIC: u8 = 2;
/// Free (both bounds infinite) nonbasic marker.
const FREE: u8 = 3;

/// Hard zero threshold for matrix entries and pivot elements.
const EPS: f64 = 1e-9;
/// Phase-1 objective threshold below which the problem counts as feasible.
const FEAS_TOL: f64 = 1e-6;
/// Devex weight ceiling; past this the reference framework has drifted so
/// far that the weights are reset to unity.
const DEVEX_RESET: f64 = 1e12;

/// Column-wise (CSC) form of a model plus its natural bounds and costs,
/// built once per model and shared by every node of a branch-and-bound
/// search.  Column layout: `0..n` structural variables, `n..n+m` slack
/// variables (one per row, turning every constraint into an equality), and
/// `n+m..n+2m` phase-1 artificial slots (a signed unit column, activated on
/// demand by the cold start).
#[derive(Debug, Clone, Default)]
pub struct Prepared {
    /// Structural variable count.
    pub n: usize,
    /// Row count.
    pub m: usize,
    col_ptr: Vec<usize>,
    col_row: Vec<usize>,
    col_val: Vec<f64>,
    /// Objective coefficients per column (auxiliary columns cost zero).
    cost: Vec<f64>,
    /// Natural lower bounds per column.
    lower: Vec<f64>,
    /// Natural upper bounds per column.
    upper: Vec<f64>,
    rhs: Vec<f64>,
    /// Scratch cursors for structure comparison (reused, never observable).
    cursor_scratch: Vec<usize>,
    /// Scratch accumulator for cost refresh (reused, never observable).
    cost_scratch: Vec<f64>,
}

impl Prepared {
    /// Total number of columns including slack and artificial slots.
    pub fn ncols(&self) -> usize {
        self.n + 2 * self.m
    }

    /// (Re)builds the prepared form from a model, reusing allocations.
    pub fn load(&mut self, model: &Model) {
        let n = model.num_vars();
        let m = model.num_constraints();
        self.n = n;
        self.m = m;
        let ncols = n + 2 * m;

        self.cost.clear();
        self.cost.resize(ncols, 0.0);
        for (v, c) in &model.objective().terms {
            self.cost[v.index()] += *c;
        }

        self.lower.clear();
        self.upper.clear();
        self.lower.resize(ncols, 0.0);
        self.upper.resize(ncols, 0.0);
        for (j, kind) in model.vars().iter().enumerate() {
            let (lo, hi) = kind.bounds();
            self.lower[j] = lo;
            self.upper[j] = hi;
        }
        self.rhs.clear();
        for (r, c) in model.constraints().iter().enumerate() {
            self.rhs.push(c.rhs);
            let (sl, su) = match c.cmp {
                Comparison::LessEq => (0.0, f64::INFINITY),
                Comparison::GreaterEq => (f64::NEG_INFINITY, 0.0),
                Comparison::Equal => (0.0, 0.0),
            };
            self.lower[n + r] = sl;
            self.upper[n + r] = su;
            // Artificial slots stay pinned at [0, 0] until activated.
            self.lower[n + m + r] = 0.0;
            self.upper[n + m + r] = 0.0;
        }

        // Column-wise matrix over structural + slack columns.
        self.col_ptr.clear();
        self.col_row.clear();
        self.col_val.clear();
        let mut counts = vec![0usize; n + m];
        for c in model.constraints() {
            for (v, _) in &c.expr.terms {
                counts[v.index()] += 1;
            }
        }
        for count in counts.iter_mut().skip(n) {
            *count = 1;
        }
        self.col_ptr.resize(n + m + 1, 0);
        for (j, &count) in counts.iter().enumerate() {
            self.col_ptr[j + 1] = self.col_ptr[j] + count;
        }
        let nnz = self.col_ptr[n + m];
        self.col_row.resize(nnz, 0);
        self.col_val.resize(nnz, 0.0);
        let mut cursor: Vec<usize> = self.col_ptr[..n + m].to_vec();
        for (r, c) in model.constraints().iter().enumerate() {
            for (v, a) in &c.expr.terms {
                let p = cursor[v.index()];
                self.col_row[p] = r;
                self.col_val[p] = *a;
                cursor[v.index()] += 1;
            }
        }
        for r in 0..m {
            let p = cursor[n + r];
            self.col_row[p] = r;
            self.col_val[p] = 1.0;
            cursor[n + r] += 1;
        }
    }

    /// Builds the prepared form of a model.
    pub fn build(model: &Model) -> Self {
        let mut prep = Self::default();
        prep.load(model);
        prep
    }

    /// Whether `model` has the same constraint matrix, right-hand sides and
    /// natural bounds as this prepared form (costs may differ).  When true,
    /// a resident simplex basis remains structurally valid and the solver
    /// can restart from it instead of cold-starting.  (`&mut self` only for
    /// a scratch cursor buffer; the prepared form itself is not changed.)
    pub fn matches_structure(&mut self, model: &Model) -> bool {
        if self.n != model.num_vars() || self.m != model.num_constraints() {
            return false;
        }
        for (j, kind) in model.vars().iter().enumerate() {
            let (lo, hi) = kind.bounds();
            if self.lower[j] != lo || self.upper[j] != hi {
                return false;
            }
        }
        // Compare the sparse matrix column-by-column via the same fill
        // order `load` uses (constraints in order, terms in order).
        self.cursor_scratch.clear();
        self.cursor_scratch
            .extend_from_slice(&self.col_ptr[..self.n]);
        let mut cursor = std::mem::take(&mut self.cursor_scratch);
        let mut same = true;
        'rows: for (r, c) in model.constraints().iter().enumerate() {
            let (sl, su) = match c.cmp {
                Comparison::LessEq => (0.0, f64::INFINITY),
                Comparison::GreaterEq => (f64::NEG_INFINITY, 0.0),
                Comparison::Equal => (0.0, 0.0),
            };
            if self.rhs[r] != c.rhs || self.lower[self.n + r] != sl || self.upper[self.n + r] != su
            {
                same = false;
                break 'rows;
            }
            for (v, a) in &c.expr.terms {
                let j = v.index();
                let p = cursor[j];
                if p >= self.col_ptr[j + 1] || self.col_row[p] != r || self.col_val[p] != *a {
                    same = false;
                    break 'rows;
                }
                cursor[j] += 1;
            }
        }
        // Every structural column must be fully consumed (no leftover terms).
        same = same && (0..self.n).all(|j| cursor[j] == self.col_ptr[j + 1]);
        self.cursor_scratch = cursor;
        same
    }

    /// Replaces the cost vector with `model`'s objective, returning whether
    /// any coefficient changed.  Only valid after [`Self::matches_structure`]
    /// confirmed the shapes agree.
    pub fn refresh_costs(&mut self, model: &Model) -> bool {
        debug_assert_eq!(self.n, model.num_vars());
        self.cost_scratch.clear();
        self.cost_scratch.resize(self.n, 0.0);
        let mut fresh = std::mem::take(&mut self.cost_scratch);
        for (v, c) in &model.objective().terms {
            fresh[v.index()] += *c;
        }
        let mut changed = false;
        for (j, &new_cost) in fresh.iter().enumerate() {
            if self.cost[j] != new_cost {
                self.cost[j] = new_cost;
                changed = true;
            }
        }
        self.cost_scratch = fresh;
        changed
    }

    /// Objective coefficient of a structural column (used by the
    /// column-generation pricing pass in [`crate::decomp`]).
    pub(crate) fn col_cost(&self, j: usize) -> f64 {
        self.cost[j]
    }

    /// Sparse entries of a structural or slack column.
    pub(crate) fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.col_row[lo..hi]
            .iter()
            .copied()
            .zip(self.col_val[lo..hi].iter().copied())
    }
}

/// Reusable scratch state of the revised simplex: basis, sparse basis
/// factorization, effective bounds, values and pricing buffers.  One
/// workspace serves an entire branch-and-bound search (and successive
/// searches of same-shaped models) without reallocating.
#[derive(Debug, Clone, Default)]
pub struct SimplexWorkspace {
    n: usize,
    m: usize,
    /// Per-column state: `AT_LOWER`, `AT_UPPER`, `BASIC` or `FREE`.
    state: Vec<u8>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Sparse LU factorization of the basis plus the eta file of pivots
    /// applied since the last refactorization.
    factor: BasisFactor,
    /// Current value per column.
    x: Vec<f64>,
    /// Effective lower bounds (node-specific overrides applied here).
    lower: Vec<f64>,
    /// Effective upper bounds.
    upper: Vec<f64>,
    /// Effective costs (phase-1 unit costs or the real objective).
    cost: Vec<f64>,
    /// Sign of each activated artificial column.
    art_sign: Vec<f64>,
    /// Whether the artificial slot of a row has been activated.
    art_active: Vec<bool>,
    y: Vec<f64>,
    d: Vec<f64>,
    w: Vec<f64>,
    rowbuf: Vec<f64>,
    /// Slot-indexed BTRAN input scratch.
    slotbuf: Vec<f64>,
    /// Row `r` of the basis inverse (BTRAN of a unit vector), used by the
    /// dual ratio test, devex weight updates and artificial pinning.
    rho: Vec<f64>,
    /// Devex reference weights per column.
    devex: Vec<f64>,
    /// Basis-matrix assembly scratch for refactorization (CSC by slot).
    fac_ptr: Vec<usize>,
    fac_row: Vec<usize>,
    fac_val: Vec<f64>,
    /// Basis snapshot ([`Self::snapshot_basis`]) — the root-optimal resting
    /// state a branch-and-bound search re-installs after exploring its tree
    /// so same-model re-solves are exact fixed points.
    snap_state: Vec<u8>,
    snap_basis: Vec<usize>,
    snap_x: Vec<f64>,
    snap_art_sign: Vec<f64>,
    snap_art_active: Vec<bool>,
    snap_valid: bool,
    /// Whether the current basis is dual feasible w.r.t. the real costs,
    /// i.e. usable for a warm (dual simplex) restart.
    dual_ready: bool,
    /// Whether the resident point is primal feasible, i.e. usable for a
    /// primal (phase-2 only) restart after a pure cost change.
    primal_ready: bool,
    /// Whether an artificial phase-1 is in flight (widens pricing to the
    /// artificial block).
    phase1_active: bool,
    solve_pivots: usize,
    /// Devex reference-weight resets performed by the most recent solve
    /// (the weights drifted past [`DEVEX_RESET`] and were re-unified).
    solve_devex_resets: usize,
    /// Dantzig→Bland anti-cycling fallback activations of the most recent
    /// solve (one per degenerate streak that exceeded the Bland threshold).
    solve_bland_activations: usize,
    /// Refactorizations performed since [`Self::reset_factor_stats`].
    refactor_count: usize,
    /// Longest eta file seen since [`Self::reset_factor_stats`].
    peak_eta: usize,
    /// Fill-in ratio of the most recent factorization.
    fill_ratio: f64,
}

enum LoopEnd {
    Optimal,
    Unbounded,
    IterationLimit,
    Numerical,
}

enum DualEnd {
    Feasible,
    Infeasible,
    IterationLimit,
    Numerical,
}

impl SimplexWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the workspace for a prepared model and loads its natural
    /// bounds.  Invalidates any warm-start basis.
    pub fn reset(&mut self, prep: &Prepared) {
        self.n = prep.n;
        self.m = prep.m;
        let ncols = prep.ncols();
        self.state.clear();
        self.state.resize(ncols, AT_LOWER);
        self.basis.clear();
        self.basis.resize(prep.m, 0);
        self.factor.reset_identity(prep.m);
        self.x.clear();
        self.x.resize(ncols, 0.0);
        self.lower.clear();
        self.lower.extend_from_slice(&prep.lower);
        self.upper.clear();
        self.upper.extend_from_slice(&prep.upper);
        self.cost.clear();
        self.cost.resize(ncols, 0.0);
        self.art_sign.clear();
        self.art_sign.resize(prep.m, 1.0);
        self.art_active.clear();
        self.art_active.resize(prep.m, false);
        self.y.clear();
        self.y.resize(prep.m, 0.0);
        self.d.clear();
        self.d.resize(ncols, 0.0);
        self.w.clear();
        self.w.resize(prep.m, 0.0);
        self.rowbuf.clear();
        self.rowbuf.resize(prep.m, 0.0);
        self.slotbuf.clear();
        self.slotbuf.resize(prep.m, 0.0);
        self.rho.clear();
        self.rho.resize(prep.m, 0.0);
        self.devex.clear();
        self.devex.resize(ncols, 1.0);
        self.dual_ready = false;
        self.primal_ready = false;
        self.phase1_active = false;
        self.snap_valid = false;
        self.solve_pivots = 0;
        self.solve_devex_resets = 0;
        self.solve_bland_activations = 0;
        self.reset_factor_stats();
    }

    /// Records the resident basis — column states, basic set, values and
    /// artificial block — for a later [`Self::restore_basis`].
    pub fn snapshot_basis(&mut self) {
        self.snap_state.clear();
        self.snap_state.extend_from_slice(&self.state);
        self.snap_basis.clear();
        self.snap_basis.extend_from_slice(&self.basis);
        self.snap_x.clear();
        self.snap_x.extend_from_slice(&self.x);
        self.snap_art_sign.clear();
        self.snap_art_sign.extend_from_slice(&self.art_sign);
        self.snap_art_active.clear();
        self.snap_art_active.extend_from_slice(&self.art_active);
        self.snap_valid = true;
    }

    /// Re-installs the basis recorded by [`Self::snapshot_basis`] and marks
    /// the workspace warm-restart ready.  The caller must have restored the
    /// bounds that were effective at snapshot time.  Returns `false` (and
    /// leaves a clean slack basis behind) when there is no snapshot or the
    /// snapshot basis no longer factorizes.
    pub fn restore_basis(&mut self, prep: &Prepared) -> bool {
        if !self.snap_valid {
            return false;
        }
        self.state.copy_from_slice(&self.snap_state);
        self.basis.copy_from_slice(&self.snap_basis);
        self.x.copy_from_slice(&self.snap_x);
        self.art_sign.copy_from_slice(&self.snap_art_sign);
        self.art_active.copy_from_slice(&self.snap_art_active);
        self.phase1_active = false;
        if !self.refactorize(prep) {
            return false;
        }
        self.dual_ready = true;
        self.primal_ready = true;
        true
    }

    /// Installs a caller-constructed starting basis — `basic[r]` names the
    /// basic column of row `r` (a structural column or the row's slack
    /// `n + r`) — with every other column resting on its lower bound,
    /// except the columns in `at_upper`, which rest on their (finite)
    /// upper bound.  Marks the workspace primal-restart ready when the
    /// implied basic point is primal feasible, so the next
    /// [`Simplex::solve_workspace`] goes straight to phase-2 instead of
    /// the cold dual walk.  Returns `false` — leaving the workspace
    /// cold-start clean — when the basis is singular or the point is out
    /// of bounds.
    pub fn install_crash_basis(
        &mut self,
        prep: &Prepared,
        basic: &[usize],
        at_upper: &[usize],
    ) -> bool {
        let n = prep.n;
        let m = prep.m;
        if basic.len() != m || basic.iter().any(|&j| j >= n + m) {
            return false;
        }
        self.phase1_active = false;
        self.dual_ready = false;
        self.primal_ready = false;
        for j in 0..n {
            if self.lower[j].is_finite() {
                self.state[j] = AT_LOWER;
                self.x[j] = self.lower[j];
            } else if self.upper[j].is_finite() {
                self.state[j] = AT_UPPER;
                self.x[j] = self.upper[j];
            } else {
                self.state[j] = FREE;
                self.x[j] = 0.0;
            }
        }
        for &j in at_upper {
            if j < n && self.upper[j].is_finite() {
                self.state[j] = AT_UPPER;
                self.x[j] = self.upper[j];
            }
        }
        for r in 0..m {
            let s = n + r;
            if self.lower[s].is_finite() {
                self.state[s] = AT_LOWER;
                self.x[s] = self.lower[s];
            } else if self.upper[s].is_finite() {
                self.state[s] = AT_UPPER;
                self.x[s] = self.upper[s];
            } else {
                self.state[s] = FREE;
                self.x[s] = 0.0;
            }
            let a = n + m + r;
            self.state[a] = AT_LOWER;
            self.x[a] = 0.0;
            self.lower[a] = 0.0;
            self.upper[a] = 0.0;
            self.art_active[r] = false;
            self.art_sign[r] = 1.0;
        }
        for (r, &j) in basic.iter().enumerate() {
            self.basis[r] = j;
            self.state[j] = BASIC;
        }
        if !self.refactorize(prep) {
            self.install_slack_basis(prep);
            return false;
        }
        self.refresh_basics(prep);
        for i in 0..m {
            let b = self.basis[i];
            if self.x[b] < self.lower[b] - FEAS_TOL || self.x[b] > self.upper[b] + FEAS_TOL {
                self.install_slack_basis(prep);
                return false;
            }
        }
        self.devex.fill(1.0);
        self.primal_ready = true;
        true
    }

    /// Clears the per-solve factorization counters (refactorizations, peak
    /// eta length); called by the MILP driver at the start of each search.
    pub fn reset_factor_stats(&mut self) {
        self.refactor_count = 0;
        self.peak_eta = 0;
        self.fill_ratio = self.factor.fill_ratio();
    }

    /// Refactorizations performed since the last [`Self::reset_factor_stats`].
    pub fn refactor_count(&self) -> usize {
        self.refactor_count
    }

    /// Longest eta file seen since the last [`Self::reset_factor_stats`].
    pub fn peak_eta_len(&self) -> usize {
        self.peak_eta
    }

    /// Fill-in ratio (LU nonzeros over basis nonzeros) of the most recent
    /// factorization.
    pub fn fill_in_ratio(&self) -> f64 {
        self.fill_ratio
    }

    /// Restores a structural variable's natural bounds.  A nonbasic variable
    /// is re-rested onto whichever natural bound its current value sits on,
    /// so the resident point survives a bound relaxation unchanged (branch-
    /// and-bound only ever fixes binaries onto their natural bounds).
    pub fn reset_var_bounds(&mut self, prep: &Prepared, j: usize) {
        self.lower[j] = prep.lower[j];
        self.upper[j] = prep.upper[j];
        if self.state[j] == AT_LOWER || self.state[j] == AT_UPPER {
            if self.x[j] == self.upper[j] {
                self.state[j] = AT_UPPER;
            } else if self.x[j] == self.lower[j] {
                self.state[j] = AT_LOWER;
            } else {
                // Defensive: the value matches neither natural bound; rest
                // at a finite bound and give up primal reusability.
                if self.lower[j].is_finite() {
                    self.state[j] = AT_LOWER;
                    self.x[j] = self.lower[j];
                } else if self.upper[j].is_finite() {
                    self.state[j] = AT_UPPER;
                    self.x[j] = self.upper[j];
                } else {
                    self.state[j] = FREE;
                }
                self.primal_ready = false;
            }
        }
    }

    /// Invalidates the dual-feasibility marker (the objective changed); a
    /// primal restart may still be possible via `Self::primal_ready`.
    pub fn invalidate_duals(&mut self) {
        self.dual_ready = false;
    }

    /// Overrides a structural variable's bounds (branch-and-bound fixing).
    pub fn set_var_bounds(&mut self, j: usize, lower: f64, upper: f64) {
        self.lower[j] = lower;
        self.upper[j] = upper;
    }

    /// Current values of the structural variables.
    pub fn values(&self) -> &[f64] {
        &self.x[..self.n]
    }

    /// Objective value of the current point under the real costs.
    pub fn objective(&self, prep: &Prepared) -> f64 {
        (0..self.n).map(|j| prep.cost[j] * self.x[j]).sum()
    }

    /// Pivots performed by the most recent solve.
    pub fn last_pivots(&self) -> usize {
        self.solve_pivots
    }

    /// Devex reference-weight resets performed by the most recent solve.
    pub fn last_devex_resets(&self) -> usize {
        self.solve_devex_resets
    }

    /// Dantzig→Bland anti-cycling fallback activations of the most recent
    /// solve.
    pub fn last_bland_activations(&self) -> usize {
        self.solve_bland_activations
    }

    /// The dual values (simplex multipliers) `y = c_B B^-1` of the resident
    /// basis, indexed by row.  Valid after [`SimplexSolver::solve_workspace`]
    /// returned [`LpOutcome::Optimal`]; the column-generation master in
    /// [`crate::decomp`] prices candidate columns against these.
    pub fn duals(&self) -> &[f64] {
        &self.y
    }

    /// Whether the workspace holds a dual-feasible basis usable for a warm
    /// restart.
    pub fn warm_ready(&self) -> bool {
        self.dual_ready
    }

    /// Columns to price: structural + slack, plus the artificial block only
    /// while a phase-1 is in flight (pinned artificials can never re-enter).
    fn price_limit(&self, prep: &Prepared) -> usize {
        if self.phase1_active {
            prep.ncols()
        } else {
            prep.n + prep.m
        }
    }

    /// Recomputes every basic value from the nonbasic point: `x_B = B^-1 (b
    /// - A_N x_N)`.
    fn refresh_basics(&mut self, prep: &Prepared) {
        let m = self.m;
        let nm = prep.n + prep.m;
        self.rowbuf.copy_from_slice(&prep.rhs);
        for j in 0..prep.ncols() {
            if self.state[j] != BASIC && self.x[j] != 0.0 {
                let xj = self.x[j];
                if j < nm {
                    for k in prep.col_ptr[j]..prep.col_ptr[j + 1] {
                        self.rowbuf[prep.col_row[k]] -= prep.col_val[k] * xj;
                    }
                } else {
                    let r = j - nm;
                    self.rowbuf[r] -= self.art_sign[r] * xj;
                }
            }
        }
        self.factor.ftran(&mut self.rowbuf, &mut self.slotbuf);
        for i in 0..m {
            self.x[self.basis[i]] = self.slotbuf[i];
        }
    }

    /// Recomputes `y = c_B B^-1` (one BTRAN) and the reduced costs of every
    /// priceable column, with raw index loops over the CSC arrays (this
    /// runs once per pivot and dominates the per-iteration cost).
    fn compute_duals(&mut self, prep: &Prepared) {
        let m = self.m;
        let nm = prep.n + prep.m;
        for i in 0..m {
            self.slotbuf[i] = self.cost[self.basis[i]];
        }
        self.factor.btran(&mut self.slotbuf, &mut self.y);
        let limit = self.price_limit(prep);
        for j in 0..limit {
            let state = self.state[j];
            if state == BASIC {
                self.d[j] = 0.0;
            } else if state != FREE && self.upper[j] - self.lower[j] <= 0.0 {
                // A fixed nonbasic column can never enter, and both pricing
                // loops skip it before reading `d[j]`, so its reduced cost
                // is never needed.  Skipping the dot product here is what
                // makes a column-generation restricted master (most columns
                // pinned to `[0, 0]`) price in O(active) per pivot instead
                // of O(total).
                continue;
            } else {
                let mut v = self.cost[j];
                if j < nm {
                    for k in prep.col_ptr[j]..prep.col_ptr[j + 1] {
                        v -= self.y[prep.col_row[k]] * prep.col_val[k];
                    }
                } else {
                    let r = j - nm;
                    v -= self.y[r] * self.art_sign[r];
                }
                self.d[j] = v;
            }
        }
    }

    /// Computes `w = B^-1 A_j` into the workspace via one sparse FTRAN.
    fn compute_w(&mut self, prep: &Prepared, j: usize) {
        let nm = prep.n + prep.m;
        self.rowbuf.fill(0.0);
        if j < nm {
            for k in prep.col_ptr[j]..prep.col_ptr[j + 1] {
                self.rowbuf[prep.col_row[k]] = prep.col_val[k];
            }
        } else {
            let r = j - nm;
            self.rowbuf[r] = self.art_sign[r];
        }
        self.factor.ftran(&mut self.rowbuf, &mut self.w);
    }

    /// Computes row `row` of the basis inverse into `rho` via one sparse
    /// BTRAN of a unit vector (`rho^T = e_row^T B^-1`).
    fn compute_rho(&mut self, row: usize) {
        self.slotbuf.fill(0.0);
        self.slotbuf[row] = 1.0;
        self.factor.btran(&mut self.slotbuf, &mut self.rho);
    }

    /// Dot product of the resident `rho` row with column `j`.
    fn rho_dot_col(&self, prep: &Prepared, j: usize) -> f64 {
        let nm = prep.n + prep.m;
        if j < nm {
            let mut v = 0.0;
            for k in prep.col_ptr[j]..prep.col_ptr[j + 1] {
                v += self.rho[prep.col_row[k]] * prep.col_val[k];
            }
            v
        } else {
            let r = j - nm;
            self.rho[r] * self.art_sign[r]
        }
    }

    /// Product-form basis update after pivoting on row `r` with the current
    /// `w = B^-1 A_q` column: appends one eta vector to the factorization.
    fn pivot_update(&mut self, r: usize) {
        self.factor.update(r, &self.w);
        self.peak_eta = self.peak_eta.max(self.factor.eta_count());
    }

    /// Rebuilds the sparse basis factorization from scratch and refreshes
    /// the basic values.  Returns `false` when the basis matrix is
    /// numerically singular — in that case the workspace is reset to a
    /// clean slack basis (still structurally valid, cold-start ready)
    /// instead of being left with a half-rebuilt factorization.
    fn refactorize(&mut self, prep: &Prepared) -> bool {
        let m = self.m;
        self.refactor_count += 1;
        if m == 0 {
            return true;
        }
        // Assemble the basis matrix column-wise (slot-major CSC).
        self.fac_ptr.clear();
        self.fac_row.clear();
        self.fac_val.clear();
        self.fac_ptr.push(0);
        for k in 0..m {
            let b = self.basis[k];
            if b < prep.n + prep.m {
                for (r, a) in prep.col(b) {
                    self.fac_row.push(r);
                    self.fac_val.push(a);
                }
            } else {
                let r = b - prep.n - prep.m;
                self.fac_row.push(r);
                self.fac_val.push(self.art_sign[r]);
            }
            self.fac_ptr.push(self.fac_row.len());
        }
        let ok = self
            .factor
            .factorize(m, &self.fac_ptr, &self.fac_row, &self.fac_val);
        if !ok {
            // A singular basis can't be factored; restore the pristine
            // slack basis so the workspace stays usable (the caller falls
            // back to a cold start).
            self.install_slack_basis(prep);
            self.dual_ready = false;
            self.primal_ready = false;
            return false;
        }
        self.fill_ratio = self.factor.fill_ratio();
        self.refresh_basics(prep);
        true
    }

    /// Installs the slack basis with nonbasic structurals rested on the
    /// bound their cost prefers, artificials parked at zero and an identity
    /// factorization.  Returns whether the resulting basis is dual feasible
    /// (all reduced costs — which equal the raw costs at the slack basis —
    /// point away from their rest bound).
    fn install_slack_basis(&mut self, prep: &Prepared) -> bool {
        let n = prep.n;
        let m = prep.m;
        self.phase1_active = false;
        let mut dual_ok = true;
        for j in 0..n {
            let c = prep.cost[j];
            let lower_finite = self.lower[j].is_finite();
            let upper_finite = self.upper[j].is_finite();
            if lower_finite && (c >= 0.0 || !upper_finite) {
                self.state[j] = AT_LOWER;
                self.x[j] = self.lower[j];
                if c < 0.0 {
                    dual_ok = false;
                }
            } else if upper_finite {
                self.state[j] = AT_UPPER;
                self.x[j] = self.upper[j];
                if c > 0.0 {
                    dual_ok = false;
                }
            } else {
                self.state[j] = FREE;
                self.x[j] = 0.0;
                if c != 0.0 {
                    dual_ok = false;
                }
            }
        }
        // Slack basis; identity factorization; artificials parked at zero.
        for r in 0..m {
            self.basis[r] = n + r;
            self.state[n + r] = BASIC;
            let a = n + m + r;
            self.state[a] = AT_LOWER;
            self.x[a] = 0.0;
            self.lower[a] = 0.0;
            self.upper[a] = 0.0;
            self.art_active[r] = false;
            self.art_sign[r] = 1.0;
        }
        self.factor.reset_identity(m);
        self.devex.fill(1.0);
        self.refresh_basics(prep);
        dual_ok
    }
}

/// Bounded-variable revised simplex solver.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    /// Maximum number of pivots before giving up.
    pub max_iterations: usize,
    /// Numerical tolerance for pricing and feasibility tests.
    pub tolerance: f64,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            tolerance: 1e-7,
        }
    }
}

impl SimplexSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the prepared (column-wise) form of a model for repeated
    /// workspace solves.
    pub fn prepare(&self, model: &Model) -> Prepared {
        Prepared::build(model)
    }

    /// Solves the LP in the workspace's current bounds, warm-starting from
    /// the resident basis when possible: a **dual** restart when the basis
    /// is still dual feasible (bounds changed, costs unchanged — the
    /// branch-and-bound case), a **primal** restart when the resident point
    /// is still primal feasible (costs changed, bounds unchanged — the
    /// epoch-to-epoch re-optimization case), and a cold start otherwise.
    /// `ws.last_pivots()` reports the pivots performed.
    pub fn solve_workspace(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> LpOutcome {
        ws.solve_pivots = 0;
        ws.solve_devex_resets = 0;
        ws.solve_bland_activations = 0;
        // Re-reference the devex weights per solve: pricing must be a
        // deterministic function of (basis, costs), not of which solves the
        // workspace served before, or warm restarts could land on a
        // different degenerate-optimal vertex than a cold solve.
        ws.devex.fill(1.0);
        for j in 0..prep.ncols() {
            if ws.lower[j] > ws.upper[j] + self.tolerance {
                return LpOutcome::Infeasible;
            }
        }
        let outcome = if ws.dual_ready {
            match self.warm_solve(prep, ws) {
                Some(outcome) => outcome,
                None => self.cold_solve(prep, ws),
            }
        } else if ws.primal_ready {
            match self.primal_restart(prep, ws) {
                Some(outcome) => outcome,
                None => self.cold_solve(prep, ws),
            }
        } else {
            self.cold_solve(prep, ws)
        };
        ws.primal_ready = outcome == LpOutcome::Optimal;
        outcome
    }

    /// Primal (phase-2 only) restart from a resident primal-feasible basis
    /// after a cost change; `None` signals "fall back to cold".
    fn primal_restart(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> Option<LpOutcome> {
        // Snap nonbasics onto their rest bounds and recompute basics.
        for j in 0..prep.ncols() {
            match ws.state[j] {
                AT_LOWER => ws.x[j] = ws.lower[j],
                AT_UPPER => ws.x[j] = ws.upper[j],
                _ => {}
            }
        }
        ws.refresh_basics(prep);
        // The restart is only sound if the point really is feasible.
        for i in 0..ws.m {
            let b = ws.basis[i];
            if ws.x[b] < ws.lower[b] - FEAS_TOL || ws.x[b] > ws.upper[b] + FEAS_TOL {
                return None;
            }
        }
        match self.finish_phase2(prep, ws) {
            LpOutcome::IterationLimit => None,
            outcome => Some(outcome),
        }
    }

    /// Dual-simplex warm restart; `None` signals "fall back to cold".
    fn warm_solve(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> Option<LpOutcome> {
        ws.cost.copy_from_slice(&prep.cost);
        // Snap nonbasic variables onto their (possibly changed) bounds.
        for j in 0..prep.ncols() {
            match ws.state[j] {
                AT_LOWER => ws.x[j] = ws.lower[j],
                AT_UPPER => ws.x[j] = ws.upper[j],
                _ => {}
            }
        }
        ws.refresh_basics(prep);
        match self.dual_loop(prep, ws) {
            DualEnd::Feasible => {
                // The dual loop preserved dual feasibility, so the point is
                // optimal; one primal pass mops up any numerical drift.
                match self.primal_loop(prep, ws) {
                    LoopEnd::Optimal => {
                        ws.dual_ready = true;
                        Some(LpOutcome::Optimal)
                    }
                    LoopEnd::Unbounded => {
                        ws.dual_ready = false;
                        Some(LpOutcome::Unbounded)
                    }
                    LoopEnd::IterationLimit => {
                        ws.dual_ready = false;
                        Some(LpOutcome::IterationLimit)
                    }
                    LoopEnd::Numerical => None,
                }
            }
            // Dual feasibility is retained on infeasible nodes, so the next
            // warm restart can still reuse this basis.
            DualEnd::Infeasible => Some(LpOutcome::Infeasible),
            DualEnd::IterationLimit | DualEnd::Numerical => None,
        }
    }

    /// Installs the slack basis (see
    /// [`SimplexWorkspace::install_slack_basis`]); returns whether the much
    /// less degenerate dual-simplex cold start is available.
    fn init_slack_basis(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> bool {
        ws.install_slack_basis(prep)
    }

    /// Phase-2: primal simplex under the real costs from a primal-feasible
    /// basis, mapping the loop end to an outcome.
    fn finish_phase2(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> LpOutcome {
        ws.cost.copy_from_slice(&prep.cost);
        match self.primal_loop(prep, ws) {
            LoopEnd::Optimal => {
                ws.dual_ready = true;
                LpOutcome::Optimal
            }
            LoopEnd::Unbounded => LpOutcome::Unbounded,
            LoopEnd::IterationLimit | LoopEnd::Numerical => LpOutcome::IterationLimit,
        }
    }

    /// Cold start.  Preferred path: rest every nonbasic on its cost-preferred
    /// bound, which makes the slack basis dual feasible whenever costs and
    /// bounds allow (always, for placement models — costs are carbon masses,
    /// hence nonnegative), and let the **dual simplex** walk straight to the
    /// optimum; the slack basis is hugely primal-degenerate on
    /// assignment-with-activation models, so a primal phase-1 crawls where
    /// the dual strides.  Fallback: artificial-variable phase-1 + phase-2
    /// primal for dual-infeasible starts (negative costs on unbounded
    /// columns, priced free variables) or numerical trouble.
    fn cold_solve(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> LpOutcome {
        let n = prep.n;
        let m = prep.m;
        ws.dual_ready = false;
        let dual_ok = self.init_slack_basis(prep, ws);
        if dual_ok {
            ws.cost.copy_from_slice(&prep.cost);
            match self.dual_loop(prep, ws) {
                DualEnd::Feasible => return self.finish_phase2(prep, ws),
                // The start was dual feasible and the dual loop preserves
                // it, so running out of entering columns proves primal
                // infeasibility.
                DualEnd::Infeasible => return LpOutcome::Infeasible,
                DualEnd::IterationLimit | DualEnd::Numerical => {
                    // Rebuild the pristine slack basis and fall back to the
                    // artificial phase-1.
                    self.init_slack_basis(prep, ws);
                }
            }
        }

        // Activate artificials for rows whose slack value is out of bounds.
        ws.cost.fill(0.0);
        let mut need_phase1 = false;
        for r in 0..m {
            let s = n + r;
            let v = ws.x[s];
            let (sl, su) = (ws.lower[s], ws.upper[s]);
            if v < sl - FEAS_TOL || v > su + FEAS_TOL {
                let snap = v.clamp(sl, su);
                let rem = v - snap;
                ws.x[s] = snap;
                ws.state[s] = if (snap - sl).abs() <= (snap - su).abs() {
                    AT_LOWER
                } else {
                    AT_UPPER
                };
                let a = n + m + r;
                ws.art_sign[r] = if rem >= 0.0 { 1.0 } else { -1.0 };
                ws.x[a] = rem.abs();
                ws.state[a] = BASIC;
                ws.basis[r] = a;
                ws.lower[a] = 0.0;
                ws.upper[a] = f64::INFINITY;
                ws.art_active[r] = true;
                ws.cost[a] = 1.0;
                need_phase1 = true;
            }
        }

        if need_phase1 {
            // The basis is now diagonal: slack columns at +1 and activated
            // artificial columns at `art_sign` — a negated artificial MUST
            // flip its factor diagonal, or every dual and pivot direction
            // of the phase-1 is corrupted.
            for r in 0..m {
                ws.rowbuf[r] = if ws.basis[r] >= n + m {
                    ws.art_sign[r]
                } else {
                    1.0
                };
            }
            ws.factor.reset_diagonal(&ws.rowbuf);
            ws.phase1_active = true;
            let end = self.primal_loop(prep, ws);
            ws.phase1_active = false;
            match end {
                LoopEnd::Optimal => {}
                LoopEnd::IterationLimit | LoopEnd::Numerical | LoopEnd::Unbounded => {
                    return LpOutcome::IterationLimit;
                }
            }
            // Any nonzero artificial value — of either sign — is residual
            // infeasibility; `abs` keeps a corrupted negative value from
            // silently cancelling the sum.
            let infeasibility: f64 = (0..m)
                .filter(|r| ws.art_active[*r])
                .map(|r| ws.x[n + m + r].abs())
                .sum();
            if infeasibility > FEAS_TOL {
                return LpOutcome::Infeasible;
            }
            self.pin_artificials(prep, ws);
        }

        self.finish_phase2(prep, ws)
    }

    /// Pins every activated artificial to `[0, 0]` after a successful
    /// phase-1, pivoting basic artificials out of the basis where possible.
    fn pin_artificials(&self, prep: &Prepared, ws: &mut SimplexWorkspace) {
        let n = prep.n;
        let m = prep.m;
        for r in 0..m {
            if !ws.art_active[r] {
                continue;
            }
            let a = n + m + r;
            ws.cost[a] = 0.0;
            ws.upper[a] = 0.0;
            if ws.state[a] != BASIC {
                ws.x[a] = 0.0;
                ws.state[a] = AT_LOWER;
            }
        }
        // Degenerate exchange: replace basic artificials (value ~0) with any
        // nonbasic non-artificial column that has a nonzero pivot element in
        // their row; rows with no such column are redundant and keep the
        // artificial basic at zero harmlessly.
        for row in 0..m {
            let b = ws.basis[row];
            if b < n + m {
                continue;
            }
            ws.compute_rho(row);
            let mut entering = None;
            for j in 0..n + m {
                if ws.state[j] == BASIC {
                    continue;
                }
                if ws.rho_dot_col(prep, j).abs() > 1e-7 {
                    entering = Some(j);
                    break;
                }
            }
            if let Some(j) = entering {
                ws.compute_w(prep, j);
                let art = ws.basis[row];
                ws.x[art] = 0.0;
                ws.state[art] = AT_LOWER;
                ws.basis[row] = j;
                ws.state[j] = BASIC;
                ws.pivot_update(row);
            }
        }
        ws.refresh_basics(prep);
    }

    /// Primal bounded simplex to optimality under the workspace's current
    /// costs, from a primal-feasible basis.
    fn primal_loop(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> LoopEnd {
        let n = prep.n;
        let m = prep.m;
        let tol = self.tolerance;
        let bland_after = 2 * (prep.ncols() + m) + 64;
        let mut degenerate = 0usize;
        loop {
            if ws.solve_pivots >= self.max_iterations {
                return LoopEnd::IterationLimit;
            }
            ws.compute_duals(prep);
            // Entering column: devex pricing (largest d^2 / weight), with
            // Bland's rule after a long degenerate streak to guarantee
            // termination.
            let use_bland = degenerate > bland_after;
            if use_bland && degenerate == bland_after + 1 {
                // First pricing pass of this degenerate streak under Bland's
                // rule: count one anti-cycling ladder activation.
                ws.solve_bland_activations += 1;
            }
            let limit = ws.price_limit(prep);
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..limit {
                let state = ws.state[j];
                if state == BASIC {
                    continue;
                }
                if j >= n + m && !ws.art_active[j - n - m] {
                    continue;
                }
                if state != FREE && ws.upper[j] - ws.lower[j] <= 0.0 {
                    continue; // fixed column can never usefully enter
                }
                let d = ws.d[j];
                let viol = match state {
                    AT_LOWER => -d,
                    AT_UPPER => d,
                    _ => d.abs(),
                };
                if viol > tol {
                    if use_bland {
                        entering = Some((j, viol));
                        break;
                    }
                    let score = viol * viol / ws.devex[j];
                    if entering.is_none_or(|(_, best)| score > best) {
                        entering = Some((j, score));
                    }
                }
            }
            let Some((q, _)) = entering else {
                return LoopEnd::Optimal;
            };
            let dir = match ws.state[q] {
                AT_LOWER => 1.0,
                AT_UPPER => -1.0,
                _ => {
                    if ws.d[q] < 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                }
            };
            ws.compute_w(prep, q);

            // Ratio test: blocking basic bound, or the entering variable's
            // own opposite bound (a bound flip).
            let own_range = if ws.state[q] == FREE {
                f64::INFINITY
            } else {
                ws.upper[q] - ws.lower[q]
            };
            let mut best_t = own_range;
            let mut best_piv = f64::INFINITY; // bound flips are exact
            let mut leaving: Option<(usize, u8)> = None;
            for i in 0..m {
                let delta = -dir * ws.w[i];
                let b = ws.basis[i];
                let (t, target) = if delta > EPS {
                    if !ws.upper[b].is_finite() {
                        continue;
                    }
                    (((ws.upper[b] - ws.x[b]).max(0.0)) / delta, AT_UPPER)
                } else if delta < -EPS {
                    if !ws.lower[b].is_finite() {
                        continue;
                    }
                    (((ws.x[b] - ws.lower[b]).max(0.0)) / -delta, AT_LOWER)
                } else {
                    continue;
                };
                let piv = ws.w[i].abs();
                if t < best_t - EPS || (t < best_t + EPS && piv > best_piv) {
                    best_t = t;
                    best_piv = piv;
                    leaving = Some((i, target));
                }
            }
            if best_t.is_infinite() {
                return LoopEnd::Unbounded;
            }
            if best_t > EPS {
                degenerate = 0;
            } else {
                degenerate += 1;
            }
            // Apply the step.
            if best_t != 0.0 {
                ws.x[q] += dir * best_t;
                for i in 0..m {
                    let b = ws.basis[i];
                    ws.x[b] += (-dir * ws.w[i]) * best_t;
                }
            }
            match leaving {
                None => {
                    // Bound flip: snap exactly onto the opposite bound.
                    if dir > 0.0 {
                        ws.x[q] = ws.upper[q];
                        ws.state[q] = AT_UPPER;
                    } else {
                        ws.x[q] = ws.lower[q];
                        ws.state[q] = AT_LOWER;
                    }
                }
                Some((row, target)) => {
                    // Devex reference-weight update over the pivot row,
                    // computed before the basis changes (one BTRAN + one
                    // pass over the nonbasic columns, the same O(nnz) a
                    // pricing pass costs).
                    if !use_bland {
                        self.update_devex(prep, ws, q, row);
                    }
                    let lv = ws.basis[row];
                    ws.state[lv] = target;
                    ws.x[lv] = if target == AT_UPPER {
                        ws.upper[lv]
                    } else {
                        ws.lower[lv]
                    };
                    ws.basis[row] = q;
                    ws.state[q] = BASIC;
                    ws.pivot_update(row);
                }
            }
            ws.solve_pivots += 1;
            if ws.factor.needs_refactor() && !ws.refactorize(prep) {
                return LoopEnd::Numerical;
            }
        }
    }

    /// Forrest–Goldfarb devex weight update for a pivot entering `q` on row
    /// `row`: every nonbasic column's weight is raised to
    /// `(alpha_j / alpha_q)^2 * gamma_q` where `alpha` is the pivot row of
    /// the tableau, and the leaving variable inherits `gamma_q / alpha_q^2`.
    fn update_devex(&self, prep: &Prepared, ws: &mut SimplexWorkspace, q: usize, row: usize) {
        let alpha_q = ws.w[row];
        if alpha_q.abs() < EPS {
            return;
        }
        let gamma_q = ws.devex[q].max(1.0);
        if gamma_q > DEVEX_RESET {
            ws.devex.fill(1.0);
            ws.solve_devex_resets += 1;
            return;
        }
        ws.compute_rho(row);
        let limit = ws.price_limit(prep);
        let inv_sq = 1.0 / (alpha_q * alpha_q);
        for j in 0..limit {
            if ws.state[j] == BASIC || j == q {
                continue;
            }
            let alpha = ws.rho_dot_col(prep, j);
            if alpha != 0.0 {
                let cand = alpha * alpha * inv_sq * gamma_q;
                if cand > ws.devex[j] {
                    ws.devex[j] = cand;
                }
            }
        }
        let leaving = ws.basis[row];
        ws.devex[leaving] = (gamma_q * inv_sq).max(1.0);
    }

    /// Bounded dual simplex: restores primal feasibility from a
    /// dual-feasible basis after bound changes.
    fn dual_loop(&self, prep: &Prepared, ws: &mut SimplexWorkspace) -> DualEnd {
        let n = prep.n;
        let m = prep.m;
        let tol = self.tolerance;
        loop {
            if ws.solve_pivots >= self.max_iterations {
                return DualEnd::IterationLimit;
            }
            // Leaving row: the basic variable most out of bounds.
            let mut leave: Option<(usize, f64, f64)> = None; // (row, delta, magnitude)
            for i in 0..m {
                let b = ws.basis[i];
                let below = ws.lower[b] - ws.x[b];
                let above = ws.x[b] - ws.upper[b];
                if below > tol && leave.is_none_or(|(_, _, mag)| below > mag) {
                    leave = Some((i, -below, below));
                }
                if above > tol && leave.is_none_or(|(_, _, mag)| above > mag) {
                    leave = Some((i, above, above));
                }
            }
            let Some((row, delta, _)) = leave else {
                return DualEnd::Feasible;
            };
            ws.compute_duals(prep);
            // Dual ratio test over the pivot row (one BTRAN of a unit
            // vector yields the row, then sparse dots per column).
            ws.compute_rho(row);
            let limit = ws.price_limit(prep);
            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..limit {
                let state = ws.state[j];
                if state == BASIC {
                    continue;
                }
                if j >= n + m && !ws.art_active[j - n - m] {
                    continue;
                }
                if state != FREE && ws.upper[j] - ws.lower[j] <= 0.0 {
                    continue; // fixed columns must not re-enter
                }
                let alpha = ws.rho_dot_col(prep, j);
                let eligible = if delta > 0.0 {
                    (state == AT_LOWER && alpha > 1e-7)
                        || (state == AT_UPPER && alpha < -1e-7)
                        || (state == FREE && alpha.abs() > 1e-7)
                } else {
                    (state == AT_LOWER && alpha < -1e-7)
                        || (state == AT_UPPER && alpha > 1e-7)
                        || (state == FREE && alpha.abs() > 1e-7)
                };
                if !eligible {
                    continue;
                }
                let ratio = (ws.d[j] / alpha).abs();
                let better = match best {
                    None => true,
                    Some((bj, br, ba)) => {
                        ratio < br - EPS
                            || (ratio < br + EPS
                                && (alpha.abs() > f64::abs(ba) + EPS
                                    || (alpha.abs() > f64::abs(ba) - EPS && j < bj)))
                    }
                };
                if better {
                    best = Some((j, ratio, alpha));
                }
            }
            let Some((q, _, alpha_q)) = best else {
                // No column can repair the violated row: primal infeasible.
                return DualEnd::Infeasible;
            };
            if alpha_q.abs() < EPS {
                return DualEnd::Numerical;
            }
            let step = delta / alpha_q;
            ws.compute_w(prep, q);
            ws.x[q] += step;
            for i in 0..m {
                let b = ws.basis[i];
                ws.x[b] -= ws.w[i] * step;
            }
            let p = ws.basis[row];
            if delta > 0.0 {
                ws.x[p] = ws.upper[p];
                ws.state[p] = AT_UPPER;
            } else {
                ws.x[p] = ws.lower[p];
                ws.state[p] = AT_LOWER;
            }
            ws.basis[row] = q;
            ws.state[q] = BASIC;
            ws.pivot_update(row);
            ws.solve_pivots += 1;
            if ws.factor.needs_refactor() && !ws.refactorize(prep) {
                return DualEnd::Numerical;
            }
        }
    }

    /// Solves the LP relaxation of `model` (binary variables relaxed to
    /// `[0, 1]`), optionally with per-variable bound overrides used by the
    /// branch-and-bound solver to fix branched variables.
    ///
    /// `bound_overrides[i]`, when present, replaces the natural bounds of
    /// variable `i`.
    pub fn solve_with_bounds(
        &self,
        model: &Model,
        bound_overrides: &[Option<(f64, f64)>],
    ) -> LpSolution {
        let prep = self.prepare(model);
        let mut ws = SimplexWorkspace::new();
        ws.reset(&prep);
        for (j, ov) in bound_overrides.iter().enumerate().take(prep.n) {
            if let Some((lo, hi)) = ov {
                ws.set_var_bounds(j, *lo, *hi);
            }
        }
        let outcome = self.solve_workspace(&prep, &mut ws);
        self.extract(&prep, &ws, outcome)
    }

    /// Solves the LP relaxation of `model` with its natural bounds.
    pub fn solve(&self, model: &Model) -> LpSolution {
        self.solve_with_bounds(model, &[])
    }

    /// Packages the workspace state into an [`LpSolution`].
    pub fn extract(
        &self,
        prep: &Prepared,
        ws: &SimplexWorkspace,
        outcome: LpOutcome,
    ) -> LpSolution {
        match outcome {
            LpOutcome::Optimal => LpSolution {
                outcome,
                objective: ws.objective(prep),
                values: ws.values().to_vec(),
                iterations: ws.last_pivots(),
            },
            LpOutcome::Unbounded => LpSolution {
                outcome,
                objective: f64::NEG_INFINITY,
                values: vec![],
                iterations: ws.last_pivots(),
            },
            _ => LpSolution {
                outcome,
                objective: f64::INFINITY,
                values: vec![],
                iterations: ws.last_pivots(),
            },
        }
    }
}

/// Returns the natural bounds of every variable of a model (the LP
/// relaxation bounds for binaries), used by branch-and-bound to seed a
/// workspace.
pub fn natural_bounds(model: &Model) -> Vec<(f64, f64)> {
    model
        .vars()
        .iter()
        .map(|kind| match kind {
            VarKind::Continuous { lower, upper } => (*lower, *upper),
            VarKind::Binary => (0.0, 1.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, Model};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn simple_two_variable_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0
        // optimum at (2, 2) with objective -6.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective_term(x, -1.0);
        m.set_objective_term(y, -2.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::LessEq,
            4.0,
            "cap",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, -6.0), "obj {}", sol.objective);
        assert!(approx(sol.values[x.index()], 2.0));
        assert!(approx(sol.values[y.index()], 2.0));
    }

    #[test]
    fn equality_constraint_is_honored() {
        // min x + y s.t. x + y = 5, x <= 10, y <= 10 -> objective 5.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        let y = m.add_continuous(0.0, 10.0);
        m.set_objective_term(x, 1.0);
        m.set_objective_term(y, 1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::Equal,
            5.0,
            "eq",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, 5.0), "obj {}", sol.objective);
        assert!(approx(sol.values[0] + sol.values[1], 5.0));
    }

    #[test]
    fn greater_equal_constraint() {
        // min 2x + 3y s.t. x + y >= 4, x <= 3, y <= 3 -> best is x=3, y=1 -> 9.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0);
        let y = m.add_continuous(0.0, 3.0);
        m.set_objective_term(x, 2.0);
        m.set_objective_term(y, 3.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::GreaterEq,
            4.0,
            "cover",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, 9.0), "obj {}", sol.objective);
    }

    #[test]
    fn infeasible_problem_detected() {
        // x <= 1 and x >= 2 simultaneously.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        m.set_objective_term(x, 1.0);
        m.add_constraint(LinearExpr::new().with(x, 1.0), Comparison::LessEq, 1.0, "a");
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::GreaterEq,
            2.0,
            "b",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        // min -x with x unbounded above.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective_term(x, -1.0);
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Unbounded);
    }

    #[test]
    fn binary_relaxation_uses_unit_bounds() {
        // min -x over binary x relaxed -> x = 1.
        let mut m = Model::new();
        let x = m.add_binary();
        m.set_objective_term(x, -1.0);
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.values[x.index()], 1.0));
    }

    #[test]
    fn bound_overrides_fix_variables() {
        let mut m = Model::new();
        let x = m.add_binary();
        let y = m.add_binary();
        m.set_objective_term(x, -1.0);
        m.set_objective_term(y, -1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::LessEq,
            1.0,
            "one",
        );
        // Fix x = 0; then y should go to 1.
        let sol = SimplexSolver::new().solve_with_bounds(&m, &[Some((0.0, 0.0)), None]);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.values[x.index()], 0.0));
        assert!(approx(sol.values[y.index()], 1.0));
    }

    #[test]
    fn conflicting_bound_override_is_infeasible() {
        let mut m = Model::new();
        let _x = m.add_binary();
        let sol = SimplexSolver::new().solve_with_bounds(&m, &[Some((1.0, 0.0))]);
        assert_eq!(sol.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn negative_lower_bounds_are_handled() {
        // min x with x in [-5, 5] -> -5.
        let mut m = Model::new();
        let x = m.add_continuous(-5.0, 5.0);
        m.set_objective_term(x, 1.0);
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.values[x.index()], -5.0));
        assert!(approx(sol.objective, -5.0));
    }

    #[test]
    fn free_variable_is_supported() {
        // min x + y s.t. x + y >= -3 with x free, y in [0, 1] -> x = -3.
        let mut m = Model::new();
        let x = m.add_continuous(f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_continuous(0.0, 1.0);
        m.set_objective_term(x, 1.0);
        m.set_objective_term(y, 1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::GreaterEq,
            -3.0,
            "floor",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, -3.0), "obj {}", sol.objective);
    }

    #[test]
    fn lp_relaxation_of_assignment_problem() {
        // Two apps, two servers, assignment equality constraints, per-server
        // capacity 1, distinct costs; LP optimum equals the integral optimum
        // for this transportation-like structure.
        let mut m = Model::new();
        let x: Vec<Vec<_>> = (0..2)
            .map(|_| (0..2).map(|_| m.add_binary()).collect())
            .collect();
        let costs = [[5.0, 1.0], [2.0, 4.0]];
        for (i, (x_row, cost_row)) in x.iter().zip(costs.iter()).enumerate() {
            let mut expr = LinearExpr::new();
            for (&v, &cost) in x_row.iter().zip(cost_row.iter()) {
                m.set_objective_term(v, cost);
                expr.add(v, 1.0);
            }
            m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
        }
        for j in 0..2 {
            let mut expr = LinearExpr::new();
            for row in &x {
                expr.add(row[j], 1.0);
            }
            m.add_constraint(expr, Comparison::LessEq, 1.0, format!("cap{j}"));
        }
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        // Optimal assignment: app0 -> server1 (1.0), app1 -> server0 (2.0) = 3.
        assert!(approx(sol.objective, 3.0), "obj {}", sol.objective);
    }

    #[test]
    fn warm_restart_after_bound_tightening_matches_cold_solve() {
        // Knapsack LP; fix a variable after the first solve and compare the
        // warm (dual simplex) restart against a cold solve.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective_term(a, -10.0);
        m.set_objective_term(b, -6.0);
        m.set_objective_term(c, -4.0);
        m.add_constraint(
            LinearExpr::new().with(a, 5.0).with(b, 4.0).with(c, 3.0),
            Comparison::LessEq,
            8.0,
            "w",
        );
        let solver = SimplexSolver::new();
        let prep = solver.prepare(&m);
        let mut ws = SimplexWorkspace::new();
        ws.reset(&prep);
        assert_eq!(solver.solve_workspace(&prep, &mut ws), LpOutcome::Optimal);
        assert!(ws.warm_ready());
        ws.set_var_bounds(a.index(), 0.0, 0.0);
        let warm = solver.solve_workspace(&prep, &mut ws);
        assert_eq!(warm, LpOutcome::Optimal);
        let warm_obj = ws.objective(&prep);
        let cold = solver.solve_with_bounds(&m, &[Some((0.0, 0.0)), None, None]);
        assert_eq!(cold.outcome, LpOutcome::Optimal);
        assert!(
            (warm_obj - cold.objective).abs() < 1e-6,
            "warm {warm_obj} vs cold {}",
            cold.objective
        );
    }

    #[test]
    fn warm_restart_detects_infeasible_fixing_and_stays_reusable() {
        // x + y = 1; fixing both to zero is infeasible; relaxing one again
        // must recover the optimum from the same workspace.
        let mut m = Model::new();
        let x = m.add_binary();
        let y = m.add_binary();
        m.set_objective_term(x, 2.0);
        m.set_objective_term(y, 3.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::Equal,
            1.0,
            "one",
        );
        let solver = SimplexSolver::new();
        let prep = solver.prepare(&m);
        let mut ws = SimplexWorkspace::new();
        ws.reset(&prep);
        assert_eq!(solver.solve_workspace(&prep, &mut ws), LpOutcome::Optimal);
        assert!(approx(ws.objective(&prep), 2.0));
        ws.set_var_bounds(x.index(), 0.0, 0.0);
        ws.set_var_bounds(y.index(), 0.0, 0.0);
        assert_eq!(
            solver.solve_workspace(&prep, &mut ws),
            LpOutcome::Infeasible
        );
        ws.reset_var_bounds(&prep, y.index());
        assert_eq!(solver.solve_workspace(&prep, &mut ws), LpOutcome::Optimal);
        assert!(
            approx(ws.objective(&prep), 3.0),
            "obj {}",
            ws.objective(&prep)
        );
    }

    #[test]
    fn contradictory_equalities_on_a_free_variable_are_infeasible() {
        // Regression: activating an artificial with a negative sign must
        // flip the corresponding basis-inverse diagonal; with the identity
        // left in place this model solved to "Optimal" at -5.
        let mut m = Model::new();
        let x = m.add_continuous(f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective_term(x, 1.0);
        m.add_constraint(LinearExpr::new().with(x, 1.0), Comparison::Equal, 5.0, "hi");
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::Equal,
            -5.0,
            "lo",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn one_sided_variable_with_conflicting_rows_is_infeasible() {
        // Regression: x <= -2 and -x <= 0 (i.e. x >= 0) cannot both hold;
        // the corrupted phase-1 used to return Optimal at x = -2.
        let mut m = Model::new();
        let x = m.add_continuous(-3.0, f64::INFINITY);
        m.set_objective_term(x, -1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::LessEq,
            -2.0,
            "cap",
        );
        m.add_constraint(
            LinearExpr::new().with(x, -1.0),
            Comparison::LessEq,
            0.0,
            "nonneg",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn negated_artificial_rows_solve_to_the_true_optimum() {
        // A feasible sibling of the regression above: x >= 0 and x <= 4
        // expressed through a negated row, maximizing x -> 4.
        let mut m = Model::new();
        let x = m.add_continuous(-3.0, f64::INFINITY);
        m.set_objective_term(x, -1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::LessEq,
            4.0,
            "cap",
        );
        m.add_constraint(
            LinearExpr::new().with(x, -1.0),
            Comparison::LessEq,
            0.0,
            "nonneg",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, -4.0), "obj {}", sol.objective);
        assert!(approx(sol.values[x.index()], 4.0));
    }

    #[test]
    fn natural_bounds_reports_relaxation_bounds() {
        let mut m = Model::new();
        m.add_binary();
        m.add_continuous(-1.0, 2.5);
        assert_eq!(natural_bounds(&m), vec![(0.0, 1.0), (-1.0, 2.5)]);
    }

    #[test]
    fn failed_refactorization_resets_to_a_clean_slack_basis() {
        // Regression: a singular basis handed to `refactorize` used to
        // leave the workspace half-rebuilt.  It must instead fall back to
        // the pristine slack basis and stay fully solvable.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective_term(x, -1.0);
        m.set_objective_term(y, -2.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::LessEq,
            4.0,
            "cap",
        );
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, -1.0),
            Comparison::LessEq,
            3.0,
            "skew",
        );
        let solver = SimplexSolver::new();
        let prep = solver.prepare(&m);
        let mut ws = SimplexWorkspace::new();
        ws.reset(&prep);
        assert_eq!(solver.solve_workspace(&prep, &mut ws), LpOutcome::Optimal);
        let optimum = ws.objective(&prep);

        // Corrupt the basis into a structurally singular one (the same
        // column in every slot) and force a refactorization.
        let dup = ws.basis[0];
        for slot in ws.basis.iter_mut() {
            *slot = dup;
        }
        assert!(!ws.refactorize(&prep), "singular basis must be rejected");
        for (r, &b) in ws.basis.iter().enumerate() {
            assert_eq!(b, prep.n + r, "slot {r} must hold its slack again");
        }
        assert!(!ws.dual_ready && !ws.primal_ready);

        // The reset workspace must cold-start back to the same optimum.
        assert_eq!(solver.solve_workspace(&prep, &mut ws), LpOutcome::Optimal);
        assert!(
            approx(ws.objective(&prep), optimum),
            "obj {}",
            ws.objective(&prep)
        );
    }
}
