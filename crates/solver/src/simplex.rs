//! A dense Big-M primal simplex solver for LP relaxations.
//!
//! The solver handles the models produced by [`crate::model::Model`]: a
//! linear minimization objective over bounded continuous (and relaxed
//! binary) variables with `<=`, `>=` and `=` constraints.  It uses the
//! classic tableau simplex with the Big-M method for artificial variables
//! and Bland's rule to avoid cycling.  It is intentionally dense and simple:
//! the LP relaxations solved during branch-and-bound in this workspace have
//! at most a few hundred variables.

use crate::model::{Comparison, Model};

/// The status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was exceeded.
    IterationLimit,
}

/// The result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve status.
    pub outcome: LpOutcome,
    /// Objective value (meaningful only when `outcome == Optimal`).
    pub objective: f64,
    /// Variable values in model order (meaningful only when optimal).
    pub values: Vec<f64>,
    /// Number of simplex pivots performed.
    pub iterations: usize,
}

/// Big-M tableau simplex solver.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    /// Maximum number of pivots before giving up.
    pub max_iterations: usize,
    /// The Big-M penalty applied to artificial variables.
    pub big_m: f64,
    /// Numerical tolerance.
    pub tolerance: f64,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            big_m: 1e7,
            tolerance: 1e-7,
        }
    }
}

impl SimplexSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the LP relaxation of `model` (binary variables relaxed to
    /// `[0, 1]`), optionally with per-variable bound overrides used by the
    /// branch-and-bound solver to fix branched variables.
    ///
    /// `bound_overrides[i]`, when present, replaces the natural bounds of
    /// variable `i`.
    pub fn solve_with_bounds(
        &self,
        model: &Model,
        bound_overrides: &[Option<(f64, f64)>],
    ) -> LpSolution {
        let n = model.num_vars();
        // Resolve bounds.
        let mut lower = vec![0.0f64; n];
        let mut upper = vec![f64::INFINITY; n];
        for (i, kind) in model.vars().iter().enumerate() {
            let (lo, hi) = kind.bounds();
            lower[i] = lo;
            upper[i] = hi;
            if let Some(Some((olo, ohi))) = bound_overrides.get(i) {
                lower[i] = *olo;
                upper[i] = *ohi;
            }
            if lower[i] > upper[i] + self.tolerance {
                return LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![],
                    iterations: 0,
                };
            }
        }

        // Build rows in terms of shifted variables y = x - lower (y >= 0).
        // Each row: (coeffs over y, comparison, rhs).
        let mut rows: Vec<(Vec<f64>, Comparison, f64)> = Vec::new();
        for c in model.constraints() {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs;
            for (v, a) in &c.expr.terms {
                coeffs[v.index()] += *a;
                rhs -= *a * lower[v.index()];
            }
            rows.push((coeffs, c.cmp, rhs));
        }
        // Upper bounds as explicit constraints y_i <= upper_i - lower_i.
        for i in 0..n {
            let ub = upper[i] - lower[i];
            if ub.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, Comparison::LessEq, ub));
            }
        }

        // Normalize rows so rhs >= 0.
        for (coeffs, cmp, rhs) in &mut rows {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Comparison::LessEq => Comparison::GreaterEq,
                    Comparison::GreaterEq => Comparison::LessEq,
                    Comparison::Equal => Comparison::Equal,
                };
            }
        }

        let m = rows.len();
        // Count auxiliary columns: slack/surplus + artificial.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for (_, cmp, _) in &rows {
            match cmp {
                Comparison::LessEq => num_slack += 1,
                Comparison::GreaterEq => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                Comparison::Equal => num_artificial += 1,
            }
        }
        let total = n + num_slack + num_artificial;

        // Tableau: m rows of (total coeffs + rhs), plus objective row.
        let mut tableau = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut obj = vec![0.0f64; total + 1];

        // Objective coefficients for structural variables (shifted): the
        // constant offset c' * lower is added back at the end.
        let mut obj_offset = 0.0;
        for (v, c) in &model.objective().terms {
            obj[v.index()] += *c;
            obj_offset += *c * lower[v.index()];
        }

        let mut slack_cursor = n;
        let mut artificial_cursor = n + num_slack;
        let mut artificial_cols: Vec<usize> = Vec::new();
        for (r, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
            for (i, a) in coeffs.iter().enumerate() {
                tableau[r][i] = *a;
            }
            tableau[r][total] = *rhs;
            match cmp {
                Comparison::LessEq => {
                    tableau[r][slack_cursor] = 1.0;
                    basis[r] = slack_cursor;
                    slack_cursor += 1;
                }
                Comparison::GreaterEq => {
                    tableau[r][slack_cursor] = -1.0;
                    slack_cursor += 1;
                    tableau[r][artificial_cursor] = 1.0;
                    obj[artificial_cursor] = self.big_m;
                    basis[r] = artificial_cursor;
                    artificial_cols.push(artificial_cursor);
                    artificial_cursor += 1;
                }
                Comparison::Equal => {
                    tableau[r][artificial_cursor] = 1.0;
                    obj[artificial_cursor] = self.big_m;
                    basis[r] = artificial_cursor;
                    artificial_cols.push(artificial_cursor);
                    artificial_cursor += 1;
                }
            }
        }

        // Reduced-cost row: z_j - c_j, starting from the basis.
        // We maintain the objective row as c_j - z_j (to minimize we pivot on
        // negative entries of that row). Start: row = obj, then eliminate
        // basic columns.
        let mut objective_row = obj.clone();
        let mut objective_value = 0.0;
        for r in 0..m {
            let b = basis[r];
            let cb = obj[b];
            if cb != 0.0 {
                for j in 0..=total {
                    let delta = cb * tableau[r][j];
                    if j == total {
                        objective_value += delta;
                    } else {
                        objective_row[j] -= delta;
                    }
                }
            }
        }
        // Note: objective_row[j] now holds c_j - z_j; objective_value holds z0.

        let mut iterations = 0usize;
        loop {
            if iterations >= self.max_iterations {
                return LpSolution {
                    outcome: LpOutcome::IterationLimit,
                    objective: f64::INFINITY,
                    values: vec![],
                    iterations,
                };
            }
            // Entering column: most negative reduced cost (Dantzig), with
            // Bland's rule as a tie-breaking fallback to avoid cycling.
            let mut entering: Option<usize> = None;
            let mut best = -self.tolerance;
            for (j, &reduced_cost) in objective_row.iter().enumerate().take(total) {
                if reduced_cost < best {
                    best = reduced_cost;
                    entering = Some(j);
                }
            }
            let Some(pivot_col) = entering else {
                break; // optimal
            };

            // Ratio test.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let a = tableau[r][pivot_col];
                if a > self.tolerance {
                    let ratio = tableau[r][total] / a;
                    if ratio < best_ratio - self.tolerance
                        || (ratio < best_ratio + self.tolerance
                            && pivot_row.is_none_or(|pr| basis[r] < basis[pr]))
                    {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            let Some(pivot_row) = pivot_row else {
                return LpSolution {
                    outcome: LpOutcome::Unbounded,
                    objective: f64::NEG_INFINITY,
                    values: vec![],
                    iterations,
                };
            };

            // Pivot.
            let pivot_val = tableau[pivot_row][pivot_col];
            for v in tableau[pivot_row].iter_mut() {
                *v /= pivot_val;
            }
            let pivot_vals = tableau[pivot_row].clone();
            for (r, row) in tableau.iter_mut().enumerate() {
                if r == pivot_row {
                    continue;
                }
                let factor = row[pivot_col];
                if factor.abs() > 0.0 {
                    for (v, pv) in row.iter_mut().zip(pivot_vals.iter()) {
                        *v -= factor * pv;
                    }
                }
            }
            let factor = objective_row[pivot_col];
            if factor.abs() > 0.0 {
                for (v, pv) in objective_row.iter_mut().zip(pivot_vals.iter()).take(total) {
                    *v -= factor * pv;
                }
                objective_value -= factor * pivot_vals[total];
            }
            basis[pivot_row] = pivot_col;
            iterations += 1;
        }

        // Extract solution.
        let mut shifted = vec![0.0f64; total];
        for r in 0..m {
            shifted[basis[r]] = tableau[r][total];
        }
        // If any artificial variable is still positive, the problem is infeasible.
        for &a in &artificial_cols {
            if shifted[a] > 1e-5 {
                return LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![],
                    iterations,
                };
            }
        }

        let mut values = vec![0.0f64; n];
        for i in 0..n {
            values[i] = shifted[i] + lower[i];
        }
        // Recompute the objective from the model to avoid Big-M residue.
        let objective = model.objective_value(&values);
        let _ = objective_value + obj_offset;
        LpSolution {
            outcome: LpOutcome::Optimal,
            objective,
            values,
            iterations,
        }
    }

    /// Solves the LP relaxation of `model` with its natural bounds.
    pub fn solve(&self, model: &Model) -> LpSolution {
        self.solve_with_bounds(model, &vec![None; model.num_vars()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, Model};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn simple_two_variable_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0
        // optimum at (2, 2) with objective -6.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective_term(x, -1.0);
        m.set_objective_term(y, -2.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::LessEq,
            4.0,
            "cap",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, -6.0), "obj {}", sol.objective);
        assert!(approx(sol.values[x.index()], 2.0));
        assert!(approx(sol.values[y.index()], 2.0));
    }

    #[test]
    fn equality_constraint_is_honored() {
        // min x + y s.t. x + y = 5, x <= 10, y <= 10 -> objective 5.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        let y = m.add_continuous(0.0, 10.0);
        m.set_objective_term(x, 1.0);
        m.set_objective_term(y, 1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::Equal,
            5.0,
            "eq",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, 5.0), "obj {}", sol.objective);
        assert!(approx(sol.values[0] + sol.values[1], 5.0));
    }

    #[test]
    fn greater_equal_constraint() {
        // min 2x + 3y s.t. x + y >= 4, x <= 3, y <= 3 -> best is x=3, y=1 -> 9.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0);
        let y = m.add_continuous(0.0, 3.0);
        m.set_objective_term(x, 2.0);
        m.set_objective_term(y, 3.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::GreaterEq,
            4.0,
            "cover",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, 9.0), "obj {}", sol.objective);
    }

    #[test]
    fn infeasible_problem_detected() {
        // x <= 1 and x >= 2 simultaneously.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        m.set_objective_term(x, 1.0);
        m.add_constraint(LinearExpr::new().with(x, 1.0), Comparison::LessEq, 1.0, "a");
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::GreaterEq,
            2.0,
            "b",
        );
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        // min -x with x unbounded above.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective_term(x, -1.0);
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Unbounded);
    }

    #[test]
    fn binary_relaxation_uses_unit_bounds() {
        // min -x over binary x relaxed -> x = 1.
        let mut m = Model::new();
        let x = m.add_binary();
        m.set_objective_term(x, -1.0);
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.values[x.index()], 1.0));
    }

    #[test]
    fn bound_overrides_fix_variables() {
        let mut m = Model::new();
        let x = m.add_binary();
        let y = m.add_binary();
        m.set_objective_term(x, -1.0);
        m.set_objective_term(y, -1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::LessEq,
            1.0,
            "one",
        );
        // Fix x = 0; then y should go to 1.
        let sol = SimplexSolver::new().solve_with_bounds(&m, &[Some((0.0, 0.0)), None]);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.values[x.index()], 0.0));
        assert!(approx(sol.values[y.index()], 1.0));
    }

    #[test]
    fn conflicting_bound_override_is_infeasible() {
        let mut m = Model::new();
        let _x = m.add_binary();
        let sol = SimplexSolver::new().solve_with_bounds(&m, &[Some((1.0, 0.0))]);
        assert_eq!(sol.outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn negative_lower_bounds_are_handled() {
        // min x with x in [-5, 5] -> -5.
        let mut m = Model::new();
        let x = m.add_continuous(-5.0, 5.0);
        m.set_objective_term(x, 1.0);
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.values[x.index()], -5.0));
        assert!(approx(sol.objective, -5.0));
    }

    #[test]
    fn lp_relaxation_of_assignment_problem() {
        // Two apps, two servers, assignment equality constraints, per-server
        // capacity 1, distinct costs; LP optimum equals the integral optimum
        // for this transportation-like structure.
        let mut m = Model::new();
        let x: Vec<Vec<_>> = (0..2)
            .map(|_| (0..2).map(|_| m.add_binary()).collect())
            .collect();
        let costs = [[5.0, 1.0], [2.0, 4.0]];
        for (i, (x_row, cost_row)) in x.iter().zip(costs.iter()).enumerate() {
            let mut expr = LinearExpr::new();
            for (&v, &cost) in x_row.iter().zip(cost_row.iter()) {
                m.set_objective_term(v, cost);
                expr.add(v, 1.0);
            }
            m.add_constraint(expr, Comparison::Equal, 1.0, format!("assign{i}"));
        }
        for j in 0..2 {
            let mut expr = LinearExpr::new();
            for row in &x {
                expr.add(row[j], 1.0);
            }
            m.add_constraint(expr, Comparison::LessEq, 1.0, format!("cap{j}"));
        }
        let sol = SimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        // Optimal assignment: app0 -> server1 (1.0), app1 -> server0 (2.0) = 3.
        assert!(approx(sol.objective, 3.0), "obj {}", sol.objective);
    }
}
