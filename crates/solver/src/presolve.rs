//! Model reductions applied before large MILP solves.
//!
//! The placement MILP (`carbonedge-core::algorithm::build_model_from_costs`)
//! carries a lot of structure a generic solver can discharge before the
//! simplex ever runs: powered-on servers pin `y_s = 1` through singleton
//! equality rows, which turns their linking rows `x - y <= 0` into the
//! redundant `x <= 1`; latency-infeasible pairs never get variables, but
//! capacity rows can still imply `x = 0` for demand that cannot fit; and
//! within each assignment row `sum_s x_{a,s} = 1` a server whose column is
//! pointwise no worse than another's (same or looser coefficients in every
//! other row, no higher cost) *dominates* it, so the dominated binary can be
//! fixed to zero.
//!
//! [`presolve`] runs those reductions to a fixed point:
//!
//! 1. substitute fixed variables into every row (tracking an objective
//!    offset), validating rows that become empty;
//! 2. drop rows made redundant by variable bounds, and detect rows made
//!    infeasible by them;
//! 3. tighten variable bounds from singleton rows and from per-row implied
//!    activity bounds (rounding binary bounds to {0, 1});
//! 4. fix empty columns at their cost-preferred bound;
//! 5. fix dominated binary columns inside coefficient-1 assignment
//!    equalities.
//!
//! The result is a [`PresolvedModel`]: the reduced [`Model`] plus the
//! mapping needed to **postsolve** a reduced solution back to a full-length
//! assignment and the full objective.  Reductions only ever remove
//! provably-suboptimal or forced choices, so optimal objectives are
//! preserved exactly; [`BranchBoundSolver`](crate::BranchBoundSolver) gates
//! the pass by model size so that small warm-restarted re-solves skip it and
//! keep their zero-pivot warm-start contracts.

use crate::model::{Comparison, LinearExpr, Model, VarId, VarKind};

/// Coefficients closer than this are treated as equal when comparing
/// columns for dominance.
const COEF_EPS: f64 = 1e-9;
/// Feasibility slack when validating empty rows and bound crossings.
const FEAS_EPS: f64 = 1e-7;
/// A bound must improve by more than this to count as a tightening.
const TIGHTEN_EPS: f64 = 1e-9;
/// Maximum number of reduction sweeps before giving up on a fixed point.
const MAX_PASSES: usize = 10;
/// Assignment rows longer than this skip the quadratic dominance scan.
const DOMINANCE_ROW_LIMIT: usize = 512;

/// Result of [`presolve`].
#[derive(Debug)]
pub enum PresolveOutcome {
    /// The model was reduced (possibly trivially) and can be solved.
    Reduced(PresolvedModel),
    /// The reductions proved the model infeasible.
    Infeasible,
}

/// A reduced model together with the postsolve mapping back to the
/// original variable space.
#[derive(Debug)]
pub struct PresolvedModel {
    /// The reduced model over the surviving variables.
    pub model: Model,
    /// Objective contribution of the eliminated (fixed) variables.
    pub objective_offset: f64,
    /// Number of variables eliminated by the reductions.
    pub fixed_count: usize,
    /// Number of constraints dropped as empty or redundant.
    pub dropped_rows: usize,
    /// `kept[new_index] = old_index` for surviving variables.
    kept: Vec<usize>,
    /// `fixed[old_index] = Some(value)` for eliminated variables.
    fixed: Vec<Option<f64>>,
}

impl PresolvedModel {
    /// Maps a solution of the reduced model back to the full variable
    /// space, filling in the values of eliminated variables.
    pub fn postsolve(&self, reduced_values: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.fixed.len()];
        for (old, fix) in self.fixed.iter().enumerate() {
            if let Some(v) = fix {
                full[old] = *v;
            }
        }
        for (new, &old) in self.kept.iter().enumerate() {
            full[old] = reduced_values[new];
        }
        full
    }

    /// Full-model objective for a reduced-model objective value.
    pub fn full_objective(&self, reduced_objective: f64) -> f64 {
        reduced_objective + self.objective_offset
    }
}

/// Working copy of one constraint during the reduction sweeps.
struct Row {
    terms: Vec<(usize, f64)>,
    cmp: Comparison,
    rhs: f64,
    name: String,
    active: bool,
}

/// Minimum and maximum activity of a row under the current bounds,
/// tracking how many terms contribute an infinite endpoint so exclusion
/// bounds stay well-defined.
struct Activity {
    min: f64,
    max: f64,
    min_inf: usize,
    max_inf: usize,
}

fn activity(terms: &[(usize, f64)], lo: &[f64], hi: &[f64]) -> Activity {
    let mut act = Activity {
        min: 0.0,
        max: 0.0,
        min_inf: 0,
        max_inf: 0,
    };
    for &(j, a) in terms {
        let (toward_min, toward_max) = if a > 0.0 {
            (a * lo[j], a * hi[j])
        } else {
            (a * hi[j], a * lo[j])
        };
        if toward_min.is_finite() {
            act.min += toward_min;
        } else {
            act.min_inf += 1;
        }
        if toward_max.is_finite() {
            act.max += toward_max;
        } else {
            act.max_inf += 1;
        }
    }
    act
}

/// Runs the reduction sweeps on `model` and returns the reduced model with
/// its postsolve mapping, or proof of infeasibility.
pub fn presolve(model: &Model) -> PresolveOutcome {
    let n = model.num_vars();
    let mut lo = vec![0.0; n];
    let mut hi = vec![0.0; n];
    let mut is_bin = vec![false; n];
    for (j, kind) in model.vars().iter().enumerate() {
        let (l, h) = kind.bounds();
        lo[j] = l;
        hi[j] = h;
        is_bin[j] = matches!(kind, VarKind::Binary);
    }
    let mut cost = vec![0.0; n];
    for &(v, c) in &model.objective().terms {
        cost[v.index()] += c;
    }
    let mut rows: Vec<Row> = model
        .constraints()
        .iter()
        .map(|c| Row {
            terms: c.expr.terms.iter().map(|&(v, a)| (v.index(), a)).collect(),
            cmp: c.cmp,
            rhs: c.rhs,
            name: c.name.clone(),
            active: true,
        })
        .collect();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut dropped_rows = 0usize;

    for _pass in 0..MAX_PASSES {
        let mut changed = false;

        // 1. Substitute fixed variables, validate empty rows, tighten from
        //    singleton rows, drop redundant rows, propagate implied bounds.
        for row in rows.iter_mut() {
            if !row.active {
                continue;
            }
            let before = row.terms.len();
            let mut shift = 0.0;
            row.terms.retain(|&(j, a)| match fixed[j] {
                Some(v) => {
                    shift += a * v;
                    false
                }
                None => true,
            });
            row.rhs -= shift;
            if row.terms.len() != before {
                changed = true;
            }

            if row.terms.is_empty() {
                let ok = match row.cmp {
                    Comparison::LessEq => 0.0 <= row.rhs + FEAS_EPS,
                    Comparison::GreaterEq => 0.0 >= row.rhs - FEAS_EPS,
                    Comparison::Equal => row.rhs.abs() <= FEAS_EPS,
                };
                if !ok {
                    return PresolveOutcome::Infeasible;
                }
                row.active = false;
                dropped_rows += 1;
                changed = true;
                continue;
            }

            if row.terms.len() == 1 {
                let (j, a) = row.terms[0];
                let bound = row.rhs / a;
                let (mut new_lo, mut new_hi) = (lo[j], hi[j]);
                match (row.cmp, a > 0.0) {
                    (Comparison::LessEq, true) | (Comparison::GreaterEq, false) => {
                        new_hi = new_hi.min(bound);
                    }
                    (Comparison::LessEq, false) | (Comparison::GreaterEq, true) => {
                        new_lo = new_lo.max(bound);
                    }
                    (Comparison::Equal, _) => {
                        new_lo = new_lo.max(bound);
                        new_hi = new_hi.min(bound);
                    }
                }
                if !tighten(j, new_lo, new_hi, &mut lo, &mut hi, &is_bin) {
                    return PresolveOutcome::Infeasible;
                }
                row.active = false;
                dropped_rows += 1;
                changed = true;
                continue;
            }

            let act = activity(&row.terms, &lo, &hi);
            let min_known = act.min_inf == 0;
            let max_known = act.max_inf == 0;
            // Infeasible by activity?
            match row.cmp {
                Comparison::LessEq if min_known && act.min > row.rhs + FEAS_EPS => {
                    return PresolveOutcome::Infeasible;
                }
                Comparison::GreaterEq if max_known && act.max < row.rhs - FEAS_EPS => {
                    return PresolveOutcome::Infeasible;
                }
                Comparison::Equal
                    if (min_known && act.min > row.rhs + FEAS_EPS)
                        || (max_known && act.max < row.rhs - FEAS_EPS) =>
                {
                    return PresolveOutcome::Infeasible;
                }
                _ => {}
            }
            // Redundant by activity?
            let redundant = match row.cmp {
                Comparison::LessEq => max_known && act.max <= row.rhs + COEF_EPS,
                Comparison::GreaterEq => min_known && act.min >= row.rhs - COEF_EPS,
                Comparison::Equal => false,
            };
            if redundant {
                row.active = false;
                dropped_rows += 1;
                changed = true;
                continue;
            }
            // Implied per-variable bounds from the row's residual activity.
            let tighten_upper = matches!(row.cmp, Comparison::LessEq | Comparison::Equal);
            let tighten_lower = matches!(row.cmp, Comparison::GreaterEq | Comparison::Equal);
            for &(j, a) in &row.terms {
                let (toward_min, toward_max) = if a > 0.0 {
                    (a * lo[j], a * hi[j])
                } else {
                    (a * hi[j], a * lo[j])
                };
                // Residual min activity over the other terms.
                if tighten_upper {
                    let excl_known =
                        act.min_inf == 0 || (act.min_inf == 1 && !toward_min.is_finite());
                    if excl_known {
                        let resid = if toward_min.is_finite() {
                            act.min - toward_min
                        } else {
                            act.min
                        };
                        let bound = (row.rhs - resid) / a;
                        let (mut new_lo, mut new_hi) = (lo[j], hi[j]);
                        if a > 0.0 {
                            new_hi = new_hi.min(bound);
                        } else {
                            new_lo = new_lo.max(bound);
                        }
                        if improves(j, new_lo, new_hi, &lo, &hi) {
                            if !tighten(j, new_lo, new_hi, &mut lo, &mut hi, &is_bin) {
                                return PresolveOutcome::Infeasible;
                            }
                            changed = true;
                        }
                    }
                }
                // Residual max activity over the other terms.
                if tighten_lower {
                    let excl_known =
                        act.max_inf == 0 || (act.max_inf == 1 && !toward_max.is_finite());
                    if excl_known {
                        let resid = if toward_max.is_finite() {
                            act.max - toward_max
                        } else {
                            act.max
                        };
                        let bound = (row.rhs - resid) / a;
                        let (mut new_lo, mut new_hi) = (lo[j], hi[j]);
                        if a > 0.0 {
                            new_lo = new_lo.max(bound);
                        } else {
                            new_hi = new_hi.min(bound);
                        }
                        if improves(j, new_lo, new_hi, &lo, &hi) {
                            if !tighten(j, new_lo, new_hi, &mut lo, &mut hi, &is_bin) {
                                return PresolveOutcome::Infeasible;
                            }
                            changed = true;
                        }
                    }
                }
            }
        }

        // 2. Fix variables whose bounds have closed.
        for j in 0..n {
            if fixed[j].is_none() && hi[j] - lo[j] <= TIGHTEN_EPS {
                let v = if is_bin[j] {
                    if lo[j] > 0.5 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    0.5 * (lo[j] + hi[j])
                };
                fixed[j] = Some(v);
                changed = true;
            }
        }

        // 3. Fix empty columns at their cost-preferred bound.
        let mut col_use = vec![0usize; n];
        for row in rows.iter().filter(|r| r.active) {
            for &(j, _) in &row.terms {
                col_use[j] += 1;
            }
        }
        for j in 0..n {
            if fixed[j].is_some() || col_use[j] > 0 {
                continue;
            }
            let preferred = if cost[j] > 0.0 { lo[j] } else { hi[j] };
            if preferred.is_finite() {
                fixed[j] = Some(preferred);
                changed = true;
            }
        }

        // 4. Dominated binary columns inside coefficient-1 assignment
        //    equalities.
        if dominate_assignment_columns(&rows, &mut lo, &mut hi, &cost, &is_bin, &fixed) {
            changed = true;
        }

        if !changed {
            break;
        }
    }

    // Build the reduced model over the surviving variables.
    let mut reduced = Model::new();
    let mut kept = Vec::new();
    let mut new_id = vec![usize::MAX; n];
    for j in 0..n {
        if fixed[j].is_some() {
            continue;
        }
        let id = if is_bin[j] {
            reduced.add_binary()
        } else {
            reduced.add_continuous(lo[j], hi[j])
        };
        new_id[j] = id.index();
        kept.push(j);
    }
    let mut objective_offset = 0.0;
    for j in 0..n {
        match fixed[j] {
            Some(v) => objective_offset += cost[j] * v,
            None => {
                if cost[j] != 0.0 {
                    reduced.set_objective_term(VarId(new_id[j]), cost[j]);
                }
            }
        }
    }
    for row in rows.iter().filter(|r| r.active) {
        let mut expr = LinearExpr::new();
        let mut rhs = row.rhs;
        for &(j, a) in &row.terms {
            match fixed[j] {
                Some(v) => rhs -= a * v,
                None => {
                    expr.add(VarId(new_id[j]), a);
                }
            }
        }
        if expr.terms.is_empty() {
            let ok = match row.cmp {
                Comparison::LessEq => 0.0 <= rhs + FEAS_EPS,
                Comparison::GreaterEq => 0.0 >= rhs - FEAS_EPS,
                Comparison::Equal => rhs.abs() <= FEAS_EPS,
            };
            if !ok {
                return PresolveOutcome::Infeasible;
            }
            dropped_rows += 1;
            continue;
        }
        reduced.add_constraint(expr, row.cmp, rhs, &row.name);
    }

    let fixed_count = fixed.iter().filter(|f| f.is_some()).count();
    PresolveOutcome::Reduced(PresolvedModel {
        model: reduced,
        objective_offset,
        fixed_count,
        dropped_rows,
        kept,
        fixed,
    })
}

/// Whether `(new_lo, new_hi)` is a strict improvement over variable `j`'s
/// current bounds.
fn improves(j: usize, new_lo: f64, new_hi: f64, lo: &[f64], hi: &[f64]) -> bool {
    new_lo > lo[j] + TIGHTEN_EPS || new_hi < hi[j] - TIGHTEN_EPS
}

/// Applies tightened bounds to variable `j`, rounding binary bounds to
/// {0, 1}.  Returns `false` if the bounds cross (infeasible).
fn tighten(
    j: usize,
    new_lo: f64,
    new_hi: f64,
    lo: &mut [f64],
    hi: &mut [f64],
    is_bin: &[bool],
) -> bool {
    let mut l = lo[j].max(new_lo);
    let mut h = hi[j].min(new_hi);
    if is_bin[j] {
        l = if l > FEAS_EPS { 1.0 } else { 0.0 };
        h = if h < 1.0 - FEAS_EPS { 0.0 } else { 1.0 };
    }
    if l > h + FEAS_EPS {
        return false;
    }
    lo[j] = l;
    hi[j] = h.max(l);
    true
}

/// Scans assignment rows (`sum x_j = 1`, all coefficients 1, all binary)
/// for dominated columns and fixes them to zero via their upper bound.
/// Column `u` dominates `v` when swapping a unit from `v` to `u` can never
/// hurt: `cost_u <= cost_v` and in every other active row `u`'s coefficient
/// is no worse than `v`'s for the row sense.  Exact ties break by index so
/// only one side of a tie is eliminated.
fn dominate_assignment_columns(
    rows: &[Row],
    lo: &mut [f64],
    hi: &mut [f64],
    cost: &[f64],
    is_bin: &[bool],
    fixed: &[Option<f64>],
) -> bool {
    let n = cost.len();
    // Sparse columns over active rows, sorted by row index by construction.
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (r, row) in rows.iter().enumerate() {
        if !row.active {
            continue;
        }
        for &(j, a) in &row.terms {
            cols[j].push((r, a));
        }
    }
    let mut changed = false;
    for (r, row) in rows.iter().enumerate() {
        if !row.active || row.terms.len() < 2 || row.terms.len() > DOMINANCE_ROW_LIMIT {
            continue;
        }
        if row.cmp != Comparison::Equal || (row.rhs - 1.0).abs() > COEF_EPS {
            continue;
        }
        if !row
            .terms
            .iter()
            .all(|&(j, a)| is_bin[j] && fixed[j].is_none() && (a - 1.0).abs() <= COEF_EPS)
        {
            continue;
        }
        let members = &row.terms;
        for &(u, _) in members.iter() {
            if lo[u] > FEAS_EPS || hi[u] < 1.0 - FEAS_EPS {
                // `u` cannot freely take the unit; it cannot dominate.
                continue;
            }
            for &(v, _) in members.iter() {
                if u == v || lo[v] > FEAS_EPS || hi[v] < 1.0 - FEAS_EPS {
                    continue;
                }
                let (better_cost, tied_cost) = (
                    cost[u] < cost[v] - COEF_EPS,
                    (cost[u] - cost[v]).abs() <= COEF_EPS,
                );
                if !better_cost && !tied_cost {
                    continue;
                }
                if !column_dominates(r, &cols[u], &cols[v], rows) {
                    continue;
                }
                // Strict cost win always eliminates `v`; exact ties only
                // eliminate the higher index so the dominator survives.
                if better_cost || u < v {
                    hi[v] = 0.0;
                    changed = true;
                }
            }
        }
    }
    changed
}

/// Whether column `u` is pointwise no worse than column `v` in every
/// active row other than `skip` (the shared assignment row).
fn column_dominates(
    skip: usize,
    col_u: &[(usize, f64)],
    col_v: &[(usize, f64)],
    rows: &[Row],
) -> bool {
    let (mut iu, mut iv) = (0usize, 0usize);
    loop {
        let ru = col_u.get(iu).map(|&(r, _)| r);
        let rv = col_v.get(iv).map(|&(r, _)| r);
        let (r, au, av) = match (ru, rv) {
            (None, None) => return true,
            (Some(r), None) => {
                iu += 1;
                (r, col_u[iu - 1].1, 0.0)
            }
            (None, Some(r)) => {
                iv += 1;
                (r, 0.0, col_v[iv - 1].1)
            }
            (Some(a), Some(b)) => {
                if a < b {
                    iu += 1;
                    (a, col_u[iu - 1].1, 0.0)
                } else if b < a {
                    iv += 1;
                    (b, 0.0, col_v[iv - 1].1)
                } else {
                    iu += 1;
                    iv += 1;
                    (a, col_u[iu - 1].1, col_v[iv - 1].1)
                }
            }
        };
        if r == skip {
            continue;
        }
        let ok = match rows[r].cmp {
            Comparison::LessEq => au <= av + COEF_EPS,
            Comparison::GreaterEq => au >= av - COEF_EPS,
            Comparison::Equal => (au - av).abs() <= COEF_EPS,
        };
        if !ok {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::BranchBoundSolver;
    use crate::reference::ReferenceBranchBound;

    fn reduced(model: &Model) -> PresolvedModel {
        match presolve(model) {
            PresolveOutcome::Reduced(pm) => pm,
            PresolveOutcome::Infeasible => panic!("expected a reduced model"),
        }
    }

    #[test]
    fn singleton_equality_fixes_the_variable_and_offsets_the_objective() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        let y = m.add_continuous(0.0, 10.0);
        m.set_objective_term(x, 2.0);
        m.set_objective_term(y, 1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::Equal,
            3.0,
            "fix-x",
        );
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::GreaterEq,
            5.0,
            "cover",
        );
        let pm = reduced(&m);
        // The cascade dissolves the whole model: x fixes to 3, the cover
        // row rewrites to y >= 2 (a singleton, so it tightens y's bound and
        // drops), and y — now an empty column with positive cost — fixes at
        // its tightened lower bound.
        assert_eq!(pm.model.num_vars(), 0);
        assert_eq!(pm.fixed_count, 2);
        assert!((pm.objective_offset - 8.0).abs() < 1e-9);
        let full = pm.postsolve(&[]);
        assert_eq!(full.len(), 2);
        assert!((full[0] - 3.0).abs() < 1e-9);
        assert!((full[1] - 2.0).abs() < 1e-9);
        assert!((pm.full_objective(0.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_rows_are_dropped_and_empty_columns_fixed_at_cheap_bound() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0);
        let z = m.add_continuous(0.0, 4.0);
        m.set_objective_term(x, 1.0);
        m.set_objective_term(z, -1.0);
        // Redundant: max activity of x is 1 <= 5.
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::LessEq,
            5.0,
            "slack",
        );
        let pm = reduced(&m);
        // Both columns fix: x has no active rows after the redundant row
        // drops (cost 1 -> lower bound 0), z never had one (cost -1 ->
        // upper bound 4).
        assert_eq!(pm.model.num_vars(), 0);
        assert_eq!(pm.fixed_count, 2);
        assert!(pm.dropped_rows >= 1);
        let full = pm.postsolve(&[]);
        assert!((full[0] - 0.0).abs() < 1e-9);
        assert!((full[1] - 4.0).abs() < 1e-9);
        assert!((pm.full_objective(0.0) + 4.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_bounds_are_reported_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::GreaterEq,
            2.0,
            "too-big",
        );
        assert!(matches!(presolve(&m), PresolveOutcome::Infeasible));
    }

    #[test]
    fn empty_row_violation_is_reported_infeasible() {
        let mut m = Model::new();
        let x = m.add_continuous(2.0, 2.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::LessEq,
            1.0,
            "cap",
        );
        assert!(matches!(presolve(&m), PresolveOutcome::Infeasible));
    }

    #[test]
    fn dominated_assignment_column_is_fixed_to_zero() {
        // One app, three servers; server 1 is strictly cheaper than server 2
        // with identical capacity usage, so x2 is dominated.  Server 0 is
        // cheap but capacity-infeasible.
        let mut m = Model::new();
        let x0 = m.add_binary();
        let x1 = m.add_binary();
        let x2 = m.add_binary();
        m.set_objective_term(x0, 1.0);
        m.set_objective_term(x1, 2.0);
        m.set_objective_term(x2, 3.0);
        m.add_constraint(
            LinearExpr::new().with(x0, 1.0).with(x1, 1.0).with(x2, 1.0),
            Comparison::Equal,
            1.0,
            "assign",
        );
        // x0 consumes 5 units of a 4-unit server; x1/x2 consume 1 each.
        m.add_constraint(
            LinearExpr::new().with(x0, 5.0),
            Comparison::LessEq,
            4.0,
            "cap0",
        );
        m.add_constraint(
            LinearExpr::new().with(x1, 1.0),
            Comparison::LessEq,
            4.0,
            "cap1",
        );
        m.add_constraint(
            LinearExpr::new().with(x2, 1.0),
            Comparison::LessEq,
            4.0,
            "cap2",
        );
        let pm = reduced(&m);
        // x0 is forced to 0 by cap0 tightening; x2 is dominated by x1; the
        // assignment then fixes x1 = 1 — the whole model dissolves.
        assert_eq!(pm.model.num_vars(), 0);
        let full = pm.postsolve(&[]);
        assert_eq!(full, vec![0.0, 1.0, 0.0]);
        assert!((pm.full_objective(0.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tied_dominance_keeps_exactly_one_column() {
        let mut m = Model::new();
        let x0 = m.add_binary();
        let x1 = m.add_binary();
        m.set_objective_term(x0, 2.0);
        m.set_objective_term(x1, 2.0);
        m.add_constraint(
            LinearExpr::new().with(x0, 1.0).with(x1, 1.0),
            Comparison::Equal,
            1.0,
            "assign",
        );
        let pm = reduced(&m);
        let full = pm.postsolve(&vec![1.0; pm.model.num_vars()]);
        let total: f64 = full.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "exactly one column survives: {full:?}"
        );
        assert!((m.objective_value(&full) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn presolved_solve_matches_the_reference_oracle_on_a_placement_shape() {
        // 3 apps x 3 servers with activation variables, linking rows, and a
        // pinned-on server — the same structure the placement model builds.
        let mut m = Model::new();
        let mut x = Vec::new();
        for _ in 0..9 {
            x.push(m.add_binary());
        }
        let y: Vec<_> = (0..3).map(|_| m.add_binary()).collect();
        let costs = [4.0, 2.0, 5.0, 1.0, 6.0, 3.0, 2.0, 2.0, 7.0];
        for (i, &c) in costs.iter().enumerate() {
            m.set_objective_term(x[i], c);
        }
        for (s, &ys) in y.iter().enumerate() {
            m.set_objective_term(ys, 1.0 + s as f64);
        }
        for a in 0..3 {
            let mut e = LinearExpr::new();
            for s in 0..3 {
                e.add(x[a * 3 + s], 1.0);
            }
            m.add_constraint(e, Comparison::Equal, 1.0, format!("assign[{a}]"));
        }
        for s in 0..3 {
            let mut e = LinearExpr::new();
            for a in 0..3 {
                e.add(x[a * 3 + s], 1.0);
            }
            e.add(y[s], -3.0);
            m.add_constraint(e, Comparison::LessEq, 0.0, format!("cap[{s}]"));
            for a in 0..3 {
                m.add_constraint(
                    LinearExpr::new().with(x[a * 3 + s], 1.0).with(y[s], -1.0),
                    Comparison::LessEq,
                    0.0,
                    format!("link[{a},{s}]"),
                );
            }
        }
        // Server 0 is pinned on.
        m.add_constraint(
            LinearExpr::new().with(y[0], 1.0),
            Comparison::Equal,
            1.0,
            "on[0]",
        );

        let oracle = ReferenceBranchBound::new().solve(&m);
        let pm = reduced(&m);
        assert!(pm.fixed_count >= 1, "the pinned y[0] must be eliminated");
        let sub = BranchBoundSolver::new().solve(&pm.model);
        assert!(sub.has_solution());
        let full = pm.postsolve(&sub.values);
        assert!(
            m.is_feasible(&full, 1e-6),
            "postsolved point must be feasible"
        );
        let obj = pm.full_objective(sub.objective);
        assert!(
            (obj - oracle.objective).abs() < 1e-6,
            "presolved objective {obj} != oracle {}",
            oracle.objective
        );
    }
}
