//! Reference (oracle) solvers: the original dense Big-M tableau simplex and
//! the cold-start stack-based branch-and-bound that shipped before the
//! bounded-variable revised simplex rewrite.
//!
//! These implementations are retained **only** as differential-test oracles
//! and as the "before" side of the solver benchmarks: they rebuild the full
//! tableau (upper bounds materialized as constraint rows, artificial columns
//! penalized with `big_m = 1e7`) on every solve and cold-start every
//! branch-and-bound node from scratch.  Production code paths use
//! [`crate::simplex::SimplexSolver`] and
//! [`crate::branch_bound::BranchBoundSolver`]; nothing outside the tests and
//! benches should depend on this module.
//!
//! **Domain caveat:** the dense solver substitutes `y = x - lower`, so it is
//! undefined for variables with an infinite *lower* bound (free or
//! one-sided-below).  Differential tests must keep lower bounds finite;
//! infinite upper bounds are fine.

use crate::branch_bound::{MilpOutcome, MilpSolution};
use crate::model::{Comparison, Model};
use crate::simplex::{LpOutcome, LpSolution};

/// Big-M tableau simplex solver (the pre-rewrite implementation).
#[derive(Debug, Clone)]
pub struct DenseSimplexSolver {
    /// Maximum number of pivots before giving up.
    pub max_iterations: usize,
    /// The Big-M penalty applied to artificial variables.
    pub big_m: f64,
    /// Numerical tolerance.
    pub tolerance: f64,
}

impl Default for DenseSimplexSolver {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            big_m: 1e7,
            tolerance: 1e-7,
        }
    }
}

impl DenseSimplexSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the LP relaxation of `model` (binary variables relaxed to
    /// `[0, 1]`), optionally with per-variable bound overrides used by the
    /// branch-and-bound solver to fix branched variables.
    ///
    /// `bound_overrides[i]`, when present, replaces the natural bounds of
    /// variable `i`.
    pub fn solve_with_bounds(
        &self,
        model: &Model,
        bound_overrides: &[Option<(f64, f64)>],
    ) -> LpSolution {
        let n = model.num_vars();
        // Resolve bounds.
        let mut lower = vec![0.0f64; n];
        let mut upper = vec![f64::INFINITY; n];
        for (i, kind) in model.vars().iter().enumerate() {
            let (lo, hi) = kind.bounds();
            lower[i] = lo;
            upper[i] = hi;
            if let Some(Some((olo, ohi))) = bound_overrides.get(i) {
                lower[i] = *olo;
                upper[i] = *ohi;
            }
            if lower[i] > upper[i] + self.tolerance {
                return LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![],
                    iterations: 0,
                };
            }
        }

        // Build rows in terms of shifted variables y = x - lower (y >= 0).
        // Each row: (coeffs over y, comparison, rhs).
        let mut rows: Vec<(Vec<f64>, Comparison, f64)> = Vec::new();
        for c in model.constraints() {
            let mut coeffs = vec![0.0; n];
            let mut rhs = c.rhs;
            for (v, a) in &c.expr.terms {
                coeffs[v.index()] += *a;
                rhs -= *a * lower[v.index()];
            }
            rows.push((coeffs, c.cmp, rhs));
        }
        // Upper bounds as explicit constraints y_i <= upper_i - lower_i.
        for i in 0..n {
            let ub = upper[i] - lower[i];
            if ub.is_finite() {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, Comparison::LessEq, ub));
            }
        }

        // Normalize rows so rhs >= 0.
        for (coeffs, cmp, rhs) in &mut rows {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Comparison::LessEq => Comparison::GreaterEq,
                    Comparison::GreaterEq => Comparison::LessEq,
                    Comparison::Equal => Comparison::Equal,
                };
            }
        }

        let m = rows.len();
        // Count auxiliary columns: slack/surplus + artificial.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for (_, cmp, _) in &rows {
            match cmp {
                Comparison::LessEq => num_slack += 1,
                Comparison::GreaterEq => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                Comparison::Equal => num_artificial += 1,
            }
        }
        let total = n + num_slack + num_artificial;

        // Tableau: m rows of (total coeffs + rhs), plus objective row.
        let mut tableau = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut obj = vec![0.0f64; total + 1];

        // Objective coefficients for structural variables (shifted): the
        // constant offset c' * lower is added back at the end.
        let mut obj_offset = 0.0;
        for (v, c) in &model.objective().terms {
            obj[v.index()] += *c;
            obj_offset += *c * lower[v.index()];
        }

        let mut slack_cursor = n;
        let mut artificial_cursor = n + num_slack;
        let mut artificial_cols: Vec<usize> = Vec::new();
        for (r, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
            for (i, a) in coeffs.iter().enumerate() {
                tableau[r][i] = *a;
            }
            tableau[r][total] = *rhs;
            match cmp {
                Comparison::LessEq => {
                    tableau[r][slack_cursor] = 1.0;
                    basis[r] = slack_cursor;
                    slack_cursor += 1;
                }
                Comparison::GreaterEq => {
                    tableau[r][slack_cursor] = -1.0;
                    slack_cursor += 1;
                    tableau[r][artificial_cursor] = 1.0;
                    obj[artificial_cursor] = self.big_m;
                    basis[r] = artificial_cursor;
                    artificial_cols.push(artificial_cursor);
                    artificial_cursor += 1;
                }
                Comparison::Equal => {
                    tableau[r][artificial_cursor] = 1.0;
                    obj[artificial_cursor] = self.big_m;
                    basis[r] = artificial_cursor;
                    artificial_cols.push(artificial_cursor);
                    artificial_cursor += 1;
                }
            }
        }

        // Reduced-cost row: z_j - c_j, starting from the basis.
        // We maintain the objective row as c_j - z_j (to minimize we pivot on
        // negative entries of that row). Start: row = obj, then eliminate
        // basic columns.
        let mut objective_row = obj.clone();
        let mut objective_value = 0.0;
        for r in 0..m {
            let b = basis[r];
            let cb = obj[b];
            if cb != 0.0 {
                for j in 0..=total {
                    let delta = cb * tableau[r][j];
                    if j == total {
                        objective_value += delta;
                    } else {
                        objective_row[j] -= delta;
                    }
                }
            }
        }
        // Note: objective_row[j] now holds c_j - z_j; objective_value holds z0.

        let mut iterations = 0usize;
        loop {
            if iterations >= self.max_iterations {
                return LpSolution {
                    outcome: LpOutcome::IterationLimit,
                    objective: f64::INFINITY,
                    values: vec![],
                    iterations,
                };
            }
            // Entering column: most negative reduced cost (Dantzig), with
            // Bland's rule as a tie-breaking fallback to avoid cycling.
            let mut entering: Option<usize> = None;
            let mut best = -self.tolerance;
            for (j, &reduced_cost) in objective_row.iter().enumerate().take(total) {
                if reduced_cost < best {
                    best = reduced_cost;
                    entering = Some(j);
                }
            }
            let Some(pivot_col) = entering else {
                break; // optimal
            };

            // Ratio test.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let a = tableau[r][pivot_col];
                if a > self.tolerance {
                    let ratio = tableau[r][total] / a;
                    if ratio < best_ratio - self.tolerance
                        || (ratio < best_ratio + self.tolerance
                            && pivot_row.is_none_or(|pr| basis[r] < basis[pr]))
                    {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            let Some(pivot_row) = pivot_row else {
                return LpSolution {
                    outcome: LpOutcome::Unbounded,
                    objective: f64::NEG_INFINITY,
                    values: vec![],
                    iterations,
                };
            };

            // Pivot.
            let pivot_val = tableau[pivot_row][pivot_col];
            for v in tableau[pivot_row].iter_mut() {
                *v /= pivot_val;
            }
            let pivot_vals = tableau[pivot_row].clone();
            for (r, row) in tableau.iter_mut().enumerate() {
                if r == pivot_row {
                    continue;
                }
                let factor = row[pivot_col];
                if factor.abs() > 0.0 {
                    for (v, pv) in row.iter_mut().zip(pivot_vals.iter()) {
                        *v -= factor * pv;
                    }
                }
            }
            let factor = objective_row[pivot_col];
            if factor.abs() > 0.0 {
                for (v, pv) in objective_row.iter_mut().zip(pivot_vals.iter()).take(total) {
                    *v -= factor * pv;
                }
                objective_value -= factor * pivot_vals[total];
            }
            basis[pivot_row] = pivot_col;
            iterations += 1;
        }

        // Extract solution.
        let mut shifted = vec![0.0f64; total];
        for r in 0..m {
            shifted[basis[r]] = tableau[r][total];
        }
        // If any artificial variable is still positive, the problem is infeasible.
        for &a in &artificial_cols {
            if shifted[a] > 1e-5 {
                return LpSolution {
                    outcome: LpOutcome::Infeasible,
                    objective: f64::INFINITY,
                    values: vec![],
                    iterations,
                };
            }
        }

        let mut values = vec![0.0f64; n];
        for i in 0..n {
            values[i] = shifted[i] + lower[i];
        }
        // Recompute the objective from the model to avoid Big-M residue.
        let objective = model.objective_value(&values);
        let _ = objective_value + obj_offset;
        LpSolution {
            outcome: LpOutcome::Optimal,
            objective,
            values,
            iterations,
        }
    }

    /// Solves the LP relaxation of `model` with its natural bounds.
    pub fn solve(&self, model: &Model) -> LpSolution {
        self.solve_with_bounds(model, &vec![None; model.num_vars()])
    }
}

/// The pre-rewrite cold-start branch-and-bound: depth-first stack, a full
/// `overrides` clone per child, and a fresh Big-M tableau per node.  Retained
/// as the differential oracle and the "before" side of `BENCH_solver.json`.
#[derive(Debug, Clone)]
pub struct ReferenceBranchBound {
    /// LP relaxation solver.
    pub lp: DenseSimplexSolver,
    /// Maximum number of nodes to explore.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tolerance: f64,
}

impl Default for ReferenceBranchBound {
    fn default() -> Self {
        Self {
            lp: DenseSimplexSolver::new(),
            max_nodes: 50_000,
            tolerance: 1e-6,
        }
    }
}

struct Node {
    overrides: Vec<Option<(f64, f64)>>,
    bound: f64,
}

impl ReferenceBranchBound {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with a node limit (anytime behaviour).
    pub fn with_node_limit(max_nodes: usize) -> Self {
        Self {
            max_nodes,
            ..Self::default()
        }
    }

    fn most_fractional_binary(&self, model: &Model, values: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for v in model.binary_vars() {
            let val = values[v.index()];
            let frac = (val - val.round()).abs();
            if frac > self.tolerance {
                let distance_to_half = (val - 0.5).abs();
                match best {
                    Some((_, d)) if d <= distance_to_half => {}
                    _ => best = Some((v.index(), distance_to_half)),
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Solves the MILP to optimality (or best effort within the node limit).
    pub fn solve(&self, model: &Model) -> MilpSolution {
        let n = model.num_vars();
        let root = Node {
            overrides: vec![None; n],
            bound: f64::NEG_INFINITY,
        };
        let mut stack = vec![root];
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;
        let mut pivots = 0usize;
        let mut exhausted = true;

        while let Some(node) = stack.pop() {
            if nodes >= self.max_nodes {
                exhausted = false;
                break;
            }
            nodes += 1;

            // Prune by bound.
            if let Some((best_obj, _)) = &incumbent {
                if node.bound >= *best_obj - self.tolerance {
                    continue;
                }
            }

            let relax = self.lp.solve_with_bounds(model, &node.overrides);
            pivots += relax.iterations;
            match relax.outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => {
                    // An unbounded relaxation of a bounded-binary problem can
                    // only come from unbounded continuous variables; treat the
                    // node as unusable.
                    continue;
                }
                LpOutcome::IterationLimit => continue,
                LpOutcome::Optimal => {}
            }
            if let Some((best_obj, _)) = &incumbent {
                if relax.objective >= *best_obj - self.tolerance {
                    continue;
                }
            }

            match self.most_fractional_binary(model, &relax.values) {
                None => {
                    // Integer feasible: round binaries exactly and keep if improving.
                    let mut values = relax.values.clone();
                    for v in model.binary_vars() {
                        values[v.index()] = values[v.index()].round();
                    }
                    if model.is_feasible(&values, 1e-5) {
                        let obj = model.objective_value(&values);
                        let improves = incumbent
                            .as_ref()
                            .is_none_or(|(best, _)| obj < *best - self.tolerance);
                        if improves {
                            incumbent = Some((obj, values));
                        }
                    }
                }
                Some(branch_var) => {
                    // Branch: x = 0 and x = 1 children.
                    for fixed in [1.0, 0.0] {
                        let mut overrides = node.overrides.clone();
                        overrides[branch_var] = Some((fixed, fixed));
                        stack.push(Node {
                            overrides,
                            bound: relax.objective,
                        });
                    }
                }
            }
        }

        match incumbent {
            Some((objective, values)) => MilpSolution {
                outcome: if exhausted {
                    MilpOutcome::Optimal
                } else {
                    MilpOutcome::Feasible
                },
                objective,
                values,
                nodes,
                pivots,
                factor: Default::default(),
                pricing: Default::default(),
                decomp: None,
            },
            None => MilpSolution {
                outcome: if exhausted {
                    MilpOutcome::Infeasible
                } else {
                    MilpOutcome::NodeLimit
                },
                objective: f64::INFINITY,
                values: vec![],
                nodes,
                pivots,
                factor: Default::default(),
                pricing: Default::default(),
                decomp: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Comparison, LinearExpr, Model};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn oracle_simplex_solves_a_basic_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2 -> (2, 2), objective -6.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective_term(x, -1.0);
        m.set_objective_term(y, -2.0);
        m.add_constraint(
            LinearExpr::new().with(x, 1.0).with(y, 1.0),
            Comparison::LessEq,
            4.0,
            "cap",
        );
        let sol = DenseSimplexSolver::new().solve(&m);
        assert_eq!(sol.outcome, LpOutcome::Optimal);
        assert!(approx(sol.objective, -6.0), "obj {}", sol.objective);
    }

    #[test]
    fn oracle_simplex_detects_infeasibility_and_unboundedness() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0);
        m.set_objective_term(x, 1.0);
        m.add_constraint(LinearExpr::new().with(x, 1.0), Comparison::LessEq, 1.0, "a");
        m.add_constraint(
            LinearExpr::new().with(x, 1.0),
            Comparison::GreaterEq,
            2.0,
            "b",
        );
        assert_eq!(
            DenseSimplexSolver::new().solve(&m).outcome,
            LpOutcome::Infeasible
        );

        let mut unbounded = Model::new();
        let z = unbounded.add_continuous(0.0, f64::INFINITY);
        unbounded.set_objective_term(z, -1.0);
        assert_eq!(
            DenseSimplexSolver::new().solve(&unbounded).outcome,
            LpOutcome::Unbounded
        );
    }

    #[test]
    fn oracle_branch_bound_solves_a_knapsack() {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= 8 -> a + c = 14.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective_term(a, -10.0);
        m.set_objective_term(b, -6.0);
        m.set_objective_term(c, -4.0);
        m.add_constraint(
            LinearExpr::new().with(a, 5.0).with(b, 4.0).with(c, 3.0),
            Comparison::LessEq,
            8.0,
            "w",
        );
        let sol = ReferenceBranchBound::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Optimal);
        assert!(approx(sol.objective, -14.0), "obj {}", sol.objective);
    }

    #[test]
    fn oracle_branch_bound_detects_infeasible_milp() {
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.add_constraint(LinearExpr::new().with(a, 1.0), Comparison::Equal, 1.0, "a1");
        m.add_constraint(LinearExpr::new().with(b, 1.0), Comparison::Equal, 1.0, "a2");
        m.add_constraint(
            LinearExpr::new().with(a, 1.0).with(b, 1.0),
            Comparison::LessEq,
            1.0,
            "cap",
        );
        let sol = ReferenceBranchBound::new().solve(&m);
        assert_eq!(sol.outcome, MilpOutcome::Infeasible);
        assert!(!sol.has_solution());
    }
}
