//! Geographic coordinates and great-circle distances.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometers, used by the haversine formula.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 latitude/longitude pair in decimal degrees.
///
/// Latitude is in `[-90, 90]`, longitude in `[-180, 180]`.  Constructors
/// normalize longitudes outside that range and clamp latitudes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coordinates {
    /// Latitude in decimal degrees (positive = north).
    pub lat: f64,
    /// Longitude in decimal degrees (positive = east).
    pub lon: f64,
}

impl Coordinates {
    /// Creates a coordinate pair, clamping latitude to `[-90, 90]` and
    /// wrapping longitude into `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = lon % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometers.
    pub fn distance_km(&self, other: &Coordinates) -> f64 {
        haversine_km(*self, *other)
    }

    /// Returns the midpoint (on the great circle) between two coordinates.
    ///
    /// Used when collapsing multiple edge data centers in the same city into
    /// a single logical site, mirroring the trace-integration step of the
    /// paper (Section 6.1.1).
    pub fn midpoint(&self, other: &Coordinates) -> Coordinates {
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = other.lat.to_radians();
        let lon2 = other.lon.to_radians();
        let dlon = lon2 - lon1;
        let bx = lat2.cos() * dlon.cos();
        let by = lat2.cos() * dlon.sin();
        let lat3 = (lat1.sin() + lat2.sin()).atan2(((lat1.cos() + bx).powi(2) + by.powi(2)).sqrt());
        let lon3 = lon1 + by.atan2(lat1.cos() + bx);
        Coordinates::new(lat3.to_degrees(), lon3.to_degrees())
    }
}

/// Haversine great-circle distance between two coordinates, in kilometers.
///
/// This is the distance metric used throughout the mesoscale analysis
/// (radius thresholds of 200/500/1000 km in Figure 5) and by the latency
/// model in `carbonedge-net`.
pub fn haversine_km(a: Coordinates, b: Coordinates) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();

    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zero_distance_to_self() {
        let c = Coordinates::new(42.38, -72.52);
        assert!(c.distance_km(&c) < 1e-9);
    }

    #[test]
    fn known_distance_boston_to_nyc() {
        // Boston (42.3601, -71.0589) to New York (40.7128, -74.0060) is ~306 km.
        let boston = Coordinates::new(42.3601, -71.0589);
        let nyc = Coordinates::new(40.7128, -74.0060);
        let d = boston.distance_km(&nyc);
        assert!(approx(d, 306.0, 5.0), "got {d}");
    }

    #[test]
    fn known_distance_miami_to_orlando() {
        // Miami to Orlando is ~320-330 km, a canonical "mesoscale" distance in
        // the paper's Florida region.
        let miami = Coordinates::new(25.7617, -80.1918);
        let orlando = Coordinates::new(28.5384, -81.3789);
        let d = miami.distance_km(&orlando);
        assert!(approx(d, 325.0, 15.0), "got {d}");
    }

    #[test]
    fn known_distance_bern_to_munich() {
        // Bern to Munich is ~335 km great-circle (Central EU region, Table 1).
        let bern = Coordinates::new(46.9480, 7.4474);
        let munich = Coordinates::new(48.1351, 11.5820);
        let d = bern.distance_km(&munich);
        assert!(approx(d, 335.0, 20.0), "got {d}");
    }

    #[test]
    fn latitude_is_clamped() {
        let c = Coordinates::new(95.0, 10.0);
        assert_eq!(c.lat, 90.0);
        let c = Coordinates::new(-100.0, 10.0);
        assert_eq!(c.lat, -90.0);
    }

    #[test]
    fn longitude_is_wrapped() {
        let c = Coordinates::new(0.0, 190.0);
        assert!(approx(c.lon, -170.0, 1e-9));
        let c = Coordinates::new(0.0, -200.0);
        assert!(approx(c.lon, 160.0, 1e-9));
    }

    #[test]
    fn midpoint_of_identical_points_is_same() {
        let c = Coordinates::new(48.0, 11.0);
        let m = c.midpoint(&c);
        assert!(approx(m.lat, 48.0, 1e-9));
        assert!(approx(m.lon, 11.0, 1e-9));
    }

    #[test]
    fn midpoint_is_roughly_between() {
        let a = Coordinates::new(40.0, -74.0);
        let b = Coordinates::new(42.0, -71.0);
        let m = a.midpoint(&b);
        assert!(m.lat > 40.0 && m.lat < 42.0);
        assert!(m.lon > -74.0 && m.lon < -71.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn distance_is_symmetric(lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
                                 lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0) {
            let a = Coordinates::new(lat1, lon1);
            let b = Coordinates::new(lat2, lon2);
            let d1 = a.distance_km(&b);
            let d2 = b.distance_km(&a);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        #[test]
        fn distance_is_nonnegative_and_bounded(lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
                                               lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0) {
            let a = Coordinates::new(lat1, lon1);
            let b = Coordinates::new(lat2, lon2);
            let d = a.distance_km(&b);
            prop_assert!(d >= 0.0);
            // Half the Earth's circumference is the maximum great-circle distance.
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1.0);
        }

        #[test]
        fn triangle_inequality(lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
                               lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
                               lat3 in -80.0f64..80.0, lon3 in -179.0f64..179.0) {
            let a = Coordinates::new(lat1, lon1);
            let b = Coordinates::new(lat2, lon2);
            let c = Coordinates::new(lat3, lon3);
            prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
        }
    }
}
