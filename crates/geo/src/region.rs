//! Bounding boxes and named mesoscale regions.

use crate::coord::Coordinates;
use serde::{Deserialize, Serialize};

/// An axis-aligned latitude/longitude bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box; panics if min exceeds max on either axis.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Self {
        assert!(min_lat <= max_lat, "min_lat must not exceed max_lat");
        assert!(min_lon <= max_lon, "min_lon must not exceed max_lon");
        Self {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        }
    }

    /// Bounding box that tightly covers a set of coordinates.
    ///
    /// Returns `None` for an empty slice.
    pub fn covering(points: &[Coordinates]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = Self {
            min_lat: first.lat,
            max_lat: first.lat,
            min_lon: first.lon,
            max_lon: first.lon,
        };
        for p in &points[1..] {
            bb.min_lat = bb.min_lat.min(p.lat);
            bb.max_lat = bb.max_lat.max(p.lat);
            bb.min_lon = bb.min_lon.min(p.lon);
            bb.max_lon = bb.max_lon.max(p.lon);
        }
        Some(bb)
    }

    /// Whether the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, p: &Coordinates) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Geographic center of the box.
    pub fn center(&self) -> Coordinates {
        Coordinates::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Approximate extent of the box as (width_km, height_km), measured along
    /// the box center.  The paper annotates each mesoscale region map with
    /// such an extent (e.g. "807 km × 712 km" for Florida in Figure 2).
    pub fn extent_km(&self) -> (f64, f64) {
        let mid_lat = (self.min_lat + self.max_lat) / 2.0;
        let west = Coordinates::new(mid_lat, self.min_lon);
        let east = Coordinates::new(mid_lat, self.max_lon);
        let south = Coordinates::new(self.min_lat, (self.min_lon + self.max_lon) / 2.0);
        let north = Coordinates::new(self.max_lat, (self.min_lon + self.max_lon) / 2.0);
        (west.distance_km(&east), south.distance_km(&north))
    }
}

/// A named mesoscale region: a set of member locations plus a human-readable
/// name, e.g. the "Florida" or "Central EU" regions of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable region name.
    pub name: String,
    /// Member locations (typically edge data-center cities).
    pub members: Vec<(String, Coordinates)>,
}

impl Region {
    /// Creates a region from named member locations.
    pub fn new(name: impl Into<String>, members: Vec<(String, Coordinates)>) -> Self {
        Self {
            name: name.into(),
            members,
        }
    }

    /// Number of member locations.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the region has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Bounding box covering all members (None when empty).
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        let pts: Vec<Coordinates> = self.members.iter().map(|(_, c)| *c).collect();
        BoundingBox::covering(&pts)
    }

    /// Maximum pairwise great-circle distance between members, in km.
    ///
    /// The paper's definition of a mesoscale region is one whose diameter is
    /// tens to a few hundred kilometers; this accessor lets tests assert that
    /// the preset regions satisfy that property.
    pub fn diameter_km(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                max = max.max(self.members[i].1.distance_km(&self.members[j].1));
            }
        }
        max
    }

    /// Looks up a member's coordinates by name.
    pub fn coordinates_of(&self, name: &str) -> Option<Coordinates> {
        self.members
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn florida() -> Region {
        Region::new(
            "Florida",
            vec![
                ("Miami".to_string(), Coordinates::new(25.7617, -80.1918)),
                ("Orlando".to_string(), Coordinates::new(28.5384, -81.3789)),
                ("Tampa".to_string(), Coordinates::new(27.9506, -82.4572)),
                (
                    "Tallahassee".to_string(),
                    Coordinates::new(30.4383, -84.2807),
                ),
                (
                    "Jacksonville".to_string(),
                    Coordinates::new(30.3322, -81.6557),
                ),
            ],
        )
    }

    #[test]
    fn bounding_box_covering_contains_all() {
        let region = florida();
        let bb = region.bounding_box().unwrap();
        for (_, c) in &region.members {
            assert!(bb.contains(c));
        }
    }

    #[test]
    fn covering_empty_is_none() {
        assert!(BoundingBox::covering(&[]).is_none());
    }

    #[test]
    fn extent_of_florida_region_is_hundreds_of_km() {
        let bb = florida().bounding_box().unwrap();
        let (w, h) = bb.extent_km();
        assert!(w > 200.0 && w < 1000.0, "width {w}");
        assert!(h > 200.0 && h < 1000.0, "height {h}");
    }

    #[test]
    fn diameter_of_florida_is_mesoscale() {
        let d = florida().diameter_km();
        // Tallahassee-Miami is the largest pairwise distance, ~650 km.
        assert!(d > 400.0 && d < 800.0, "diameter {d}");
    }

    #[test]
    fn contains_rejects_outside_points() {
        let bb = BoundingBox::new(25.0, 31.0, -85.0, -80.0);
        assert!(!bb.contains(&Coordinates::new(40.0, -82.0)));
        assert!(!bb.contains(&Coordinates::new(27.0, -70.0)));
    }

    #[test]
    fn center_is_inside() {
        let bb = BoundingBox::new(25.0, 31.0, -85.0, -80.0);
        assert!(bb.contains(&bb.center()));
    }

    #[test]
    fn coordinates_of_finds_member() {
        let region = florida();
        assert!(region.coordinates_of("Miami").is_some());
        assert!(region.coordinates_of("Boston").is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_bounding_box_panics() {
        BoundingBox::new(10.0, 5.0, 0.0, 1.0);
    }

    #[test]
    fn empty_region_has_zero_diameter() {
        let r = Region::new("empty", vec![]);
        assert!(r.is_empty());
        assert_eq!(r.diameter_km(), 0.0);
        assert!(r.bounding_box().is_none());
    }
}
