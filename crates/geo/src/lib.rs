#![forbid(unsafe_code)]
//! Geographic primitives for CarbonEdge.
//!
//! This crate provides the small geographic substrate that the rest of the
//! workspace builds on: coordinates, great-circle (haversine) distances,
//! bounding boxes, and named mesoscale regions.  The paper's mesoscale
//! analysis (Section 3) and the CDN-scale evaluation (Section 6.3) are both
//! driven by pairwise distances between edge data centers, which this crate
//! computes.

pub mod coord;
pub mod region;

pub use coord::{haversine_km, Coordinates, EARTH_RADIUS_KM};
pub use region::{BoundingBox, Region};
