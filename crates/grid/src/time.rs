//! Simulation time: hours of a (non-leap) year.

use serde::{Deserialize, Serialize};

/// Hours in a simulated day.
pub const HOURS_PER_DAY: usize = 24;
/// Hours in the simulated (non-leap) year used by all traces.
pub const HOURS_PER_YEAR: usize = 365 * HOURS_PER_DAY;

/// Days in each month of the simulated year (non-leap, like 2023).
pub const DAYS_PER_MONTH: [usize; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// An hour index within the simulated year, in `[0, HOURS_PER_YEAR)`.
///
/// All traces in the workspace are indexed by `HourOfYear`, mirroring the
/// hourly resolution of the Electricity Maps data used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HourOfYear(pub usize);

impl HourOfYear {
    /// First hour of the year.
    pub const START: HourOfYear = HourOfYear(0);

    /// Creates an hour index, wrapping values past the end of the year.
    pub fn new(hour: usize) -> Self {
        HourOfYear(hour % HOURS_PER_YEAR)
    }

    /// The raw hour index.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Hour of day in `[0, 24)`.
    pub fn hour_of_day(&self) -> usize {
        self.0 % HOURS_PER_DAY
    }

    /// Day of year in `[0, 365)`.
    pub fn day_of_year(&self) -> usize {
        self.0 / HOURS_PER_DAY
    }

    /// Month index in `[0, 12)`.
    pub fn month(&self) -> usize {
        let mut day = self.day_of_year();
        for (m, &len) in DAYS_PER_MONTH.iter().enumerate() {
            if day < len {
                return m;
            }
            day -= len;
        }
        11
    }

    /// Three-letter month name (Jan..Dec).
    pub fn month_name(&self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[self.month()]
    }

    /// Advances by `hours`, wrapping at the end of the year.
    pub fn plus(&self, hours: usize) -> HourOfYear {
        HourOfYear::new(self.0 + hours)
    }

    /// Iterator over every hour of the simulated year.
    pub fn all() -> impl Iterator<Item = HourOfYear> {
        (0..HOURS_PER_YEAR).map(HourOfYear)
    }

    /// Iterator over every hour of a given month (0-based).
    pub fn month_hours(month: usize) -> impl Iterator<Item = HourOfYear> {
        let start_day: usize = DAYS_PER_MONTH[..month].iter().sum();
        let days = DAYS_PER_MONTH[month];
        (start_day * HOURS_PER_DAY..(start_day + days) * HOURS_PER_DAY).map(HourOfYear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_per_year_is_8760() {
        assert_eq!(HOURS_PER_YEAR, 8760);
        assert_eq!(DAYS_PER_MONTH.iter().sum::<usize>(), 365);
    }

    #[test]
    fn wrapping_constructor() {
        assert_eq!(HourOfYear::new(HOURS_PER_YEAR + 5).index(), 5);
    }

    #[test]
    fn hour_of_day_and_day_of_year() {
        let h = HourOfYear::new(25);
        assert_eq!(h.hour_of_day(), 1);
        assert_eq!(h.day_of_year(), 1);
    }

    #[test]
    fn month_boundaries() {
        assert_eq!(HourOfYear::new(0).month(), 0);
        assert_eq!(HourOfYear::new(31 * 24 - 1).month(), 0);
        assert_eq!(HourOfYear::new(31 * 24).month(), 1);
        assert_eq!(HourOfYear::new(HOURS_PER_YEAR - 1).month(), 11);
    }

    #[test]
    fn month_names() {
        assert_eq!(HourOfYear::new(0).month_name(), "Jan");
        assert_eq!(HourOfYear::new(HOURS_PER_YEAR - 1).month_name(), "Dec");
    }

    #[test]
    fn month_hours_cover_year_exactly_once() {
        let mut count = 0usize;
        for m in 0..12 {
            count += HourOfYear::month_hours(m).count();
        }
        assert_eq!(count, HOURS_PER_YEAR);
    }

    #[test]
    fn month_hours_agree_with_month() {
        for m in 0..12 {
            for h in HourOfYear::month_hours(m) {
                assert_eq!(h.month(), m);
            }
        }
    }

    #[test]
    fn plus_wraps() {
        let h = HourOfYear::new(HOURS_PER_YEAR - 1);
        assert_eq!(h.plus(2).index(), 1);
    }

    #[test]
    fn all_yields_every_hour() {
        assert_eq!(HourOfYear::all().count(), HOURS_PER_YEAR);
    }
}
