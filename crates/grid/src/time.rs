//! Simulation time: hours of a (non-leap) year.

use serde::{Deserialize, Serialize};

/// Hours in a simulated day.
pub const HOURS_PER_DAY: usize = 24;
/// Hours in the simulated (non-leap) year used by all traces.
pub const HOURS_PER_YEAR: usize = 365 * HOURS_PER_DAY;

/// Days in each month of the simulated year (non-leap, like 2023).
pub const DAYS_PER_MONTH: [usize; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// An hour index within the simulated year, in `[0, HOURS_PER_YEAR)`.
///
/// All traces in the workspace are indexed by `HourOfYear`, mirroring the
/// hourly resolution of the Electricity Maps data used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HourOfYear(pub usize);

impl HourOfYear {
    /// First hour of the year.
    pub const START: HourOfYear = HourOfYear(0);

    /// Creates an hour index, wrapping values past the end of the year.
    pub fn new(hour: usize) -> Self {
        HourOfYear(hour % HOURS_PER_YEAR)
    }

    /// The raw hour index.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Hour of day in `[0, 24)`.
    pub fn hour_of_day(&self) -> usize {
        self.0 % HOURS_PER_DAY
    }

    /// Day of year in `[0, 365)`.
    pub fn day_of_year(&self) -> usize {
        self.0 / HOURS_PER_DAY
    }

    /// Month index in `[0, 12)`.
    pub fn month(&self) -> usize {
        let mut day = self.day_of_year();
        for (m, &len) in DAYS_PER_MONTH.iter().enumerate() {
            if day < len {
                return m;
            }
            day -= len;
        }
        11
    }

    /// Three-letter month name (Jan..Dec).
    pub fn month_name(&self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[self.month()]
    }

    /// Advances by `hours`, wrapping at the end of the year.
    pub fn plus(&self, hours: usize) -> HourOfYear {
        HourOfYear::new(self.0 + hours)
    }

    /// Iterator over every hour of the simulated year.
    pub fn all() -> impl Iterator<Item = HourOfYear> {
        (0..HOURS_PER_YEAR).map(HourOfYear)
    }

    /// Iterator over every hour of a given month (0-based).
    pub fn month_hours(month: usize) -> impl Iterator<Item = HourOfYear> {
        let start_day: usize = DAYS_PER_MONTH[..month].iter().sum();
        let days = DAYS_PER_MONTH[month];
        (start_day * HOURS_PER_DAY..(start_day + days) * HOURS_PER_DAY).map(HourOfYear)
    }
}

/// One placement epoch: a contiguous, non-wrapping hour range of the
/// simulated year over which a placement decision stays in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epoch {
    /// Position in the schedule, `[0, epoch_count)`.
    pub index: usize,
    /// First hour of the epoch.
    pub start: HourOfYear,
    /// Number of hours the epoch spans.
    pub hours: usize,
}

/// How often a year-long simulation re-solves its placement: the year is
/// partitioned into consecutive epochs, a decision is made at each epoch's
/// first hour against the forecast mean intensity over the epoch, and
/// realized carbon is accounted from the actual trace over the same hours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EpochSchedule {
    /// Twelve calendar-month epochs (the legacy CDN-simulation granularity).
    Monthly,
    /// Fifty-two 168-hour epochs; the final epoch absorbs the year's
    /// remaining day (192 hours), so the partition is exact.
    Weekly,
    /// 365 one-day epochs.
    Daily,
}

impl EpochSchedule {
    /// Display name used in reports and sweep axes.
    pub fn name(&self) -> &'static str {
        match self {
            EpochSchedule::Monthly => "monthly",
            EpochSchedule::Weekly => "weekly",
            EpochSchedule::Daily => "daily",
        }
    }

    /// Number of epochs in the schedule.
    pub fn epoch_count(&self) -> usize {
        match self {
            EpochSchedule::Monthly => 12,
            EpochSchedule::Weekly => 52,
            EpochSchedule::Daily => 365,
        }
    }

    /// The epochs of the schedule, in order; together they cover every hour
    /// of the year exactly once and never wrap past the year end.
    pub fn epochs(&self) -> Vec<Epoch> {
        match self {
            EpochSchedule::Monthly => {
                let mut start = 0usize;
                DAYS_PER_MONTH
                    .iter()
                    .enumerate()
                    .map(|(index, days)| {
                        let hours = days * HOURS_PER_DAY;
                        let epoch = Epoch {
                            index,
                            start: HourOfYear(start),
                            hours,
                        };
                        start += hours;
                        epoch
                    })
                    .collect()
            }
            EpochSchedule::Weekly => (0..52)
                .map(|index| {
                    let start = index * 7 * HOURS_PER_DAY;
                    let hours = if index == 51 {
                        HOURS_PER_YEAR - start
                    } else {
                        7 * HOURS_PER_DAY
                    };
                    Epoch {
                        index,
                        start: HourOfYear(start),
                        hours,
                    }
                })
                .collect(),
            EpochSchedule::Daily => (0..365)
                .map(|index| Epoch {
                    index,
                    start: HourOfYear(index * HOURS_PER_DAY),
                    hours: HOURS_PER_DAY,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_per_year_is_8760() {
        assert_eq!(HOURS_PER_YEAR, 8760);
        assert_eq!(DAYS_PER_MONTH.iter().sum::<usize>(), 365);
    }

    #[test]
    fn wrapping_constructor() {
        assert_eq!(HourOfYear::new(HOURS_PER_YEAR + 5).index(), 5);
    }

    #[test]
    fn hour_of_day_and_day_of_year() {
        let h = HourOfYear::new(25);
        assert_eq!(h.hour_of_day(), 1);
        assert_eq!(h.day_of_year(), 1);
    }

    #[test]
    fn month_boundaries() {
        assert_eq!(HourOfYear::new(0).month(), 0);
        assert_eq!(HourOfYear::new(31 * 24 - 1).month(), 0);
        assert_eq!(HourOfYear::new(31 * 24).month(), 1);
        assert_eq!(HourOfYear::new(HOURS_PER_YEAR - 1).month(), 11);
    }

    #[test]
    fn month_names() {
        assert_eq!(HourOfYear::new(0).month_name(), "Jan");
        assert_eq!(HourOfYear::new(HOURS_PER_YEAR - 1).month_name(), "Dec");
    }

    #[test]
    fn month_hours_cover_year_exactly_once() {
        let mut count = 0usize;
        for m in 0..12 {
            count += HourOfYear::month_hours(m).count();
        }
        assert_eq!(count, HOURS_PER_YEAR);
    }

    #[test]
    fn month_hours_agree_with_month() {
        for m in 0..12 {
            for h in HourOfYear::month_hours(m) {
                assert_eq!(h.month(), m);
            }
        }
    }

    #[test]
    fn plus_wraps() {
        let h = HourOfYear::new(HOURS_PER_YEAR - 1);
        assert_eq!(h.plus(2).index(), 1);
    }

    #[test]
    fn all_yields_every_hour() {
        assert_eq!(HourOfYear::all().count(), HOURS_PER_YEAR);
    }

    #[test]
    fn every_schedule_partitions_the_year_exactly() {
        for schedule in [
            EpochSchedule::Monthly,
            EpochSchedule::Weekly,
            EpochSchedule::Daily,
        ] {
            let epochs = schedule.epochs();
            assert_eq!(epochs.len(), schedule.epoch_count(), "{}", schedule.name());
            let mut next = 0usize;
            for (k, epoch) in epochs.iter().enumerate() {
                assert_eq!(epoch.index, k);
                assert_eq!(epoch.start.index(), next, "{} gap", schedule.name());
                assert!(epoch.hours > 0);
                next += epoch.hours;
            }
            assert_eq!(
                next,
                HOURS_PER_YEAR,
                "{} must cover the year",
                schedule.name()
            );
        }
    }

    #[test]
    fn monthly_epochs_align_with_calendar_months() {
        for epoch in EpochSchedule::Monthly.epochs() {
            assert_eq!(epoch.start.month(), epoch.index);
            assert_eq!(epoch.hours, DAYS_PER_MONTH[epoch.index] * HOURS_PER_DAY);
        }
    }

    #[test]
    fn weekly_last_epoch_absorbs_the_leftover_day() {
        let epochs = EpochSchedule::Weekly.epochs();
        assert!(epochs[..51].iter().all(|e| e.hours == 168));
        assert_eq!(epochs[51].hours, 192);
    }
}
