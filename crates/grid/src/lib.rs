#![forbid(unsafe_code)]
//! Electric-grid carbon-intensity substrate for CarbonEdge.
//!
//! The paper relies on hourly carbon-intensity traces from Electricity Maps
//! for 148 carbon zones over the year 2023 (Section 6.1.1).  Those traces are
//! proprietary, so this crate builds the closest synthetic equivalent: each
//! carbon zone is described by an [`mix::EnergyMix`] plus renewable
//! variability parameters ([`zone::ZoneProfile`]), and an hourly trace for a
//! whole year is generated deterministically from a seed
//! ([`trace::TraceGenerator`]).  The per-source carbon factors are standard
//! lifecycle values (IPCC AR5 medians), so the absolute magnitudes
//! (g·CO2eq/kWh) land in the same ranges the paper reports.
//!
//! On top of the traces, the crate provides the *carbon intensity service*
//! of the CarbonEdge architecture (Figure 6, step 0): real-time lookups and
//! forecasts used by the placement service ([`service::CarbonIntensityService`]).

pub mod forecast;
pub mod mix;
pub mod service;
pub mod source;
pub mod time;
pub mod trace;
pub mod zone;

pub use forecast::{
    Forecaster, ForecasterKind, MovingAverageForecaster, OracleForecaster, PersistenceForecaster,
};
pub use mix::EnergyMix;
pub use service::CarbonIntensityService;
pub use source::EnergySource;
pub use time::{Epoch, EpochSchedule, HourOfYear, HOURS_PER_DAY, HOURS_PER_YEAR};
pub use trace::{CarbonTrace, TraceGenerator};
pub use zone::{ZoneId, ZoneProfile};
