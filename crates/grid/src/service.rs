//! The carbon-intensity service of the CarbonEdge architecture.
//!
//! In the prototype (Section 5.1) this service replays historical Electricity
//! Maps traces and exposes real-time values and forecasts to the placement
//! service.  Here it wraps the synthetic zone traces and a pluggable
//! [`Forecaster`].

use crate::forecast::{Forecaster, PersistenceForecaster};
use crate::time::HourOfYear;
use crate::trace::CarbonTrace;
use crate::zone::ZoneId;
use std::sync::Arc;

/// Replays per-zone carbon-intensity traces and serves current values and
/// forecast means, mirroring the "Carbon Intensity Service" box of Figure 6.
///
/// The traces are held behind an `Arc`, so a simulator (or many sweep cells)
/// can stand up a service over an already-shared year of traces without
/// copying them.
pub struct CarbonIntensityService {
    traces: Arc<Vec<CarbonTrace>>,
    forecaster: Box<dyn Forecaster>,
    /// Forecast horizon used for the average intensity Ī (hours).
    pub horizon_hours: usize,
}

impl CarbonIntensityService {
    /// Creates a service over a set of zone traces (indexed by [`ZoneId`])
    /// with the default persistence forecaster and a 1-hour horizon.
    pub fn new(traces: Vec<CarbonTrace>) -> Self {
        Self::shared(Arc::new(traces))
    }

    /// Creates a service over traces already shared elsewhere (e.g. a
    /// simulation's per-seed trace cache) without cloning them.
    pub fn shared(traces: Arc<Vec<CarbonTrace>>) -> Self {
        Self {
            traces,
            forecaster: Box::new(PersistenceForecaster),
            horizon_hours: 1,
        }
    }

    /// Replaces the forecaster.
    pub fn with_forecaster(
        mut self,
        forecaster: Box<dyn Forecaster>,
        horizon_hours: usize,
    ) -> Self {
        self.forecaster = forecaster;
        self.horizon_hours = horizon_hours.max(1);
        self
    }

    /// Number of zones served.
    pub fn zone_count(&self) -> usize {
        self.traces.len()
    }

    /// Real-time carbon intensity of a zone at `now` (g·CO2eq/kWh).
    pub fn current(&self, zone: ZoneId, now: HourOfYear) -> f64 {
        self.traces[zone.index()].at(now)
    }

    /// Average forecast carbon intensity Ī for a zone over the configured
    /// horizon starting at `now`.
    pub fn forecast_mean(&self, zone: ZoneId, now: HourOfYear) -> f64 {
        self.forecast_mean_over(zone, now, self.horizon_hours)
    }

    /// Average forecast carbon intensity Ī for a zone over an explicit
    /// horizon starting at `now` — the epoch re-placement engine calls this
    /// with each epoch's length (months differ in length, and the final
    /// weekly epoch absorbs the year's leftover day).
    pub fn forecast_mean_over(&self, zone: ZoneId, now: HourOfYear, horizon_hours: usize) -> f64 {
        self.forecaster
            .forecast_mean(&self.traces[zone.index()], now, horizon_hours)
    }

    /// Direct access to a zone trace (used by the analysis crate).
    pub fn trace(&self, zone: ZoneId) -> &CarbonTrace {
        &self.traces[zone.index()]
    }

    /// All traces in zone order.
    pub fn traces(&self) -> &[CarbonTrace] {
        &self.traces
    }

    /// The zone with the lowest current carbon intensity at `now`.  Ties
    /// break deterministically toward the lowest [`ZoneId`] — made explicit
    /// by the index comparison rather than left to `min_by`'s first-wins
    /// tie rule; malformed readings order after every real value under
    /// `f64::total_cmp` instead of panicking.
    pub fn greenest_zone(&self, now: HourOfYear) -> Option<ZoneId> {
        (0..self.traces.len())
            .min_by(|a, b| {
                self.traces[*a]
                    .at(now)
                    .total_cmp(&self.traces[*b].at(now))
                    .then(a.cmp(b))
            })
            .map(ZoneId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::OracleForecaster;
    use crate::time::HOURS_PER_YEAR;

    fn service() -> CarbonIntensityService {
        CarbonIntensityService::new(vec![
            CarbonTrace::constant(100.0),
            CarbonTrace::constant(30.0),
            CarbonTrace::constant(700.0),
        ])
    }

    #[test]
    fn current_reads_trace() {
        let s = service();
        assert_eq!(s.current(ZoneId(2), HourOfYear(0)), 700.0);
        assert_eq!(s.zone_count(), 3);
    }

    #[test]
    fn greenest_zone_is_lowest() {
        let s = service();
        assert_eq!(s.greenest_zone(HourOfYear(10)), Some(ZoneId(1)));
    }

    #[test]
    fn greenest_zone_empty_is_none() {
        let s = CarbonIntensityService::new(vec![]);
        assert!(s.greenest_zone(HourOfYear(0)).is_none());
    }

    #[test]
    fn greenest_zone_breaks_ties_by_lowest_zone_id() {
        // The lowest-id tie rule is part of the documented contract (and
        // stated explicitly in the comparator rather than inherited from
        // `min_by`'s first-wins behavior).
        let s = CarbonIntensityService::new(vec![
            CarbonTrace::constant(500.0),
            CarbonTrace::constant(30.0),
            CarbonTrace::constant(30.0),
        ]);
        assert_eq!(s.greenest_zone(HourOfYear(7)), Some(ZoneId(1)));
    }

    #[test]
    fn greenest_zone_survives_nan_readings() {
        // Regression: `partial_cmp(..).unwrap()` panicked on NaN readings.
        // NaN cannot enter through the public trace constructors, but the
        // service must stay robust to malformed data: under `total_cmp` a
        // NaN orders after every real value and simply loses.
        let nan_trace = CarbonTrace::unchecked_for_tests(vec![f64::NAN; HOURS_PER_YEAR]);
        let s = CarbonIntensityService::new(vec![
            nan_trace,
            CarbonTrace::constant(80.0),
            CarbonTrace::constant(40.0),
        ]);
        assert_eq!(s.greenest_zone(HourOfYear(0)), Some(ZoneId(2)));
        // All-NaN readings still resolve deterministically (lowest id).
        let all_nan = CarbonIntensityService::new(vec![
            CarbonTrace::unchecked_for_tests(vec![f64::NAN; HOURS_PER_YEAR]),
            CarbonTrace::unchecked_for_tests(vec![f64::NAN; HOURS_PER_YEAR]),
        ]);
        assert_eq!(all_nan.greenest_zone(HourOfYear(0)), Some(ZoneId(0)));
    }

    #[test]
    fn forecast_mean_uses_configured_forecaster() {
        let ramp: Vec<f64> = (0..HOURS_PER_YEAR).map(|i| i as f64).collect();
        let s = CarbonIntensityService::new(vec![CarbonTrace::from_values(ramp).unwrap()])
            .with_forecaster(Box::new(OracleForecaster), 2);
        // Oracle over the window [10, 12): hours 10 and 11 -> 10.5.
        assert!((s.forecast_mean(ZoneId(0), HourOfYear(10)) - 10.5).abs() < 1e-9);
        // An explicit horizon overrides the configured one: [10, 14) -> 11.5.
        assert!((s.forecast_mean_over(ZoneId(0), HourOfYear(10), 4) - 11.5).abs() < 1e-9);
    }

    #[test]
    fn default_forecast_is_persistence() {
        let s = service();
        assert_eq!(s.forecast_mean(ZoneId(0), HourOfYear(5)), 100.0);
    }

    #[test]
    fn horizon_is_clamped_to_at_least_one() {
        let s = service().with_forecaster(Box::new(OracleForecaster), 0);
        assert_eq!(s.horizon_hours, 1);
    }

    #[test]
    fn shared_traces_are_not_cloned() {
        let traces = Arc::new(vec![CarbonTrace::constant(10.0)]);
        let s = CarbonIntensityService::shared(Arc::clone(&traces));
        assert_eq!(s.current(ZoneId(0), HourOfYear(0)), 10.0);
        assert_eq!(Arc::strong_count(&traces), 2);
    }
}
