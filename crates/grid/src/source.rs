//! Generation sources and their lifecycle carbon-intensity factors.

use serde::{Deserialize, Serialize};

/// An electricity generation source.
///
/// The set mirrors the source categories reported by Electricity Maps and
/// used in Figure 1a of the paper (hydro, solar, wind, nuclear, fossil
/// fuels), with the fossil category broken out into coal, gas and oil so the
/// synthetic mixes can reproduce the large spread between coal-heavy zones
/// (e.g. Poland, ~750 g·CO2eq/kWh) and gas-heavy zones (~400-500 g).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergySource {
    /// Hydroelectric generation.
    Hydro,
    /// Photovoltaic solar generation.
    Solar,
    /// Onshore/offshore wind generation.
    Wind,
    /// Nuclear generation.
    Nuclear,
    /// Hard coal / lignite generation.
    Coal,
    /// Natural-gas generation.
    Gas,
    /// Oil-fired generation.
    Oil,
    /// Biomass generation.
    Biomass,
    /// Geothermal generation.
    Geothermal,
    /// Battery discharge (treated as low-carbon storage).
    Battery,
}

impl EnergySource {
    /// All source variants, in a stable order.
    pub const ALL: [EnergySource; 10] = [
        EnergySource::Hydro,
        EnergySource::Solar,
        EnergySource::Wind,
        EnergySource::Nuclear,
        EnergySource::Coal,
        EnergySource::Gas,
        EnergySource::Oil,
        EnergySource::Biomass,
        EnergySource::Geothermal,
        EnergySource::Battery,
    ];

    /// Lifecycle carbon-intensity factor of the source in g·CO2eq/kWh.
    ///
    /// Values are the IPCC AR5 median lifecycle emission factors, which are
    /// also what Electricity Maps uses by default; they make the synthetic
    /// traces land in the same absolute ranges as the paper's Figure 1b
    /// (e.g. Ontario ≈ 30-60, Poland ≈ 600-800).
    pub fn carbon_factor(&self) -> f64 {
        match self {
            EnergySource::Hydro => 24.0,
            EnergySource::Solar => 45.0,
            EnergySource::Wind => 11.0,
            EnergySource::Nuclear => 12.0,
            EnergySource::Coal => 820.0,
            EnergySource::Gas => 490.0,
            EnergySource::Oil => 650.0,
            EnergySource::Biomass => 230.0,
            EnergySource::Geothermal => 38.0,
            EnergySource::Battery => 60.0,
        }
    }

    /// Whether the source is conventionally considered low-carbon
    /// (renewables, nuclear, storage).
    pub fn is_low_carbon(&self) -> bool {
        self.carbon_factor() < 100.0
    }

    /// Whether the source is variable/intermittent (its output depends on
    /// weather and time of day).
    pub fn is_variable(&self) -> bool {
        matches!(self, EnergySource::Solar | EnergySource::Wind)
    }

    /// Whether the source is a fossil fuel.
    pub fn is_fossil(&self) -> bool {
        matches!(
            self,
            EnergySource::Coal | EnergySource::Gas | EnergySource::Oil
        )
    }

    /// Short lowercase label (matches the legend style of Figure 1a).
    pub fn label(&self) -> &'static str {
        match self {
            EnergySource::Hydro => "hydro",
            EnergySource::Solar => "solar",
            EnergySource::Wind => "wind",
            EnergySource::Nuclear => "nuclear",
            EnergySource::Coal => "coal",
            EnergySource::Gas => "gas",
            EnergySource::Oil => "oil",
            EnergySource::Biomass => "biomass",
            EnergySource::Geothermal => "geothermal",
            EnergySource::Battery => "battery",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_have_positive_factors() {
        for s in EnergySource::ALL {
            assert!(s.carbon_factor() > 0.0, "{s:?}");
        }
    }

    #[test]
    fn coal_is_dirtiest() {
        for s in EnergySource::ALL {
            assert!(EnergySource::Coal.carbon_factor() >= s.carbon_factor());
        }
    }

    #[test]
    fn wind_and_nuclear_are_cleanest() {
        let min = EnergySource::ALL
            .iter()
            .map(|s| s.carbon_factor())
            .fold(f64::INFINITY, f64::min);
        assert!(EnergySource::Wind.carbon_factor() <= min + 1.0);
    }

    #[test]
    fn low_carbon_classification() {
        assert!(EnergySource::Hydro.is_low_carbon());
        assert!(EnergySource::Wind.is_low_carbon());
        assert!(EnergySource::Nuclear.is_low_carbon());
        assert!(!EnergySource::Coal.is_low_carbon());
        assert!(!EnergySource::Gas.is_low_carbon());
        assert!(!EnergySource::Biomass.is_low_carbon());
    }

    #[test]
    fn variable_sources() {
        assert!(EnergySource::Solar.is_variable());
        assert!(EnergySource::Wind.is_variable());
        assert!(!EnergySource::Nuclear.is_variable());
        assert!(!EnergySource::Hydro.is_variable());
    }

    #[test]
    fn fossil_classification() {
        assert!(EnergySource::Coal.is_fossil());
        assert!(EnergySource::Gas.is_fossil());
        assert!(EnergySource::Oil.is_fossil());
        assert!(!EnergySource::Solar.is_fossil());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = EnergySource::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EnergySource::ALL.len());
    }
}
