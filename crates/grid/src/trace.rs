//! Hourly carbon-intensity traces and the synthetic trace generator.

use crate::time::{HourOfYear, HOURS_PER_DAY, HOURS_PER_YEAR};
use crate::zone::ZoneProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An hourly carbon-intensity trace for one carbon zone over the simulated
/// year, in g·CO2eq/kWh.
///
/// This is the in-memory equivalent of one zone's Electricity Maps CSV used
/// by the paper (Section 6.1.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonTrace {
    values: Vec<f64>,
}

impl CarbonTrace {
    /// Wraps a vector of hourly values.  The vector must have exactly
    /// [`HOURS_PER_YEAR`] entries, all finite and non-negative.
    pub fn from_values(values: Vec<f64>) -> Option<Self> {
        if values.len() != HOURS_PER_YEAR {
            return None;
        }
        if values.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return None;
        }
        Some(Self { values })
    }

    /// A constant trace (useful in tests and for hypothetical zero-carbon zones).
    pub fn constant(value: f64) -> Self {
        Self {
            values: vec![value.max(0.0); HOURS_PER_YEAR],
        }
    }

    /// Test-only constructor that bypasses validation, for exercising
    /// robustness against malformed readings (e.g. NaN) that the public
    /// constructors reject.
    #[cfg(test)]
    pub(crate) fn unchecked_for_tests(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Carbon intensity at a given hour.
    pub fn at(&self, hour: HourOfYear) -> f64 {
        self.values[hour.index()]
    }

    /// All hourly values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Annual mean carbon intensity.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum hourly value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum hourly value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean over an arbitrary window of hours starting at `start`
    /// (wrapping at the end of the year).
    pub fn window_mean(&self, start: HourOfYear, hours: usize) -> f64 {
        if hours == 0 {
            return self.at(start);
        }
        let mut sum = 0.0;
        for k in 0..hours {
            sum += self.at(start.plus(k));
        }
        sum / hours as f64
    }

    /// Mean carbon intensity over a month (0-based month index).
    pub fn monthly_mean(&self, month: usize) -> f64 {
        let hours: Vec<HourOfYear> = HourOfYear::month_hours(month).collect();
        hours.iter().map(|h| self.at(*h)).sum::<f64>() / hours.len() as f64
    }

    /// Mean of each of the 24 hours of day over the year (the average
    /// diurnal profile).
    pub fn diurnal_profile(&self) -> [f64; HOURS_PER_DAY] {
        let mut sums = [0.0; HOURS_PER_DAY];
        let mut counts = [0usize; HOURS_PER_DAY];
        for h in HourOfYear::all() {
            sums[h.hour_of_day()] += self.at(h);
            counts[h.hour_of_day()] += 1;
        }
        let mut out = [0.0; HOURS_PER_DAY];
        for i in 0..HOURS_PER_DAY {
            out[i] = sums[i] / counts[i] as f64;
        }
        out
    }
}

/// Deterministic synthetic generator of hourly carbon-intensity traces.
///
/// The generator reproduces the structural features of real zone traces that
/// matter for carbon-aware placement:
///
/// * a **diurnal solar cycle** — solar output follows a half-sine between
///   sunrise and sunset, so zones with large solar shares get large midday
///   dips (Figure 4a);
/// * a **seasonal cycle** — solar (and to a lesser degree demand) is
///   modulated over the year, producing the month-to-month swings of
///   Figure 4b;
/// * **stochastic wind** — an AR(1) process makes wind output persist over
///   hours but vary across days;
/// * a **demand swing** — an evening-peaking component that increases the
///   fossil share when demand is high.
///
/// Given the same seed and zone profile the generator always produces the
/// same trace, which keeps every experiment in the workspace reproducible.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator with a global seed.  Each zone's trace is derived
    /// from this seed combined with the zone name, so different zones get
    /// independent (but reproducible) randomness.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    fn zone_seed(&self, profile: &ZoneProfile) -> u64 {
        // FNV-1a over the zone name, mixed with the global seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in profile.name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.seed.rotate_left(17)
    }

    /// Generates the year-long hourly trace for one zone.
    pub fn generate(&self, profile: &ZoneProfile) -> CarbonTrace {
        let mut rng = StdRng::seed_from_u64(self.zone_seed(profile));
        let mut values = Vec::with_capacity(HOURS_PER_YEAR);

        // AR(1) state for wind output around 1.0.
        let mut wind_state = 1.0f64;
        let wind_phi = 0.92; // hour-to-hour persistence
        let wind_sigma = profile.wind_variability * 0.25;

        for hour in HourOfYear::all() {
            let hod = hour.hour_of_day() as f64;
            let doy = hour.day_of_year() as f64;

            // Solar capacity factor: half-sine between 06:00 and 18:00 local,
            // modulated seasonally (peak around day 172, the summer solstice
            // in the northern hemisphere, where all modeled zones are).
            let season = ((doy - 172.0) / 365.0 * std::f64::consts::TAU).cos();
            let seasonal_scale = 1.0 - profile.solar_seasonality * 0.5 * (1.0 - season);
            let solar_diurnal = if (6.0..18.0).contains(&hod) {
                ((hod - 6.0) / 12.0 * std::f64::consts::PI).sin()
            } else {
                0.0
            };
            // Normalize so the *average* solar factor over the year stays near 1.0
            // (the baseline mix is an annual average): the mean of the half-sine
            // over 24h is 2/PI * 12/24 = 1/PI.
            let solar_factor = (solar_diurnal * seasonal_scale) / std::f64::consts::FRAC_1_PI;

            // Wind capacity factor: persistent AR(1) noise around 1.0.
            let noise: f64 = rng.gen_range(-1.0..1.0);
            wind_state = 1.0 + wind_phi * (wind_state - 1.0) + wind_sigma * noise;
            wind_state = wind_state.clamp(0.0, 2.0);
            let wind_factor = wind_state.min(1.5);

            let mix = profile.mix.with_variable_output(solar_factor, wind_factor);
            let mut intensity = mix.carbon_intensity();

            // Demand swing: evening peak (hour 19 local) increases the carbon
            // intensity of marginal generation for fossil-heavy zones.
            let demand = ((hod - 19.0) / 24.0 * std::f64::consts::TAU).cos();
            intensity *= 1.0 + profile.demand_swing * 0.5 * demand * mix.fossil_share();

            // Small measurement-like jitter (±2%).
            let jitter: f64 = rng.gen_range(-0.02..0.02);
            intensity *= 1.0 + jitter;

            values.push(intensity.max(0.0));
        }

        CarbonTrace { values }
    }

    /// Generates traces for many zones at once, in catalog order.
    pub fn generate_all(&self, profiles: &[ZoneProfile]) -> Vec<CarbonTrace> {
        profiles.iter().map(|p| self.generate(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::EnergyMix;
    use crate::source::EnergySource;
    use carbonedge_geo::Coordinates;
    use proptest::prelude::*;

    fn solar_heavy_zone() -> ZoneProfile {
        ZoneProfile::new(
            "SolarZone",
            Coordinates::new(33.0, -112.0),
            EnergyMix::new(&[
                (EnergySource::Solar, 0.35),
                (EnergySource::Gas, 0.45),
                (EnergySource::Nuclear, 0.2),
            ])
            .unwrap(),
        )
        .with_solar_seasonality(0.6)
    }

    fn coal_zone() -> ZoneProfile {
        ZoneProfile::new(
            "CoalZone",
            Coordinates::new(52.0, 19.0),
            EnergyMix::new(&[
                (EnergySource::Coal, 0.7),
                (EnergySource::Gas, 0.2),
                (EnergySource::Wind, 0.1),
            ])
            .unwrap(),
        )
    }

    fn hydro_zone() -> ZoneProfile {
        ZoneProfile::new(
            "HydroZone",
            Coordinates::new(46.9, 7.4),
            EnergyMix::new(&[(EnergySource::Hydro, 0.85), (EnergySource::Nuclear, 0.15)]).unwrap(),
        )
    }

    #[test]
    fn trace_has_full_year() {
        let t = TraceGenerator::new(1).generate(&solar_heavy_zone());
        assert_eq!(t.values().len(), HOURS_PER_YEAR);
    }

    #[test]
    fn generation_is_deterministic() {
        let z = solar_heavy_zone();
        let a = TraceGenerator::new(42).generate(&z);
        let b = TraceGenerator::new(42).generate(&z);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let z = solar_heavy_zone();
        let a = TraceGenerator::new(1).generate(&z);
        let b = TraceGenerator::new(2).generate(&z);
        assert_ne!(a, b);
    }

    #[test]
    fn coal_zone_is_much_dirtier_than_hydro_zone() {
        let gen = TraceGenerator::new(7);
        let coal = gen.generate(&coal_zone());
        let hydro = gen.generate(&hydro_zone());
        assert!(coal.mean() > 500.0, "coal mean {}", coal.mean());
        assert!(hydro.mean() < 60.0, "hydro mean {}", hydro.mean());
        assert!(coal.mean() / hydro.mean() > 8.0);
    }

    #[test]
    fn solar_zone_has_midday_dip() {
        let gen = TraceGenerator::new(7);
        let trace = gen.generate(&solar_heavy_zone());
        let profile = trace.diurnal_profile();
        let midday = profile[12];
        let midnight = profile[0];
        assert!(midday < midnight, "midday {midday} vs midnight {midnight}");
    }

    #[test]
    fn hydro_zone_is_stable_over_day() {
        let gen = TraceGenerator::new(7);
        let trace = gen.generate(&hydro_zone());
        let profile = trace.diurnal_profile();
        let spread = profile.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - profile.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 10.0, "spread {spread}");
    }

    #[test]
    fn seasonal_solar_zone_varies_by_month() {
        let gen = TraceGenerator::new(7);
        let trace = gen.generate(&solar_heavy_zone());
        let june = trace.monthly_mean(5);
        let december = trace.monthly_mean(11);
        assert!(
            december > june,
            "winter should be dirtier for a solar zone: jun {june} dec {december}"
        );
    }

    #[test]
    fn mean_is_between_min_and_max() {
        let t = TraceGenerator::new(3).generate(&coal_zone());
        assert!(t.min() <= t.mean() && t.mean() <= t.max());
    }

    #[test]
    fn window_mean_of_full_year_equals_mean() {
        let t = TraceGenerator::new(3).generate(&coal_zone());
        let wm = t.window_mean(HourOfYear::START, HOURS_PER_YEAR);
        assert!((wm - t.mean()).abs() < 1e-9);
    }

    #[test]
    fn from_values_validates_length_and_content() {
        assert!(CarbonTrace::from_values(vec![1.0; 10]).is_none());
        assert!(CarbonTrace::from_values(vec![-1.0; HOURS_PER_YEAR]).is_none());
        assert!(CarbonTrace::from_values(vec![f64::NAN; HOURS_PER_YEAR]).is_none());
        assert!(CarbonTrace::from_values(vec![100.0; HOURS_PER_YEAR]).is_some());
    }

    #[test]
    fn constant_trace_is_flat() {
        let t = CarbonTrace::constant(123.0);
        assert_eq!(t.mean(), 123.0);
        assert_eq!(t.min(), t.max());
    }

    #[test]
    fn generate_all_preserves_order() {
        let zones = vec![coal_zone(), hydro_zone()];
        let traces = TraceGenerator::new(5).generate_all(&zones);
        assert_eq!(traces.len(), 2);
        assert!(traces[0].mean() > traces[1].mean());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn generated_traces_stay_within_physical_bounds(seed in 0u64..1000) {
            let gen = TraceGenerator::new(seed);
            for zone in [solar_heavy_zone(), coal_zone(), hydro_zone()] {
                let t = gen.generate(&zone);
                prop_assert!(t.min() >= 0.0);
                // Nothing can be dirtier than pure coal plus the demand swing/jitter margin.
                prop_assert!(t.max() <= 820.0 * 1.3);
            }
        }
    }
}
