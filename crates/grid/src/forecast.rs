//! Carbon-intensity forecasting.
//!
//! The placement objective of the paper uses the *average of the forecast
//! carbon intensity values* Ī_j over the placement horizon (Section 4.2).
//! This module provides the forecasters the carbon-intensity service can be
//! configured with; the oracle forecaster doubles as an ablation baseline.

use crate::time::HourOfYear;
use crate::trace::CarbonTrace;

/// A carbon-intensity forecaster: given the historical trace up to `now`,
/// predict the mean carbon intensity over the next `horizon_hours` hours.
pub trait Forecaster: Send + Sync {
    /// Forecast the mean carbon intensity over `[now+1, now+horizon_hours]`.
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, horizon_hours: usize) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Persistence forecast: the future equals the current value.
///
/// This is the standard naive baseline for short-horizon carbon forecasting
/// and is what real-time-only carbon APIs effectively provide.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistenceForecaster;

impl Forecaster for PersistenceForecaster {
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, _horizon_hours: usize) -> f64 {
        trace.at(now)
    }

    fn name(&self) -> &'static str {
        "persistence"
    }
}

/// Moving-average forecast: the future equals the mean of the last
/// `window_hours` observed values.
#[derive(Debug, Clone, Copy)]
pub struct MovingAverageForecaster {
    /// Number of past hours averaged.
    pub window_hours: usize,
}

impl Default for MovingAverageForecaster {
    fn default() -> Self {
        Self { window_hours: 24 }
    }
}

impl Forecaster for MovingAverageForecaster {
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, _horizon_hours: usize) -> f64 {
        let window = self.window_hours.max(1);
        let mut sum = 0.0;
        for k in 0..window {
            // Look backwards, wrapping at the start of the year.
            let idx = (now.index() + crate::time::HOURS_PER_YEAR - k) % crate::time::HOURS_PER_YEAR;
            sum += trace.at(HourOfYear(idx));
        }
        sum / window as f64
    }

    fn name(&self) -> &'static str {
        "moving-average"
    }
}

/// Oracle forecast: the exact future mean, read from the trace.
///
/// Used for ablations that isolate forecast error from placement quality,
/// analogous to the paper replaying historical Electricity Maps forecasts.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleForecaster;

impl Forecaster for OracleForecaster {
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, horizon_hours: usize) -> f64 {
        let horizon = horizon_hours.max(1);
        let mut sum = 0.0;
        for k in 1..=horizon {
            sum += trace.at(now.plus(k));
        }
        sum / horizon as f64
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOURS_PER_YEAR;

    fn ramp_trace() -> CarbonTrace {
        // A simple ramp 0,1,2,... so forecasts are easy to verify.
        let values: Vec<f64> = (0..HOURS_PER_YEAR).map(|i| i as f64).collect();
        CarbonTrace::from_values(values).unwrap()
    }

    #[test]
    fn persistence_returns_current_value() {
        let t = ramp_trace();
        let f = PersistenceForecaster;
        assert_eq!(f.forecast_mean(&t, HourOfYear(100), 6), 100.0);
    }

    #[test]
    fn moving_average_over_window() {
        let t = ramp_trace();
        let f = MovingAverageForecaster { window_hours: 3 };
        // hours 100, 99, 98 -> mean 99
        assert!((f.forecast_mean(&t, HourOfYear(100), 6) - 99.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_handles_zero_window() {
        let t = ramp_trace();
        let f = MovingAverageForecaster { window_hours: 0 };
        assert_eq!(f.forecast_mean(&t, HourOfYear(5), 1), 5.0);
    }

    #[test]
    fn oracle_returns_future_mean() {
        let t = ramp_trace();
        let f = OracleForecaster;
        // hours 101, 102, 103 -> mean 102
        assert!((f.forecast_mean(&t, HourOfYear(100), 3) - 102.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_on_constant_trace_equals_constant() {
        let t = CarbonTrace::constant(250.0);
        for f in [&OracleForecaster as &dyn Forecaster, &PersistenceForecaster] {
            assert!((f.forecast_mean(&t, HourOfYear(0), 12) - 250.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forecaster_names_are_distinct() {
        let names = [
            PersistenceForecaster.name(),
            MovingAverageForecaster::default().name(),
            OracleForecaster.name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            names.len()
        );
    }
}
