//! Carbon-intensity forecasting.
//!
//! The placement objective of the paper uses the *average of the forecast
//! carbon intensity values* Ī_j over the placement horizon (Section 4.2).
//! This module provides the forecasters the carbon-intensity service can be
//! configured with; the oracle forecaster doubles as an ablation baseline.
//!
//! # Information model
//!
//! A forecast is issued at `now`, the **first hour of an epoch**, and
//! predicts the mean carbon intensity over the window `[now, now +
//! horizon_hours)`, truncated at the end of the simulated year (windows
//! never wrap into January).  At decision time a forecaster may observe the
//! historical trace strictly *before* `now`, plus the real-time reading at
//! `now` itself — real-time carbon APIs expose the current intensity — and
//! nothing later.  Only the oracle is exempt: it reads the future exactly,
//! which makes it the zero-forecast-error ablation the paper replays
//! historical Electricity Maps forecasts against.

use crate::time::{HourOfYear, HOURS_PER_YEAR};
use crate::trace::CarbonTrace;

/// A carbon-intensity forecaster: given the trace observed up to `now`,
/// predict the mean carbon intensity over the next `horizon_hours` hours.
pub trait Forecaster: Send + Sync {
    /// Forecast the mean carbon intensity over `[now, now + horizon_hours)`,
    /// truncated at the end of the year.  Implementations other than the
    /// oracle must only read hours `<= now` of the trace (see the module
    /// docs for the information model).
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, horizon_hours: usize) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Persistence forecast: the future equals the current value.
///
/// This is the standard naive baseline for short-horizon carbon forecasting
/// and is what real-time-only carbon APIs effectively provide.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistenceForecaster;

impl Forecaster for PersistenceForecaster {
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, _horizon_hours: usize) -> f64 {
        trace.at(now)
    }

    fn name(&self) -> &'static str {
        "persistence"
    }
}

/// Moving-average forecast: the future equals the mean of the last
/// `window_hours` *observed* values, i.e. the hours in `[now - window_hours,
/// now)` clamped to the start of the year.  Early in the year the window
/// shrinks to the observed prefix instead of wrapping into December (which
/// would leak future data); at hour 0, with nothing observed yet, it falls
/// back to persistence.
#[derive(Debug, Clone, Copy)]
pub struct MovingAverageForecaster {
    /// Number of past hours averaged.
    pub window_hours: usize,
}

impl Default for MovingAverageForecaster {
    fn default() -> Self {
        Self { window_hours: 24 }
    }
}

impl Forecaster for MovingAverageForecaster {
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, _horizon_hours: usize) -> f64 {
        let window = self.window_hours.max(1);
        if now.index() == 0 {
            // Nothing observed yet: persistence on the real-time reading.
            return trace.at(now);
        }
        let start = now.index().saturating_sub(window);
        let mut sum = 0.0;
        for idx in start..now.index() {
            sum += trace.at(HourOfYear(idx));
        }
        sum / (now.index() - start) as f64
    }

    fn name(&self) -> &'static str {
        "moving-average"
    }
}

/// Oracle forecast: the exact future mean, read from the trace.
///
/// Used for ablations that isolate forecast error from placement quality,
/// analogous to the paper replaying historical Electricity Maps forecasts.
/// The horizon is truncated at the year end rather than wrapped, so a
/// December forecast never averages January data in.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleForecaster;

impl Forecaster for OracleForecaster {
    fn forecast_mean(&self, trace: &CarbonTrace, now: HourOfYear, horizon_hours: usize) -> f64 {
        let remaining = HOURS_PER_YEAR.saturating_sub(now.index()).max(1);
        let horizon = horizon_hours.max(1).min(remaining);
        let mut sum = 0.0;
        for k in 0..horizon {
            sum += trace.at(HourOfYear(now.index() + k));
        }
        sum / horizon as f64
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// A plain-value descriptor of a forecaster configuration: `Copy`, `Eq` and
/// `Hash`, so it can ride scenario axes and configuration structs, and
/// buildable into a boxed [`Forecaster`] for the carbon-intensity service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForecasterKind {
    /// [`OracleForecaster`]: the exact future mean (zero forecast error).
    Oracle,
    /// [`PersistenceForecaster`]: the current reading persists.
    Persistence,
    /// [`MovingAverageForecaster`] with the given look-back window.
    MovingAverage {
        /// Number of past hours averaged.
        window_hours: usize,
    },
}

impl ForecasterKind {
    /// The default moving-average configuration (24-hour look-back).
    pub fn moving_average_24h() -> Self {
        ForecasterKind::MovingAverage { window_hours: 24 }
    }

    /// Compact display label (used by reports and sweep-axis values):
    /// `oracle`, `persistence`, `avg24h`.
    pub fn label(&self) -> String {
        match self {
            ForecasterKind::Oracle => "oracle".to_string(),
            ForecasterKind::Persistence => "persistence".to_string(),
            ForecasterKind::MovingAverage { window_hours } => format!("avg{window_hours}h"),
        }
    }

    /// Builds the forecaster this kind describes.
    pub fn build(&self) -> Box<dyn Forecaster> {
        match self {
            ForecasterKind::Oracle => Box::new(OracleForecaster),
            ForecasterKind::Persistence => Box::new(PersistenceForecaster),
            ForecasterKind::MovingAverage { window_hours } => Box::new(MovingAverageForecaster {
                window_hours: *window_hours,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOURS_PER_YEAR;

    fn ramp_trace() -> CarbonTrace {
        // A simple ramp 0,1,2,... so forecasts are easy to verify.
        let values: Vec<f64> = (0..HOURS_PER_YEAR).map(|i| i as f64).collect();
        CarbonTrace::from_values(values).unwrap()
    }

    #[test]
    fn persistence_returns_current_value() {
        let t = ramp_trace();
        let f = PersistenceForecaster;
        assert_eq!(f.forecast_mean(&t, HourOfYear(100), 6), 100.0);
    }

    #[test]
    fn moving_average_over_observed_window() {
        let t = ramp_trace();
        let f = MovingAverageForecaster { window_hours: 3 };
        // Strictly-past hours 97, 98, 99 -> mean 98.
        assert!((f.forecast_mean(&t, HourOfYear(100), 6) - 98.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_handles_zero_window() {
        let t = ramp_trace();
        let f = MovingAverageForecaster { window_hours: 0 };
        // A zero window clamps to one observed hour: hour 4.
        assert_eq!(f.forecast_mean(&t, HourOfYear(5), 1), 4.0);
    }

    #[test]
    fn moving_average_clamps_to_observed_prefix_at_year_start() {
        // Regression: the look-back window used to wrap past hour 0 into
        // end-of-year hours, leaking future data for early-year decisions.
        let mut values: Vec<f64> = vec![10.0; HOURS_PER_YEAR];
        values[HOURS_PER_YEAR - 1] = 100_000.0; // would dominate if wrapped in
        values[0] = 2.0;
        values[1] = 4.0;
        let t = CarbonTrace::from_values(values).unwrap();
        let f = MovingAverageForecaster { window_hours: 24 };
        // At hour 2 only hours 0 and 1 are observed: mean 3, no December leak.
        assert!((f.forecast_mean(&t, HourOfYear(2), 6) - 3.0).abs() < 1e-9);
        // At hour 0 nothing is observed: fall back to persistence.
        assert_eq!(f.forecast_mean(&t, HourOfYear(0), 6), 2.0);
    }

    #[test]
    fn oracle_returns_future_mean() {
        let t = ramp_trace();
        let f = OracleForecaster;
        // Window [100, 103): hours 100, 101, 102 -> mean 101.
        assert!((f.forecast_mean(&t, HourOfYear(100), 3) - 101.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_truncates_at_year_end() {
        // Regression: the horizon used to wrap via `HourOfYear::plus`,
        // averaging January data into a December horizon.
        let mut values: Vec<f64> = vec![50.0; HOURS_PER_YEAR];
        values[0] = 100_000.0; // would dominate if wrapped in
        let last = HOURS_PER_YEAR - 2;
        values[last] = 10.0;
        values[last + 1] = 20.0;
        let t = CarbonTrace::from_values(values).unwrap();
        let f = OracleForecaster;
        // Only two hours remain: mean 15, regardless of the longer horizon.
        assert!((f.forecast_mean(&t, HourOfYear(last), 24) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_matches_monthly_mean_over_month_windows() {
        // The epoch engine's bit-for-bit legacy guarantee rests on this:
        // an oracle forecast over a calendar month is the month's mean.
        let t = ramp_trace();
        for epoch in crate::time::EpochSchedule::Monthly.epochs() {
            let forecast = OracleForecaster.forecast_mean(&t, epoch.start, epoch.hours);
            assert_eq!(
                forecast,
                t.monthly_mean(epoch.index),
                "month {}",
                epoch.index
            );
        }
    }

    #[test]
    fn oracle_on_constant_trace_equals_constant() {
        let t = CarbonTrace::constant(250.0);
        for f in [&OracleForecaster as &dyn Forecaster, &PersistenceForecaster] {
            assert!((f.forecast_mean(&t, HourOfYear(0), 12) - 250.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forecaster_names_are_distinct() {
        let names = [
            PersistenceForecaster.name(),
            MovingAverageForecaster::default().name(),
            OracleForecaster.name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            names.len()
        );
    }

    #[test]
    fn kind_builds_matching_forecaster_and_labels_are_distinct() {
        let t = ramp_trace();
        let kinds = [
            ForecasterKind::Oracle,
            ForecasterKind::Persistence,
            ForecasterKind::moving_average_24h(),
            ForecasterKind::MovingAverage { window_hours: 168 },
        ];
        let labels: std::collections::HashSet<String> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
        for kind in kinds {
            let built = kind.build();
            assert_eq!(
                built.forecast_mean(&t, HourOfYear(500), 12),
                match kind {
                    ForecasterKind::Oracle =>
                        OracleForecaster.forecast_mean(&t, HourOfYear(500), 12),
                    ForecasterKind::Persistence =>
                        PersistenceForecaster.forecast_mean(&t, HourOfYear(500), 12),
                    ForecasterKind::MovingAverage { window_hours } =>
                        MovingAverageForecaster { window_hours }.forecast_mean(
                            &t,
                            HourOfYear(500),
                            12
                        ),
                }
            );
        }
    }
}
