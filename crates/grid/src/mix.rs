//! Energy mixes: the relative share of each generation source in a zone.

use crate::source::EnergySource;
use serde::{Deserialize, Serialize};

/// The generation mix of a carbon zone: the fraction of supplied electricity
/// coming from each [`EnergySource`].
///
/// The carbon intensity of a zone is the mix-weighted average of the
/// per-source carbon factors (Section 2.1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyMix {
    shares: Vec<(EnergySource, f64)>,
}

impl EnergyMix {
    /// Builds a mix from `(source, share)` pairs.
    ///
    /// Shares must be non-negative; they are normalized so they sum to one.
    /// Returns `None` if all shares are zero or any share is negative/NaN.
    pub fn new(shares: &[(EnergySource, f64)]) -> Option<Self> {
        let mut merged: Vec<(EnergySource, f64)> = Vec::new();
        for &(src, share) in shares {
            if !(share.is_finite()) || share < 0.0 {
                return None;
            }
            if let Some(entry) = merged.iter_mut().find(|(s, _)| *s == src) {
                entry.1 += share;
            } else {
                merged.push((src, share));
            }
        }
        let total: f64 = merged.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return None;
        }
        for entry in &mut merged {
            entry.1 /= total;
        }
        Some(Self { shares: merged })
    }

    /// Convenience constructor for a single-source mix.
    pub fn pure(source: EnergySource) -> Self {
        Self {
            shares: vec![(source, 1.0)],
        }
    }

    /// Share of a given source (0 if absent).
    pub fn share(&self, source: EnergySource) -> f64 {
        self.shares
            .iter()
            .find(|(s, _)| *s == source)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Iterates over `(source, share)` pairs with non-zero shares.
    pub fn iter(&self) -> impl Iterator<Item = (EnergySource, f64)> + '_ {
        self.shares.iter().copied()
    }

    /// Mix-weighted average carbon intensity in g·CO2eq/kWh.
    pub fn carbon_intensity(&self) -> f64 {
        self.shares
            .iter()
            .map(|(s, share)| s.carbon_factor() * share)
            .sum()
    }

    /// Fraction of supply coming from low-carbon sources.
    pub fn low_carbon_share(&self) -> f64 {
        self.shares
            .iter()
            .filter(|(s, _)| s.is_low_carbon())
            .map(|(_, share)| share)
            .sum()
    }

    /// Fraction of supply coming from fossil sources.
    pub fn fossil_share(&self) -> f64 {
        self.shares
            .iter()
            .filter(|(s, _)| s.is_fossil())
            .map(|(_, share)| share)
            .sum()
    }

    /// Returns a new mix where the shares of the variable sources (solar and
    /// wind) have been scaled by the given capacity factors, with the
    /// shortfall (or surplus) absorbed by the non-variable sources
    /// proportionally to their baseline shares.
    ///
    /// This models how a grid dispatches replacement generation when
    /// renewables under-produce (e.g. at night the solar share goes to zero
    /// and gas/coal pick up the slack), which is exactly the mechanism that
    /// produces the diurnal and seasonal carbon-intensity swings shown in
    /// Figure 4 of the paper.
    pub fn with_variable_output(&self, solar_factor: f64, wind_factor: f64) -> EnergyMix {
        let solar_factor = solar_factor.clamp(0.0, 3.0);
        let wind_factor = wind_factor.clamp(0.0, 1.5);
        let mut new_shares: Vec<(EnergySource, f64)> = Vec::with_capacity(self.shares.len());
        let mut variable_total = 0.0;
        let mut firm_total = 0.0;
        for &(src, share) in &self.shares {
            let scaled = match src {
                EnergySource::Solar => share * solar_factor,
                EnergySource::Wind => share * wind_factor,
                _ => {
                    firm_total += share;
                    share
                }
            };
            if src.is_variable() {
                variable_total += scaled;
                new_shares.push((src, scaled));
            } else {
                new_shares.push((src, scaled));
            }
        }
        // The firm sources scale to fill the remaining demand.
        let residual = (1.0 - variable_total).max(0.0);
        if firm_total > 0.0 {
            let scale = residual / firm_total;
            for entry in &mut new_shares {
                if !entry.0.is_variable() {
                    entry.1 *= scale;
                }
            }
        }
        EnergyMix::new(&new_shares).unwrap_or_else(|| self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_mix() -> EnergyMix {
        EnergyMix::new(&[
            (EnergySource::Solar, 0.2),
            (EnergySource::Wind, 0.1),
            (EnergySource::Gas, 0.5),
            (EnergySource::Nuclear, 0.2),
        ])
        .unwrap()
    }

    #[test]
    fn shares_are_normalized() {
        let mix = EnergyMix::new(&[(EnergySource::Coal, 2.0), (EnergySource::Wind, 2.0)]).unwrap();
        assert!((mix.share(EnergySource::Coal) - 0.5).abs() < 1e-12);
        assert!((mix.share(EnergySource::Wind) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_sources_are_merged() {
        let mix = EnergyMix::new(&[
            (EnergySource::Gas, 0.25),
            (EnergySource::Gas, 0.25),
            (EnergySource::Hydro, 0.5),
        ])
        .unwrap();
        assert!((mix.share(EnergySource::Gas) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_or_zero_mix_is_rejected() {
        assert!(EnergyMix::new(&[]).is_none());
        assert!(EnergyMix::new(&[(EnergySource::Gas, 0.0)]).is_none());
        assert!(EnergyMix::new(&[(EnergySource::Gas, -1.0)]).is_none());
        assert!(EnergyMix::new(&[(EnergySource::Gas, f64::NAN)]).is_none());
    }

    #[test]
    fn pure_coal_matches_coal_factor() {
        let mix = EnergyMix::pure(EnergySource::Coal);
        assert!((mix.carbon_intensity() - EnergySource::Coal.carbon_factor()).abs() < 1e-9);
    }

    #[test]
    fn carbon_intensity_is_weighted_average() {
        let mix = EnergyMix::new(&[(EnergySource::Coal, 0.5), (EnergySource::Wind, 0.5)]).unwrap();
        let expected = 0.5 * 820.0 + 0.5 * 11.0;
        assert!((mix.carbon_intensity() - expected).abs() < 1e-9);
    }

    #[test]
    fn low_carbon_and_fossil_shares() {
        let mix = sample_mix();
        assert!((mix.low_carbon_share() - 0.5).abs() < 1e-9);
        assert!((mix.fossil_share() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_solar_at_night_raises_intensity() {
        let mix = sample_mix();
        let night = mix.with_variable_output(0.0, 1.0);
        assert!(night.carbon_intensity() > mix.carbon_intensity());
        assert_eq!(night.share(EnergySource::Solar), 0.0);
    }

    #[test]
    fn extra_wind_lowers_intensity() {
        let mix = sample_mix();
        let windy = mix.with_variable_output(1.0, 1.5);
        assert!(windy.carbon_intensity() < mix.carbon_intensity());
    }

    #[test]
    fn variable_output_preserves_normalization() {
        let mix = sample_mix();
        for &(sf, wf) in &[(0.0, 0.0), (0.5, 1.2), (1.5, 1.5)] {
            let adj = mix.with_variable_output(sf, wf);
            let total: f64 = adj.iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "total {total} for ({sf},{wf})");
        }
    }

    #[test]
    fn all_variable_mix_survives_zero_output() {
        // A mix with only solar and wind at zero output cannot normalize;
        // the implementation falls back to the baseline mix.
        let mix = EnergyMix::new(&[(EnergySource::Solar, 0.6), (EnergySource::Wind, 0.4)]).unwrap();
        let adj = mix.with_variable_output(0.0, 0.0);
        let total: f64 = adj.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn carbon_intensity_bounded_by_source_factors(
            hydro in 0.0f64..1.0, solar in 0.0f64..1.0, wind in 0.0f64..1.0,
            nuclear in 0.0f64..1.0, coal in 0.0f64..1.0, gas in 0.0f64..1.0,
        ) {
            prop_assume!(hydro + solar + wind + nuclear + coal + gas > 1e-9);
            let mix = EnergyMix::new(&[
                (EnergySource::Hydro, hydro),
                (EnergySource::Solar, solar),
                (EnergySource::Wind, wind),
                (EnergySource::Nuclear, nuclear),
                (EnergySource::Coal, coal),
                (EnergySource::Gas, gas),
            ]).unwrap();
            let ci = mix.carbon_intensity();
            prop_assert!(ci >= EnergySource::Wind.carbon_factor() - 1e-9);
            prop_assert!(ci <= EnergySource::Coal.carbon_factor() + 1e-9);
        }

        #[test]
        fn shares_always_sum_to_one(
            a in 0.0f64..10.0, b in 0.0f64..10.0, c in 0.0f64..10.0,
        ) {
            prop_assume!(a + b + c > 1e-9);
            let mix = EnergyMix::new(&[
                (EnergySource::Hydro, a),
                (EnergySource::Coal, b),
                (EnergySource::Gas, c),
            ]).unwrap();
            let total: f64 = mix.iter().map(|(_, s)| s).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
