//! Carbon zones: grid regions with their own generation mix and variability.

use crate::mix::EnergyMix;
use carbonedge_geo::Coordinates;
use serde::{Deserialize, Serialize};

/// Identifier of a carbon zone (index into a zone catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ZoneId(pub usize);

impl ZoneId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Static description of a carbon zone: its location, baseline generation
/// mix, and the parameters that control how its renewable output varies over
/// the day and year.
///
/// A *carbon zone* is "a geographic area whose grid operator provides carbon
/// intensity data" (Section 3.1).  In this reproduction each zone carries
/// enough information to synthesize an hourly carbon-intensity trace that
/// has the same structure as the real data: a baseline mix, solar diurnal
/// cycles, seasonal modulation, and stochastic wind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneProfile {
    /// Human-readable zone name, e.g. "Miami" or "Bern, CH".
    pub name: String,
    /// Representative location of the zone (its main city).
    pub location: Coordinates,
    /// Baseline annual-average generation mix.
    pub mix: EnergyMix,
    /// Amplitude of the seasonal modulation of solar output in `[0, 1]`:
    /// 0 means no seasonal change, 1 means winter output drops to zero.
    pub solar_seasonality: f64,
    /// Amplitude of stochastic day-to-day wind variability in `[0, 1]`.
    pub wind_variability: f64,
    /// Amplitude of an additional demand-driven diurnal swing applied to the
    /// fossil share in `[0, 0.5]`; models evening peaker plants.
    pub demand_swing: f64,
}

impl ZoneProfile {
    /// Creates a zone profile with the given name, location and baseline mix
    /// and moderate default variability parameters.
    pub fn new(name: impl Into<String>, location: Coordinates, mix: EnergyMix) -> Self {
        Self {
            name: name.into(),
            location,
            mix,
            solar_seasonality: 0.5,
            wind_variability: 0.3,
            demand_swing: 0.1,
        }
    }

    /// Sets the seasonal amplitude of solar output.
    pub fn with_solar_seasonality(mut self, s: f64) -> Self {
        self.solar_seasonality = s.clamp(0.0, 1.0);
        self
    }

    /// Sets the stochastic wind variability amplitude.
    pub fn with_wind_variability(mut self, w: f64) -> Self {
        self.wind_variability = w.clamp(0.0, 1.0);
        self
    }

    /// Sets the demand-driven diurnal swing amplitude.
    pub fn with_demand_swing(mut self, d: f64) -> Self {
        self.demand_swing = d.clamp(0.0, 0.5);
        self
    }

    /// Annual-average carbon intensity implied by the baseline mix.
    pub fn baseline_intensity(&self) -> f64 {
        self.mix.carbon_intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::EnergySource;

    fn zone() -> ZoneProfile {
        ZoneProfile::new(
            "Test",
            Coordinates::new(45.0, 8.0),
            EnergyMix::new(&[(EnergySource::Gas, 0.6), (EnergySource::Solar, 0.4)]).unwrap(),
        )
    }

    #[test]
    fn baseline_intensity_matches_mix() {
        let z = zone();
        assert!((z.baseline_intensity() - z.mix.carbon_intensity()).abs() < 1e-12);
    }

    #[test]
    fn builder_clamps_parameters() {
        let z = zone()
            .with_solar_seasonality(2.0)
            .with_wind_variability(-1.0)
            .with_demand_swing(0.9);
        assert_eq!(z.solar_seasonality, 1.0);
        assert_eq!(z.wind_variability, 0.0);
        assert_eq!(z.demand_swing, 0.5);
    }

    #[test]
    fn zone_id_index_round_trips() {
        assert_eq!(ZoneId(7).index(), 7);
    }

    #[test]
    fn defaults_are_moderate() {
        let z = zone();
        assert!(z.solar_seasonality > 0.0 && z.solar_seasonality < 1.0);
        assert!(z.wind_variability > 0.0 && z.wind_variability < 1.0);
    }
}
