//! Device-heterogeneity experiment — Figure 15.
//!
//! The paper serves a mix of EfficientNetB0, ResNet50 and YOLOv4 applications
//! on clusters of Orin Nano, A2 and GTX 1080 servers (and a heterogeneous
//! cluster mixing all three), comparing the four policies.  Carbon-aware
//! placement exploits the interplay between energy efficiency, carbon
//! intensity and processing speed, and the heterogeneous cluster gives it
//! the most freedom.

use crate::metrics::{PolicyOutcome, Savings};
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_grid::HourOfYear;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};

/// Which cluster composition to evaluate (the x-axis groups of Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterKind {
    /// Every site runs Jetson Orin Nano servers.
    OrinNano,
    /// Every site runs NVIDIA A2 servers.
    A2,
    /// Every site runs GTX 1080 servers.
    Gtx1080,
    /// Each site runs a mix of all three device types.
    Heterogeneous,
}

impl ClusterKind {
    /// All cluster kinds in figure order.
    pub const ALL: [ClusterKind; 4] = [
        ClusterKind::OrinNano,
        ClusterKind::A2,
        ClusterKind::Gtx1080,
        ClusterKind::Heterogeneous,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterKind::OrinNano => "Orin Nano",
            ClusterKind::A2 => "A2",
            ClusterKind::Gtx1080 => "GTX 1080",
            ClusterKind::Heterogeneous => "Hetero.",
        }
    }

    /// The devices installed at each site for this cluster kind.
    pub fn devices(&self) -> Vec<DeviceKind> {
        match self {
            ClusterKind::OrinNano => vec![DeviceKind::OrinNano; 3],
            ClusterKind::A2 => vec![DeviceKind::A2; 3],
            ClusterKind::Gtx1080 => vec![DeviceKind::Gtx1080; 3],
            ClusterKind::Heterogeneous => {
                vec![DeviceKind::OrinNano, DeviceKind::A2, DeviceKind::Gtx1080]
            }
        }
    }
}

/// Configuration of the heterogeneity experiment.
#[derive(Debug, Clone)]
pub struct HeterogeneityConfig {
    /// Region providing the edge sites and carbon zones.
    pub region: StudyRegion,
    /// Number of applications per model kind arriving at each site.
    pub apps_per_model_per_site: usize,
    /// Per-application request rate.
    pub request_rate_rps: f64,
    /// Round-trip latency SLO (ms).
    pub latency_slo_ms: f64,
    /// Hour of year used for the carbon-intensity snapshot.
    pub hour: usize,
    /// Trace seed.
    pub seed: u64,
}

impl Default for HeterogeneityConfig {
    fn default() -> Self {
        Self {
            region: StudyRegion::CentralEu,
            apps_per_model_per_site: 1,
            request_rate_rps: 10.0,
            latency_slo_ms: 20.0,
            hour: 12 * 24,
            seed: 42,
        }
    }
}

/// Result of the heterogeneity experiment for one cluster kind and policy.
#[derive(Debug, Clone)]
pub struct HeterogeneityResult {
    /// Cluster kind.
    pub cluster: &'static str,
    /// Policy name.
    pub policy: String,
    /// Aggregate outcome.
    pub outcome: PolicyOutcome,
}

/// Runs the heterogeneity experiment across all cluster kinds and the four
/// policies of Figure 15, returning one result per (cluster, policy).
pub fn run_heterogeneity(config: &HeterogeneityConfig) -> Vec<HeterogeneityResult> {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(config.region, &catalog);
    let traces = catalog.generate_traces(config.seed);
    let now = HourOfYear::new(config.hour);
    let latency_model = LatencyModel::deterministic();

    let mut results = Vec::new();
    for cluster in ClusterKind::ALL {
        // Build server snapshots: each site hosts `devices()` servers.
        let mut servers = Vec::new();
        for (site_idx, (zone, (_, loc))) in
            region.zones.iter().zip(region.members.iter()).enumerate()
        {
            for device in cluster.devices() {
                servers.push(
                    ServerSnapshot::new(servers.len(), site_idx, *zone, device, *loc)
                        .with_carbon_intensity(traces[zone.index()].at(now)),
                );
            }
        }
        // Applications: a mix of the three GPU models at each site.
        let mut apps = Vec::new();
        for (_, loc) in &region.members {
            for model in ModelKind::GPU_MODELS {
                for _ in 0..config.apps_per_model_per_site {
                    apps.push(Application::new(
                        AppId(apps.len()),
                        model,
                        config.request_rate_rps,
                        config.latency_slo_ms,
                        *loc,
                        0,
                    ));
                }
            }
        }
        for policy in PlacementPolicy::BASELINE_SET {
            let problem = PlacementProblem::new(servers.clone(), apps.clone(), 1.0)
                .with_latency_model(latency_model.clone());
            let decision = IncrementalPlacer::new(policy)
                .heuristic_only()
                .place(&problem)
                .expect("heterogeneity placement feasible");
            results.push(HeterogeneityResult {
                cluster: cluster.name(),
                policy: policy.name(),
                outcome: PolicyOutcome {
                    carbon_g: decision.total_carbon_g,
                    energy_j: decision.total_energy_j,
                    mean_latency_ms: decision.mean_latency_ms,
                    placed_apps: apps.len() - decision.unplaced.len(),
                },
            });
        }
    }
    results
}

/// Looks up one (cluster, policy) outcome in a result set.
pub fn outcome_of<'a>(
    results: &'a [HeterogeneityResult],
    cluster: &str,
    policy: &str,
) -> Option<&'a PolicyOutcome> {
    results
        .iter()
        .find(|r| r.cluster == cluster && r.policy == policy)
        .map(|r| &r.outcome)
}

/// Savings of CarbonEdge over a baseline policy for one cluster kind.
pub fn savings_versus(
    results: &[HeterogeneityResult],
    cluster: &str,
    baseline: &str,
) -> Option<Savings> {
    let ce = outcome_of(results, cluster, "CarbonEdge")?;
    let base = outcome_of(results, cluster, baseline)?;
    Some(Savings::versus(ce, base))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<HeterogeneityResult> {
        run_heterogeneity(&HeterogeneityConfig::default())
    }

    #[test]
    fn all_cluster_policy_combinations_are_present() {
        let r = results();
        assert_eq!(r.len(), 4 * 4);
        for cluster in ClusterKind::ALL {
            for policy in [
                "CarbonEdge",
                "Latency-aware",
                "Energy-aware",
                "Intensity-aware",
            ] {
                assert!(
                    outcome_of(&r, cluster.name(), policy).is_some(),
                    "{cluster:?} {policy}"
                );
            }
        }
    }

    #[test]
    fn orin_nano_uses_less_energy_than_gtx1080() {
        // Figure 15b: serving the same load on Orin Nano uses far less energy
        // than on GTX 1080 (the paper reports ~95% less).
        let r = results();
        let nano = outcome_of(&r, "Orin Nano", "Latency-aware")
            .unwrap()
            .energy_j;
        let gtx = outcome_of(&r, "GTX 1080", "Latency-aware")
            .unwrap()
            .energy_j;
        assert!(nano < gtx * 0.5, "nano {nano} gtx {gtx}");
    }

    #[test]
    fn carbonedge_beats_all_baselines_on_heterogeneous_cluster() {
        // Figure 15a: on the heterogeneous cluster CarbonEdge reduces carbon
        // versus Latency-, Intensity- and Energy-aware baselines.
        let r = results();
        let ce = outcome_of(&r, "Hetero.", "CarbonEdge").unwrap().carbon_g;
        for baseline in ["Latency-aware", "Intensity-aware", "Energy-aware"] {
            let b = outcome_of(&r, "Hetero.", baseline).unwrap().carbon_g;
            assert!(ce <= b + 1e-9, "CarbonEdge {ce} vs {baseline} {b}");
        }
        let vs_latency = savings_versus(&r, "Hetero.", "Latency-aware").unwrap();
        assert!(
            vs_latency.carbon_percent > 40.0,
            "savings {}",
            vs_latency.carbon_percent
        );
    }

    #[test]
    fn carbonedge_saves_carbon_on_every_homogeneous_cluster() {
        // Figure 15a: 53%-62% reductions on single-device clusters.
        let r = results();
        for cluster in ["Orin Nano", "A2", "GTX 1080"] {
            let s = savings_versus(&r, cluster, "Latency-aware").unwrap();
            assert!(s.carbon_percent > 20.0, "{cluster}: {}", s.carbon_percent);
        }
    }

    #[test]
    fn carbon_aware_placement_uses_more_energy_than_energy_aware() {
        // Figure 15b: the carbon-energy trade-off — Intensity-aware and
        // CarbonEdge consume more energy than Energy-aware.
        let r = results();
        let ce = outcome_of(&r, "Hetero.", "CarbonEdge").unwrap().energy_j;
        let ea = outcome_of(&r, "Hetero.", "Energy-aware").unwrap().energy_j;
        assert!(
            ce >= ea - 1e-9,
            "CarbonEdge energy {ce} vs Energy-aware {ea}"
        );
    }

    #[test]
    fn every_application_is_placed() {
        let r = results();
        for res in &r {
            assert!(res.outcome.placed_apps > 0);
            assert!(res.outcome.carbon_g > 0.0);
        }
    }
}
