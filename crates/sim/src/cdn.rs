//! Continental-scale CDN simulation — Figures 11, 12, 13 and 14.
//!
//! The paper simulates a CDN's edge data centers across the US and Europe
//! for a full year: applications arrive at edge sites, and each policy
//! places them on servers within the application's latency limit.  Carbon is
//! accounted from the hourly intensity of the hosting zone.  This module
//! reproduces that simulation at monthly granularity (placements happen per
//! month against the month's mean forecast intensity, and energy is
//! accounted over the month), which preserves the seasonal and spatial
//! structure the paper studies while keeping a year-long run fast.

use crate::metrics::{PolicyOutcome, Savings};
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, ZoneCatalog};
use carbonedge_grid::CarbonTrace;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Demand/capacity scenarios of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdnScenario {
    /// Uniform demand and uniform capacity across sites ("Homo").
    Homogeneous,
    /// Demand proportional to metro population, capacity uniform ("Demand").
    PopulationDemand,
    /// Capacity proportional to metro population, demand uniform ("Capacity").
    PopulationCapacity,
}

impl CdnScenario {
    /// Display name used in Figure 14.
    pub fn name(&self) -> &'static str {
        match self {
            CdnScenario::Homogeneous => "Homo",
            CdnScenario::PopulationDemand => "Demand",
            CdnScenario::PopulationCapacity => "Capacity",
        }
    }
}

/// Configuration of a CDN-scale simulation.
#[derive(Debug, Clone)]
pub struct CdnConfig {
    /// Which continent to simulate (US or Europe).
    pub area: ZoneArea,
    /// Round-trip latency limit for every application (ms); 20 ms ≈ 500 km.
    pub latency_limit_ms: f64,
    /// Applications arriving per site per month.
    pub apps_per_site: usize,
    /// Number of servers per edge site in the homogeneous scenario.
    pub servers_per_site: usize,
    /// Device installed in the CDN servers.
    pub device: DeviceKind,
    /// Model served by the arriving applications.
    pub model: ModelKind,
    /// Per-application request rate (requests/second).
    pub request_rate_rps: f64,
    /// Demand/capacity scenario.
    pub scenario: CdnScenario,
    /// Optional cap on the number of edge sites (used to keep unit tests
    /// fast); `None` simulates the full catalog.
    pub site_limit: Option<usize>,
    /// Trace seed.
    pub seed: u64,
}

impl CdnConfig {
    /// The paper's default CDN setup for an area: 20 ms RTT limit, ResNet50
    /// on NVIDIA A2 servers, homogeneous demand and capacity.
    pub fn new(area: ZoneArea) -> Self {
        Self {
            area,
            latency_limit_ms: 20.0,
            apps_per_site: 1,
            servers_per_site: 4,
            device: DeviceKind::A2,
            model: ModelKind::ResNet50,
            request_rate_rps: 15.0,
            scenario: CdnScenario::Homogeneous,
            site_limit: None,
            seed: 42,
        }
    }

    /// Sets the latency limit (Figure 12 sweeps 5–30 ms).
    pub fn with_latency_limit(mut self, ms: f64) -> Self {
        self.latency_limit_ms = ms;
        self
    }

    /// Sets the scenario (Figure 14).
    pub fn with_scenario(mut self, scenario: CdnScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Restricts the simulation to the first `n` sites of the area.
    pub fn with_site_limit(mut self, n: usize) -> Self {
        self.site_limit = Some(n);
        self
    }
}

/// Per-month outcome of one policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonthlyOutcome {
    /// Total carbon for the month, grams.
    pub carbon_g: f64,
    /// Total energy for the month, joules.
    pub energy_j: f64,
    /// Mean round-trip latency of placed applications, ms.
    pub mean_latency_ms: f64,
}

/// Result of running one policy over the full year.
#[derive(Debug, Clone)]
pub struct CdnResult {
    /// Policy name.
    pub policy: String,
    /// Aggregated outcome over the year.
    pub outcome: PolicyOutcome,
    /// Per-month outcomes (12 entries).
    pub monthly: Vec<MonthlyOutcome>,
    /// Per-site application counts per month (`[month][site]`, Figure 13d).
    pub placements_per_site: Vec<Vec<usize>>,
    /// The carbon intensity of the zone each placed application landed in
    /// (one sample per app-month, Figure 11c).
    pub assigned_intensity: Vec<f64>,
    /// Site names in `placements_per_site` column order.
    pub site_names: Vec<String>,
}

impl CdnResult {
    /// Applications assigned to a named site per month.
    pub fn monthly_placements_for(&self, site_name: &str) -> Option<Vec<usize>> {
        let idx = self.site_names.iter().position(|n| n == site_name)?;
        Some(self.placements_per_site.iter().map(|m| m[idx]).collect())
    }
}

/// Immutable inputs shared by every CDN simulation: the worldwide zone
/// catalog, the Akamai-like edge-site catalog derived from it, and a cache of
/// generated carbon traces keyed by seed.
///
/// Building traces is the expensive part of `CdnSimulator::new` (a year of
/// hourly values for every zone), and a scenario sweep instantiates dozens to
/// thousands of simulators that differ only in policy, latency limit or
/// demand scenario.  Sharing one `CdnShared` across those cells makes
/// simulator construction an `Arc` clone plus a site-list copy, and is safe
/// to use concurrently from the sweep executor's worker threads.
pub struct CdnShared {
    catalog: Arc<ZoneCatalog>,
    site_catalog: EdgeSiteCatalog,
    /// Per-seed trace slots.  The map mutex is only held for slot lookup;
    /// generation happens inside the seed's own `OnceLock`, so concurrent
    /// requests for *different* seeds generate in parallel while concurrent
    /// requests for the *same* seed generate exactly once.
    traces_by_seed: Mutex<HashMap<u64, TraceSlot>>,
}

/// A year of traces for every zone, shared across simulators.
type SharedTraces = Arc<Vec<CarbonTrace>>;
/// A lazily initialized per-seed cache slot.
type TraceSlot = Arc<OnceLock<SharedTraces>>;

impl CdnShared {
    /// Builds the shared catalogs (traces are generated lazily per seed).
    pub fn new() -> Self {
        let catalog = Arc::new(ZoneCatalog::worldwide());
        let site_catalog = EdgeSiteCatalog::akamai_like(&catalog);
        Self {
            catalog,
            site_catalog,
            traces_by_seed: Mutex::new(HashMap::new()),
        }
    }

    /// The shared worldwide zone catalog.
    pub fn catalog(&self) -> &Arc<ZoneCatalog> {
        &self.catalog
    }

    /// The traces for a seed, generating and caching them on first use.
    pub fn traces(&self, seed: u64) -> Arc<Vec<CarbonTrace>> {
        let slot = {
            let mut cache = self.traces_by_seed.lock().expect("trace cache poisoned");
            Arc::clone(cache.entry(seed).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(self.catalog.generate_traces(seed))))
    }

    /// Number of distinct seeds whose traces are cached (generated).
    pub fn cached_seed_count(&self) -> usize {
        self.traces_by_seed
            .lock()
            .expect("trace cache poisoned")
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Builds a simulator for a configuration on the shared catalogs.
    pub fn simulator(&self, config: CdnConfig) -> CdnSimulator {
        let traces = self.traces(config.seed);
        let mut sites: Vec<_> = self
            .site_catalog
            .in_area(config.area)
            .iter()
            .map(|s| (s.name.clone(), s.location, s.zone, s.population_m))
            .collect();
        if let Some(limit) = config.site_limit {
            sites.truncate(limit);
        }
        CdnSimulator {
            config,
            catalog: Arc::clone(&self.catalog),
            traces,
            sites,
            latency_model: LatencyModel::deterministic(),
        }
    }
}

impl Default for CdnShared {
    fn default() -> Self {
        Self::new()
    }
}

/// The CDN simulator: the catalog, traces and site list for one area.
pub struct CdnSimulator {
    config: CdnConfig,
    catalog: Arc<ZoneCatalog>,
    traces: Arc<Vec<CarbonTrace>>,
    /// (site name, location, zone, population) restricted to the area.
    sites: Vec<(
        String,
        carbonedge_geo::Coordinates,
        carbonedge_grid::ZoneId,
        f64,
    )>,
    latency_model: LatencyModel,
}

impl CdnSimulator {
    /// Builds a standalone simulator for a configuration.  Sweeps running
    /// many configurations should build one [`CdnShared`] and call
    /// [`CdnShared::simulator`] instead, which reuses catalogs and traces.
    pub fn new(config: CdnConfig) -> Self {
        CdnShared::new().simulator(config)
    }

    /// Number of simulated edge sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The zone catalog backing the simulation.
    pub fn catalog(&self) -> &ZoneCatalog {
        &self.catalog
    }

    /// Monthly mean carbon intensity of a named zone (Figure 13c).
    pub fn monthly_intensity_of(&self, zone_name: &str) -> Option<Vec<f64>> {
        let id = self.catalog.id_of(zone_name)?;
        Some(
            (0..12)
                .map(|m| self.traces[id.index()].monthly_mean(m))
                .collect(),
        )
    }

    fn capacity_multiplier(&self, population: f64, mean_population: f64) -> usize {
        match self.config.scenario {
            CdnScenario::PopulationCapacity => ((population / mean_population)
                * self.config.servers_per_site as f64)
                .round()
                .max(1.0) as usize,
            _ => self.config.servers_per_site,
        }
    }

    fn demand_for_site(&self, population: f64, mean_population: f64) -> usize {
        match self.config.scenario {
            CdnScenario::PopulationDemand => ((population / mean_population)
                * self.config.apps_per_site as f64)
                .round()
                .max(0.0) as usize,
            _ => self.config.apps_per_site,
        }
    }

    /// Runs the year-long simulation for one policy with the default
    /// heuristic placer.
    pub fn run(&self, policy: PlacementPolicy) -> CdnResult {
        self.run_with(&IncrementalPlacer::new(policy).heuristic_only())
    }

    /// Runs the year-long simulation with a caller-provided placer, letting
    /// sweeps share one solver configuration across cells (see
    /// [`IncrementalPlacer::with_policy`]).
    pub fn run_with(&self, placer: &IncrementalPlacer) -> CdnResult {
        let mean_population =
            self.sites.iter().map(|(_, _, _, p)| *p).sum::<f64>() / self.sites.len().max(1) as f64;

        let mut outcome = PolicyOutcome::default();
        let mut monthly = Vec::with_capacity(12);
        let mut placements_per_site = Vec::with_capacity(12);
        let mut assigned_intensity = Vec::new();

        for month in 0..12 {
            let hours_in_month = carbonedge_grid::time::DAYS_PER_MONTH[month] as f64 * 24.0;
            // Server snapshots: capacity per site according to the scenario,
            // intensity = the month's mean for the site's zone.
            let mut servers = Vec::new();
            let mut server_site = Vec::new();
            for (site_idx, (_, loc, zone, pop)) in self.sites.iter().enumerate() {
                let count = self.capacity_multiplier(*pop, mean_population);
                let intensity = self.traces[zone.index()].monthly_mean(month);
                for _ in 0..count {
                    servers.push(
                        ServerSnapshot::new(
                            servers.len(),
                            site_idx,
                            *zone,
                            self.config.device,
                            *loc,
                        )
                        .with_carbon_intensity(intensity),
                    );
                    server_site.push(site_idx);
                }
            }
            // Applications: demand per site according to the scenario.
            let mut apps = Vec::new();
            for (_, loc, _, pop) in &self.sites {
                let count = self.demand_for_site(*pop, mean_population);
                for _ in 0..count {
                    apps.push(Application::new(
                        AppId(apps.len()),
                        self.config.model,
                        self.config.request_rate_rps,
                        self.config.latency_limit_ms,
                        *loc,
                        0,
                    ));
                }
            }
            if apps.is_empty() || servers.is_empty() {
                monthly.push(MonthlyOutcome::default());
                placements_per_site.push(vec![0; self.sites.len()]);
                continue;
            }
            let problem = PlacementProblem::new(servers, apps, hours_in_month)
                .with_latency_model(self.latency_model.clone());
            let decision = placer
                .place(&problem)
                .expect("CDN placement has feasible options");

            let placed = decision.assignment.iter().flatten().count();
            outcome.accumulate(&PolicyOutcome {
                carbon_g: decision.total_carbon_g,
                energy_j: decision.total_energy_j,
                mean_latency_ms: decision.mean_latency_ms,
                placed_apps: placed,
            });
            monthly.push(MonthlyOutcome {
                carbon_g: decision.total_carbon_g,
                energy_j: decision.total_energy_j,
                mean_latency_ms: decision.mean_latency_ms,
            });

            let mut site_counts = vec![0usize; self.sites.len()];
            for assignment in decision.assignment.iter().flatten() {
                let site = server_site[*assignment];
                site_counts[site] += 1;
                assigned_intensity.push(problem.servers[*assignment].carbon_intensity);
            }
            placements_per_site.push(site_counts);
        }

        CdnResult {
            policy: placer.policy.name(),
            outcome,
            monthly,
            placements_per_site,
            assigned_intensity,
            site_names: self.sites.iter().map(|(n, _, _, _)| n.clone()).collect(),
        }
    }

    /// Runs CarbonEdge and the Latency-aware baseline and returns
    /// `(carbonedge, latency_aware, savings)` — the comparison reported in
    /// Figures 11–14.
    pub fn compare(&self) -> (CdnResult, CdnResult, Savings) {
        let baseline = self.run(PlacementPolicy::LatencyAware);
        let carbonedge = self.run(PlacementPolicy::CarbonAware);
        let savings = Savings::versus(&carbonedge.outcome, &baseline.outcome);
        (carbonedge, baseline, savings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(area: ZoneArea) -> CdnConfig {
        CdnConfig::new(area).with_site_limit(60)
    }

    #[test]
    fn carbonedge_saves_substantial_carbon_in_both_continents() {
        // Figure 11a: 49.5% (US) and 67.8% (Europe) with a 20 ms limit.
        let us = CdnSimulator::new(small_config(ZoneArea::UnitedStates))
            .compare()
            .2;
        let eu = CdnSimulator::new(small_config(ZoneArea::Europe))
            .compare()
            .2;
        assert!(us.carbon_percent > 20.0, "US savings {}", us.carbon_percent);
        assert!(eu.carbon_percent > 40.0, "EU savings {}", eu.carbon_percent);
        assert!(
            eu.carbon_percent > us.carbon_percent,
            "Europe should save more: US {} EU {}",
            us.carbon_percent,
            eu.carbon_percent
        );
    }

    #[test]
    fn latency_increase_stays_within_the_limit() {
        // Figure 11b: mean round-trip latency increases by ~11 ms under a
        // 20 ms limit — bounded by the limit itself.
        let (_, _, savings) = CdnSimulator::new(small_config(ZoneArea::Europe)).compare();
        assert!(savings.latency_increase_ms > 0.0);
        assert!(savings.latency_increase_ms <= 20.0 + 1e-6);
    }

    #[test]
    fn carbonedge_shifts_load_to_greener_zones() {
        // Figure 11c: the distribution of assigned-location carbon intensity
        // shifts left under CarbonEdge.
        let sim = CdnSimulator::new(small_config(ZoneArea::Europe));
        let (ce, la, _) = sim.compare();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&ce.assigned_intensity) < mean(&la.assigned_intensity));
    }

    #[test]
    fn tighter_latency_limits_reduce_savings() {
        // Figure 12a: savings grow with the latency limit.
        let tight = CdnSimulator::new(small_config(ZoneArea::Europe).with_latency_limit(5.0))
            .compare()
            .2;
        let loose = CdnSimulator::new(small_config(ZoneArea::Europe).with_latency_limit(30.0))
            .compare()
            .2;
        assert!(
            loose.carbon_percent > tight.carbon_percent + 5.0,
            "tight {} loose {}",
            tight.carbon_percent,
            loose.carbon_percent
        );
    }

    #[test]
    fn monthly_results_cover_the_year() {
        let sim = CdnSimulator::new(small_config(ZoneArea::UnitedStates));
        let result = sim.run(PlacementPolicy::CarbonAware);
        assert_eq!(result.monthly.len(), 12);
        assert_eq!(result.placements_per_site.len(), 12);
        assert!(result.monthly.iter().all(|m| m.carbon_g > 0.0));
        // Savings vary by month but not wildly (Figure 13a shows <10% swings).
        let baseline = sim.run(PlacementPolicy::LatencyAware);
        let monthly_savings: Vec<f64> = result
            .monthly
            .iter()
            .zip(baseline.monthly.iter())
            .map(|(c, l)| (1.0 - c.carbon_g / l.carbon_g) * 100.0)
            .collect();
        let max = monthly_savings
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = monthly_savings
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max - min < 40.0, "monthly savings swing {max} - {min}");
    }

    #[test]
    fn population_skew_changes_savings_moderately() {
        // Figure 14: demand/capacity skew shifts savings by a few percent.
        let homo = CdnSimulator::new(small_config(ZoneArea::UnitedStates))
            .compare()
            .2;
        let demand = CdnSimulator::new(
            small_config(ZoneArea::UnitedStates).with_scenario(CdnScenario::PopulationDemand),
        )
        .compare()
        .2;
        let capacity = CdnSimulator::new(
            small_config(ZoneArea::UnitedStates).with_scenario(CdnScenario::PopulationCapacity),
        )
        .compare()
        .2;
        for s in [&demand, &capacity] {
            assert!(
                s.carbon_percent > 10.0,
                "skewed savings {}",
                s.carbon_percent
            );
            assert!((s.carbon_percent - homo.carbon_percent).abs() < 30.0);
        }
    }

    #[test]
    fn monthly_intensity_lookup_works() {
        let sim = CdnSimulator::new(small_config(ZoneArea::Europe));
        let paris = sim.monthly_intensity_of("Paris, FR").unwrap();
        assert_eq!(paris.len(), 12);
        assert!(sim.monthly_intensity_of("Atlantis").is_none());
    }

    #[test]
    fn site_limit_truncates() {
        let sim = CdnSimulator::new(CdnConfig::new(ZoneArea::Europe).with_site_limit(10));
        assert_eq!(sim.site_count(), 10);
    }

    #[test]
    fn shared_environment_matches_standalone_simulator() {
        let shared = CdnShared::new();
        let config = CdnConfig::new(ZoneArea::Europe).with_site_limit(25);
        let from_shared = shared
            .simulator(config.clone())
            .run(PlacementPolicy::CarbonAware);
        let standalone = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
        assert_eq!(from_shared.outcome, standalone.outcome);
        assert_eq!(from_shared.monthly, standalone.monthly);
        assert_eq!(
            from_shared.placements_per_site,
            standalone.placements_per_site
        );
    }

    #[test]
    fn shared_environment_caches_traces_per_seed() {
        let shared = CdnShared::new();
        assert_eq!(shared.cached_seed_count(), 0);
        let a = shared.traces(1);
        let b = shared.traces(1);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same seed must reuse the cached traces"
        );
        shared.traces(2);
        assert_eq!(shared.cached_seed_count(), 2);
    }

    #[test]
    fn run_with_reuses_a_shared_placer_template() {
        let sim = CdnSimulator::new(CdnConfig::new(ZoneArea::Europe).with_site_limit(20));
        let template = IncrementalPlacer::new(PlacementPolicy::LatencyAware).heuristic_only();
        let stamped = template.with_policy(PlacementPolicy::CarbonAware);
        let via_template = sim.run_with(&stamped);
        let direct = sim.run(PlacementPolicy::CarbonAware);
        assert_eq!(via_template.policy, "CarbonEdge");
        assert_eq!(via_template.outcome, direct.outcome);
    }

    #[test]
    fn placements_per_site_sum_matches_demand() {
        let sim = CdnSimulator::new(small_config(ZoneArea::Europe));
        let result = sim.run(PlacementPolicy::CarbonAware);
        for month_counts in &result.placements_per_site {
            let placed: usize = month_counts.iter().sum();
            // Homogeneous demand: one app per site per month, all placeable.
            assert_eq!(placed, sim.site_count());
        }
    }
}
